#!/usr/bin/env python
"""CI guard: no new ad-hoc ``*_stats`` surfaces outside the registry.

The unified metrics registry (``src/repro/core/metrics.py``) is the one
place new observability lands: instruments get a hierarchical name, show
up in ``snapshot()``, and ride the ``_bus.stat.*`` telemetry plane for
free.  Before it existed, every subsystem grew its own dict-returning
``*_stats`` method; those pre-registry surfaces are grandfathered below
(most are now thin views over registry instruments), but adding a NEW
one is a lint failure — register instruments instead.

Run from the repo root::

    python tools/check_stats_surfaces.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"

# The registry itself may define whatever it likes.
EXEMPT = {"repro/core/metrics.py"}

# Every ``stats`` / ``*_stats`` def that predates the registry, frozen.
# Shrinking this list (removing a deprecated shim) is encouraged;
# growing it requires changing this file, which is the point.
ALLOWED = {
    ("repro/adapters/base.py", "Adapter.stats"),
    ("repro/core/bus.py", "InformationBus.flow_stats"),
    ("repro/core/client.py", "BusClient.delivery_stats"),
    ("repro/core/daemon.py", "BusDaemon.flow_stats"),
    ("repro/core/daemon.py", "BusDaemon.publish_stats"),
    ("repro/core/daemon.py", "BusDaemon.reliable_stats"),
    ("repro/core/daemon.py", "BusDaemon.shard_stats"),
    ("repro/core/daemon.py", "BusDaemon.wire_stats"),
    ("repro/core/reliable.py", "ReliableReceiver.stats"),
    ("repro/core/reliable.py", "ReliableSender.retention_stats"),
    ("repro/core/router.py", "Router.flow_stats"),
    ("repro/core/router.py", "Router.leg_stats"),
    ("repro/core/router.py", "Router.wire_stats"),
    ("repro/core/router.py", "WanLink.link_stats"),
    # the ShardedDaemon facade mirrors BusDaemon's grandfathered
    # surfaces, aggregated across shard planes (one entry per mirror)
    ("repro/core/sharding.py", "ShardedDaemon.flow_stats"),
    ("repro/core/sharding.py", "ShardedDaemon.reliable_stats"),
    ("repro/core/sharding.py", "ShardedDaemon.shard_stats"),
    ("repro/core/sharding.py", "ShardedDaemon.wire_stats"),
    ("repro/core/wire.py", "decode_memo_stats"),
}


def _is_stats_name(name: str) -> bool:
    return not name.startswith("_") and (
        name == "stats" or name.endswith("_stats"))


def _surfaces(path: Path) -> list:
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []

    def visit(node: ast.AST, stack: tuple) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, stack + (child.name,))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_stats_name(child.name):
                    found.append((".".join(stack + (child.name,)),
                                  child.lineno))
                visit(child, stack)
            else:
                visit(child, stack)

    visit(tree, ())
    return found


def main() -> int:
    offenders, seen = [], set()
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in EXEMPT:
            continue
        for qualname, lineno in _surfaces(path):
            seen.add((rel, qualname))
            if (rel, qualname) not in ALLOWED:
                offenders.append((rel, lineno, qualname))

    stale = ALLOWED - seen
    for rel, qualname in sorted(stale):
        print(f"note: allowlisted {rel}:{qualname} no longer exists — "
              f"prune it from {Path(__file__).name}")

    if offenders:
        print("New *_stats surfaces outside core/metrics.py:")
        for rel, lineno, qualname in offenders:
            print(f"  src/{rel}:{lineno}: {qualname}")
        print("Register instruments on the MetricsRegistry instead "
              "(see docs/OBSERVABILITY.md); if this really must be a "
              "grandfathered surface, add it to ALLOWED in this script.")
        return 1
    print(f"ok — {len(seen)} grandfathered stats surfaces, none new")
    return 0


if __name__ == "__main__":
    sys.exit(main())
