#!/usr/bin/env python3
"""The IC fabrication plant — the paper's other flagship deployment.

A "24 by 7" fab5 floor on one bus:

* process equipment publishing sensor readings on hierarchical subjects
  (``fab5.cc.litho8.thick`` — the paper's own example subject);
* the cell controller watching every station via a wildcard and raising
  alarms on limit violations;
* the legacy Cobol WIP tracking system, integrated through the
  virtual-user terminal adapter (requirement R3);
* the Factory Configuration System storing control recipes in the
  Object Repository and serving them over RMI;
* guaranteed delivery feeding every alarm into a capture server — the
  "sending data to a database over an unreliable network" use case —
  demonstrated across a network partition.

Run:  python examples/fab_floor.py
"""

from repro import DataObject, InformationBus, QoS, RmiClient
from repro.adapters import (COMMAND_SUBJECT, WipAdapter, WipLotRecord,
                            WipTerminal, register_wip_types)
from repro.apps import (CellController, Equipment, FactoryConfigSystem,
                        register_config_types)
from repro.repository import CaptureServer


def main() -> None:
    bus = InformationBus(seed=5)
    bus.add_hosts(8)

    # ------------------------------------------------------------------
    # equipment and the cell controller
    # ------------------------------------------------------------------
    litho8 = Equipment(bus.client("node00", "litho8"), "fab5", "litho8",
                       {"thick": (9.0, 0.4, "um"),
                        "dose": (21.5, 0.3, "mJ")}, interval=0.5)
    etch3 = Equipment(bus.client("node01", "etch3"), "fab5", "etch3",
                      {"temp": (350.0, 6.0, "C")}, interval=0.5)
    controller = CellController(bus.client("node02", "cell_controller"),
                                "fab5",
                                limits={"thick": (8.7, 9.3),
                                        "temp": (340.0, 360.0)})

    # alarms are precious: guaranteed delivery into the alarm database
    alarm_db_client = bus.client("node03", "alarm_db")
    alarm_capture = CaptureServer(alarm_db_client, ["fab5.alarm.>"])

    print("== phase 1: the floor is running ==")
    bus.run_for(8.0)
    bus.settle()
    print(f"  readings published: litho8={litho8.readings_published} "
          f"etch3={etch3.readings_published}")
    print(f"  cell controller saw: {controller.readings_seen} readings, "
          f"raised {controller.alarms_raised} alarms")
    print(f"  latest fab5.cc.litho8.thick = "
          f"{controller.reading('litho8', 'thick'):.3f} um")
    print(f"  alarms captured to the database: {alarm_capture.captured}")

    # ------------------------------------------------------------------
    # the legacy WIP system behind its terminal adapter
    # ------------------------------------------------------------------
    print("\n== phase 2: driving the legacy WIP system over the bus ==")
    terminal = WipTerminal()
    terminal.seed_lot(WipLotRecord("LOT42", "DRAM64", "LITHO", 25,
                                   "QUEUED"))
    WipAdapter(bus.client("node04", "wip_adapter"), terminal)

    cell = bus.client("node02", "lot_commander")
    register_wip_types(cell.registry)
    statuses = []
    bus.client("node05", "wip_dashboard").subscribe(
        "fab5.wip.status.>",
        lambda s, o, i: statuses.append(o))

    def wip(verb, **fields):
        cell.publish(COMMAND_SUBJECT,
                     DataObject(cell.registry, "wip_command",
                                dict({"verb": verb}, **fields)))
        bus.settle(1.0)

    wip("track_in", lot_id="LOT42")
    wip("track_out", lot_id="LOT42", step="ETCH")
    wip("inquire", lot_id="LOT42")
    for lot in statuses:
        print(f"  WIP status: lot={lot.get('lot_id')} "
              f"step={lot.get('step')} status={lot.get('status')}")
    assert statuses[-1].get("step") == "ETCH"
    print(f"  (the 1979 terminal processed "
          f"{terminal.commands_processed} keystroke lines)")

    # ------------------------------------------------------------------
    # factory configuration system over RMI
    # ------------------------------------------------------------------
    print("\n== phase 3: factory configuration system ==")
    FactoryConfigSystem(bus.client("node06", "config_system"), "fab5")
    operator = bus.client("node07", "operator")
    register_config_types(operator.registry)
    rmi = RmiClient(operator, "svc.fab5.config")
    out = {}
    config = DataObject(operator.registry, "equipment_config", {
        "plant": "fab5", "station": "litho8", "equipment_type": "litho",
        "recipe": "deep-uv-9um", "online": True,
        "parameters": {"dose": 21.5, "focus": 0.02}})
    rmi.call("set_config", {"config": config},
             lambda v, e: out.update(set=e))
    bus.run_for(2.0)
    rmi.call("get_config", {"station": "litho8"},
             lambda v, e: out.update(got=v))
    bus.run_for(2.0)
    print(f"  stored recipe: {out['got'].get('recipe')} "
          f"params={out['got'].get('parameters')}")

    # ------------------------------------------------------------------
    # guaranteed delivery across a partition: the alarm database host
    # is cut off, alarms keep flowing, nothing is lost
    # ------------------------------------------------------------------
    print("\n== phase 4: partition the alarm database away ==")
    alarm_publisher = bus.client("node02", "alarm_forwarder")
    captured_before = alarm_capture.captured
    bus.partition({"node03"})   # everyone else forms the implicit group
    for n in range(3):
        alarm_publisher.publish(
            "fab5.alarm.manual.drill",
            {"drill": n, "note": "partition test"}, qos=QoS.GUARANTEED)
    bus.settle(2.0)
    pending = len(bus.daemon("node02").guaranteed_pending())
    print(f"  during partition: database captured +"
          f"{alarm_capture.captured - captured_before}, "
          f"{pending} alarms pending in the stable ledger")
    bus.heal()
    bus.settle(5.0)
    print(f"  after heal: pending="
          f"{len(bus.daemon('node02').guaranteed_pending())}, "
          f"database skipped={alarm_capture.skipped} "
          f"(scalar drill payloads)")
    assert not bus.daemon("node02").guaranteed_pending()

    litho8.stop()
    etch3.stop()
    print("\nfab floor OK")


if __name__ == "__main__":
    main()
