#!/usr/bin/env python3
"""Dynamic system evolution — requirement R2, exercised live.

Three evolution scenarios from Sections 3 and 5.2, all performed on a
running system with no restarts, no recompilation, no relinking:

1. **A new type, defined at run time in TDL (P3).**  A ``recipe`` class
   is defined interactively; instances are published; the Object
   Repository generates fresh database tables on the fly; a generic
   monitor renders them through the meta-object protocol (P2).

2. **A live software upgrade (P4 + R1).**  A v2 server joins the subject
   an old v1 server is serving; the old server retires after draining;
   clients calling the same subject never notice.

3. **A UI for a service nobody wrote a UI for.**  The application
   builder generates a working form from the upgraded server's interface
   metadata alone (Section 5.1).

Run:  python examples/dynamic_evolution.py
"""

from repro import InformationBus, RmiClient, RmiServer, ServiceObject, render
from repro.apps import ApplicationBuilder
from repro.objects import OperationSpec, ParamSpec, TypeDescriptor
from repro.repository import CaptureServer
from repro.tdl import Interpreter


def main() -> None:
    bus = InformationBus(seed=9)
    bus.add_hosts(6)

    # ------------------------------------------------------------------
    # scenario 1: dynamic classing feeds the whole pipeline
    # ------------------------------------------------------------------
    print("== 1. a new type enters a running system ==")
    repository = bus.client("node01", "repository")
    capture = CaptureServer(repository, ["fab5.>"])
    inbox = []
    monitor = bus.client("node02", "generic_monitor")
    monitor.subscribe("fab5.>", lambda s, o, i: inbox.append(o))
    bus.run_for(0.5)

    # an engineer defines a class interactively, in TDL, on node00
    engineer = bus.client("node00", "engineer")
    tdl = Interpreter(engineer.registry)
    tdl.eval_text("""
        (defclass recipe (object)
          ((name    :type string)
           (station :type string)
           (steps   :type (list string))
           (max-temp :type float :required nil))
          :doc "a process recipe for IC equipment")
    """)
    print("  defined type 'recipe' in TDL on node00")
    print("  repository knows it yet?",
          repository.registry.has("recipe"))

    recipe = tdl.eval_text("""
        (make-instance 'recipe
          :name "deep-uv-9um" :station "litho8"
          :steps (list "clean" "coat" "expose" "develop")
          :max-temp 180.0)
    """)
    engineer.publish("fab5.recipes.litho8", recipe)
    bus.settle(2.0)

    print("  after one publication:")
    print("    repository knows 'recipe':",
          repository.registry.has("recipe"))
    print("    repository generated tables:",
          [t for t in capture.store.db.tables() if "recipe" in t])
    print("    monitor renders the never-before-seen object:")
    for line in render(inbox[0]).splitlines():
        print("     ", line)
    stored = capture.store.query("recipe", name="deep-uv-9um")
    assert stored and stored[0].get("steps")[1] == "coat"
    print("    repository query by attribute returns it: OK")

    # ------------------------------------------------------------------
    # scenario 2: replace a live server under its clients
    # ------------------------------------------------------------------
    print("\n== 2. live server upgrade on subject svc.lot-scheduler ==")
    iface = TypeDescriptor(
        "lot_scheduler",
        operations=[OperationSpec("next_lot",
                                  params=(ParamSpec("station", "string"),),
                                  result_type="string")])

    def make_server(client, version, rank):
        client.registry.register(iface)
        service = ServiceObject(client.registry, "lot_scheduler")
        service.implement(
            "next_lot", lambda station: f"LOT-{version}-{station.upper()}")
        return RmiServer(client, "svc.lot-scheduler", service, rank=rank,
                         exclusive=True)

    v1 = make_server(bus.client("node03", "scheduler_v1"), "v1", rank=1)
    bus.run_for(1.0)

    trader = bus.client("node04", "dispatcher")

    def call_once():
        rmi = RmiClient(trader, "svc.lot-scheduler")
        out = []
        rmi.call("next_lot", {"station": "litho8"},
                 lambda v, e: out.append((v, e)))
        bus.run_for(2.0)
        rmi.close()
        return out[0]

    value, error = call_once()
    print(f"  before upgrade: next_lot -> {value!r}")
    assert value == "LOT-v1-LITHO8"

    # the v2 implementation comes on-line at rank 0: it wins the group
    # election; v1 stops answering discovery, drains, and retires
    v2 = make_server(bus.client("node05", "scheduler_v2"), "v2", rank=0)
    bus.run_for(1.5)   # presence converges
    value, error = call_once()
    print(f"  after v2 joins : next_lot -> {value!r}")
    assert value == "LOT-v2-LITHO8"
    v1.stop()          # the obsolete server is taken off-line
    value, error = call_once()
    print(f"  after v1 retires: next_lot -> {value!r}")
    assert value == "LOT-v2-LITHO8"
    print("  clients used the same subject throughout; no name service, "
          "no reconfiguration")

    # ------------------------------------------------------------------
    # scenario 3: generate a UI from interface metadata alone
    # ------------------------------------------------------------------
    print("\n== 3. application builder: a UI from metadata ==")
    ui_client = bus.client("node04", "ui")
    rmi = RmiClient(ui_client, "svc.lot-scheduler")
    primed = []
    rmi.call("next_lot", {"station": "etch3"},
             lambda v, e: primed.append(v))
    bus.run_for(2.0)

    builder = ApplicationBuilder()
    form = builder.form_for_service(rmi)
    form.set_field("next_lot.station", "litho8")
    form.press("next_lot.call")
    bus.run_for(2.0)
    print("  generated form after one interaction:")
    for line in form.render()[:8]:
        print("   ", line)
    assert form.widget("next_lot.result").text == "LOT-v2-LITHO8"

    print("\ndynamic evolution OK")


if __name__ == "__main__":
    main()
