#!/usr/bin/env python3
"""Two trading floors, one logical bus — information routers at work.

Section 3.1: "wide area networks require additional communication
tools ... [routers] create the illusion of a single, large bus that is
capable of publishing over any network."

New York and London each run their own Ethernet bus.  A router bridges
them over a 35 ms transatlantic link:

* London subscribes to New York equity news — and only that category
  crosses the ocean ("messages are only re-published on buses for which
  there exists a subscription on that subject");
* the London leg rewrites subjects on egress (``ny.news.equity.gmc``),
  the router-as-adapter trick the paper mentions ("transforming
  subjects");
* the router logs forwarded traffic to non-volatile storage, its other
  advertised duty.

Run:  python examples/wan_trading.py
"""

from repro import InformationBus, Router, Simulator, WanLink
from repro.adapters import DowJonesAdapter, DowJonesFeed
from repro.apps import NewsMonitor
from repro.core import BusConfig


def main() -> None:
    sim = Simulator(seed=11)
    config = BusConfig()
    config.advert_interval = 0.5     # routers learn subscriptions quickly

    newyork = InformationBus(name="newyork", sim=sim, config=config)
    london = InformationBus(name="london", sim=sim, config=config)
    newyork.add_hosts(4, prefix="ny")
    london.add_hosts(4, prefix="ldn")

    router = Router(link=WanLink(latency=0.035,
                                 bandwidth_bytes_per_sec=256_000))
    ny_leg = router.add_leg(newyork, log_traffic=True)
    router.add_leg(london, transform=lambda s: f"ny.{s}")

    # ------------------------------------------------------------------
    # New York: a feed and a local monitor
    # ------------------------------------------------------------------
    adapter = DowJonesAdapter(newyork.client("ny00", "dj_adapter"))
    feed = DowJonesFeed(sim, adapter.feed_sink, interval=0.4)
    ny_monitor = NewsMonitor(newyork.client("ny01", "monitor"),
                             subjects=["news.>"])

    # ------------------------------------------------------------------
    # London: subscribes to NY equity news only (post-transform subjects)
    # ------------------------------------------------------------------
    ldn_monitor = NewsMonitor(london.client("ldn01", "monitor"),
                              subjects=["ny.news.equity.>"])
    # the London side's *interest* must reach the NY leg untransformed;
    # declare it on the router (egress transform, ingress interest):
    ny_leg.remote_wants("london:router-london", "add", ["news.equity.>"])

    # end-to-end latency: compare when the same story (by oid) arrives
    # in New York vs London (the republished envelope is a new bus
    # message, so its own timestamps are London-local)
    ny_arrivals, ldn_arrivals = {}, {}
    newyork.client("ny02", "probe").subscribe(
        "news.equity.>",
        lambda s, o, i: ny_arrivals.setdefault(o.oid, sim.now))
    london.client("ldn02", "probe").subscribe(
        "ny.news.equity.>",
        lambda s, o, i: ldn_arrivals.setdefault(o.oid, sim.now))

    sim.run_until(10.0)
    feed.stop()
    sim.run_until(14.0)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    equity_local = sum(
        1 for s in ny_monitor.stories if s.get("category") == "equity")
    print("== WAN trading floors ==")
    print(f"  NY stories published        : {adapter.inbound}")
    print(f"  NY monitor received         : {ny_monitor.stories_received}")
    print(f"  NY equity stories           : {equity_local}")
    print(f"  London received (equity only): "
          f"{ldn_monitor.stories_received}")
    print(f"  forwarded across the WAN    : {ny_leg.messages_forwarded}")
    wal = ny_leg.host.stable.read_log("router.log")
    print(f"  router traffic log entries  : {len(wal)}")
    hops = [ldn_arrivals[oid] - ny_arrivals[oid]
            for oid in ldn_arrivals if oid in ny_arrivals]
    sample = min(hops)
    print(f"  best NY->London extra delay : {sample * 1000:.1f} ms "
          f"(link adds 35 ms)")

    print("\n  a London headline row:",
          ldn_monitor.headlines()[2].strip())

    assert ldn_monitor.stories_received == equity_local
    assert ny_leg.messages_forwarded == equity_local
    assert len(wal) == equity_local
    assert sample >= 0.034   # at least the WAN link latency
    # non-equity categories never crossed
    assert all(s.get("category") == "equity"
               for s in ldn_monitor.stories)
    print("\nwan trading OK")


if __name__ == "__main__":
    main()
