#!/usr/bin/env python3
"""Market data with a last-value cache: fixing late-join the right way.

Anonymous pub/sub means "a new subscriber ... will start receiving
immediately new objects" — and no history (Section 3.1).  For a trading
screen that needs *current* prices the moment it opens, the classic
companion service is a last-value cache: an ordinary bus application
that subscribes to everything, remembers the latest object per subject,
and serves snapshots over RMI.  A late joiner does
snapshot-then-subscribe and is fully current immediately, with in-flight
updates buffered and replayed in order.

Run:  python examples/market_data.py
"""

from repro import DataObject, InformationBus
from repro.apps import LastValueCache, snapshot_then_subscribe
from repro.objects import AttributeSpec, TypeDescriptor, standard_registry
from repro.sim import PeriodicTimer

SYMBOLS = ["gmc", "ibm", "tsm", "xom"]


def main() -> None:
    bus = InformationBus(seed=31)
    bus.add_hosts(5)

    reg = standard_registry()
    reg.register(TypeDescriptor(
        "quote", attributes=[AttributeSpec("symbol", "string"),
                             AttributeSpec("price", "float"),
                             AttributeSpec("seq", "int")]))

    # ------------------------------------------------------------------
    # a ticker plant publishing quotes on per-symbol subjects
    # ------------------------------------------------------------------
    feed = bus.client("node00", "ticker")
    feed.registry.register(reg.get("quote"))
    rng = bus.sim.rng("ticker")
    prices = {s: 50.0 + 10 * i for i, s in enumerate(SYMBOLS)}
    ticks = {"n": 0}

    def tick():
        symbol = rng.choice(SYMBOLS)
        prices[symbol] = round(
            prices[symbol] * (1 + (rng.random() - 0.5) / 100), 2)
        ticks["n"] += 1
        feed.publish(f"quotes.equity.{symbol}",
                     DataObject(feed.registry, "quote", symbol=symbol,
                                price=prices[symbol], seq=ticks["n"]))

    ticker = PeriodicTimer(bus.sim, 0.1, tick)

    # the LVC watches the whole quotes tree
    lvc = LastValueCache(bus.client("node01", "lvc"), ["quotes.>"])

    print("== the market runs for a while before our trader arrives ==")
    bus.run_for(8.0)
    print(f"  ticks published : {ticks['n']}")
    print(f"  subjects cached : {len(lvc)}")

    # ------------------------------------------------------------------
    # a trading screen opens late
    # ------------------------------------------------------------------
    print("\n== a trading screen opens (snapshot-then-subscribe) ==")
    screen = {}
    events = {"snapshot": 0, "live": 0}

    def on_value(subject, quote, is_snapshot):
        screen[quote.get("symbol")] = quote.get("price")
        events["snapshot" if is_snapshot else "live"] += 1

    trader = bus.client("node03", "screen")
    snapshot_then_subscribe(trader, "quotes.>", on_value)
    bus.run_for(1.0)
    ticker.stop()          # freeze the market so the comparison is fair
    bus.settle(1.0)
    print(f"  snapshot entries applied: {events['snapshot']}")
    print("  screen is current immediately:")
    for symbol in SYMBOLS:
        marker = "=" if screen.get(symbol) == prices[symbol] else "!"
        print(f"    {symbol:>4}  {screen.get(symbol):>8} "
              f"{marker} live {prices[symbol]}")
    assert all(screen[s] == prices[s] for s in SYMBOLS)

    # ------------------------------------------------------------------
    # and stays current through live updates
    # ------------------------------------------------------------------
    ticker = PeriodicTimer(bus.sim, 0.1, tick)   # the market reopens
    bus.run_for(5.0)
    ticker.stop()
    bus.settle(2.0)
    print(f"\n  live updates applied since: {events['live']}")
    assert events["live"] > 0
    assert all(screen[s] == prices[s] for s in SYMBOLS)
    print("  screen still matches the market after live flow: OK")

    print("\nmarket data OK")


if __name__ == "__main__":
    main()
