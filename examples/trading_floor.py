#!/usr/bin/env python3
"""The brokerage trading floor — Figures 3 and 4 of the paper, end to end.

Cast, exactly as in Section 5:

* two raw news feeds (Dow Jones and Reuters wire formats);
* two news adapters parsing them into vendor-specific subtypes of a
  common Story supertype, published under ``news.<category>.<topic>``;
* the News Monitor showing a headline summary list and full stories;
* the Object Repository capturing every story into relational tables;
* and then — with everything running — the Keyword Generator is brought
  on-line (Figure 4): the monitor immediately starts receiving Property
  objects on the same subjects, with zero reconfiguration anywhere.

Run:  python examples/trading_floor.py
"""

from repro import InformationBus, RmiClient
from repro.adapters import (DowJonesAdapter, DowJonesFeed, ReutersAdapter,
                            ReutersFeed)
from repro.apps import KeywordGenerator, NewsMonitor
from repro.repository import CaptureServer, QueryServer


def main() -> None:
    bus = InformationBus(seed=7)
    bus.add_hosts(7)

    # ------------------------------------------------------------------
    # feeds and adapters (Figure 3, left side)
    # ------------------------------------------------------------------
    dj_adapter = DowJonesAdapter(bus.client("node00", "dj_adapter"))
    rtr_adapter = ReutersAdapter(bus.client("node01", "rtr_adapter"))
    dj_feed = DowJonesFeed(bus.sim, dj_adapter.feed_sink, interval=0.6)
    rtr_feed = ReutersFeed(bus.sim, rtr_adapter.feed_sink, interval=0.8)

    # ------------------------------------------------------------------
    # consumers (Figure 3, right side)
    # ------------------------------------------------------------------
    monitor = NewsMonitor(bus.client("node02", "news_monitor"))
    repository = bus.client("node03", "repository")
    capture = CaptureServer(repository, ["news.>"])
    QueryServer(repository, capture.store, "svc.repository")

    print("== phase 1: feeds flowing, monitor + repository consuming ==")
    bus.run_for(6.0)
    bus.settle()
    print(f"  stories published: DJ={dj_adapter.inbound} "
          f"RTR={rtr_adapter.inbound}")
    print(f"  monitor received : {monitor.stories_received}")
    print(f"  repository stored: {capture.store.count('story')}")
    print("\n  headline summary list (first 6 rows):")
    for line in monitor.headlines()[:8]:
        print("   ", line)

    # the repository decomposed highly structured objects into relations
    print("\n  repository tables:",
          ", ".join(t for t in capture.store.db.tables() if "story" in t))

    # ------------------------------------------------------------------
    # Figure 4: add the Keyword Generator to the live system
    # ------------------------------------------------------------------
    print("\n== phase 2: Keyword Generator comes on-line (Figure 4) ==")
    generator = KeywordGenerator(bus.client("node04", "keyword_generator"))
    before = monitor.properties_received
    bus.run_for(6.0)
    dj_feed.stop()
    rtr_feed.stop()
    bus.settle()
    print(f"  properties published by generator: "
          f"{generator.properties_published}")
    print(f"  properties received by monitor   : "
          f"{monitor.properties_received - before}")

    # find a story that got keywords and display it the monitor's way
    enriched = next(i for i in range(len(monitor.stories))
                    if monitor.keywords_for(i))
    print(f"\n  selected story {enriched} (full display via metadata, "
          f"properties attached):")
    for line in monitor.select(enriched).splitlines():
        print("   ", line)

    # ------------------------------------------------------------------
    # the generator's interactive interface — a brand-new service type,
    # discovered and driven with no compiled stubs anywhere
    # ------------------------------------------------------------------
    print("\n== phase 3: browsing the new service's interface ==")
    rmi = RmiClient(bus.client("node05", "browser"), "svc.keywords")
    out = {}
    rmi.call("categories", {}, lambda v, e: out.update(categories=v))
    bus.run_for(2.0)
    print(f"  categories: {out['categories']}")
    rmi.call("keywords_in", {"category": out["categories"][0]},
             lambda v, e: out.update(keywords=v))
    bus.run_for(2.0)
    print(f"  keywords in {out['categories'][0]!r}: {out['keywords']}")
    operations = sorted(o["name"] for o in rmi.server_interface["operations"])
    print(f"  operations (from interface metadata): {operations}")

    # ------------------------------------------------------------------
    # an analyst queries the repository over RMI
    # ------------------------------------------------------------------
    print("\n== phase 4: querying the Object Repository ==")
    analyst = RmiClient(bus.client("node06", "analyst"), "svc.repository")
    analyst.call("tally", {"type_name": "story"},
                 lambda v, e: out.update(tally=v))
    bus.run_for(2.0)
    print(f"  stories stored (incl. both vendor subtypes): {out['tally']}")
    analyst.call("find_all", {"type_name": "reuters_story"},
                 lambda v, e: out.update(reuters=v))
    bus.run_for(2.0)
    print(f"  reuters_story instances: {len(out['reuters'])}")
    assert out["tally"] >= len(out["reuters"]) > 0

    print("\ntrading floor OK")


if __name__ == "__main__":
    main()
