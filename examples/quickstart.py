#!/usr/bin/env python3
"""Quickstart: the Information Bus in five minutes.

Covers the model of computation from Figure 1 of the paper:

1. publish/subscribe with subject-based addressing (P4);
2. self-describing objects — the subscriber learns a type it has never
   seen off the wire and introspects it (P2);
3. the generic print utility that renders any object from metadata;
4. request/reply: a service discovered by subject and invoked over RMI.

Run:  python examples/quickstart.py
"""

from repro import (AttributeSpec, DataObject, InformationBus, OperationSpec,
                   ParamSpec, RmiClient, RmiServer, ServiceObject,
                   TypeDescriptor, render, standard_registry)


def main() -> None:
    # ------------------------------------------------------------------
    # a simulated LAN of workstations, each running a bus daemon
    # ------------------------------------------------------------------
    bus = InformationBus(seed=42)
    bus.add_hosts(4)

    # ------------------------------------------------------------------
    # 1. anonymous publish/subscribe
    # ------------------------------------------------------------------
    registry = standard_registry()
    registry.register(TypeDescriptor(
        "trade",
        attributes=[AttributeSpec("symbol", "string"),
                    AttributeSpec("price", "float"),
                    AttributeSpec("size", "int")],
        doc="one executed trade"))

    feed = bus.client("node00", "trade_feed", registry=registry)
    monitor = bus.client("node01", "monitor")   # fresh, empty registry!

    received = []
    monitor.subscribe("trades.equity.*",
                      lambda subject, obj, info: received.append((subject,
                                                                  obj)))

    feed.publish("trades.equity.gmc",
                 DataObject(registry, "trade", symbol="GMC", price=41.5,
                            size=200))
    feed.publish("trades.bond.us10y",      # nobody subscribed to bonds
                 DataObject(registry, "trade", symbol="US10Y",
                            price=99.2, size=50))
    bus.settle()

    print("== publish/subscribe ==")
    for subject, trade in received:
        print(f"  received on {subject!r}: {trade!r}")
    assert len(received) == 1   # the bond trade matched no subscription

    # ------------------------------------------------------------------
    # 2 & 3. self-describing objects: the monitor never declared 'trade',
    # yet it can introspect and print what it received
    # ------------------------------------------------------------------
    subject, trade = received[0]
    print("\n== the meta-object protocol, on a just-learned type ==")
    print(f"  type: {trade.type_name}")
    print(f"  attributes: {trade.attribute_names()}")
    print(f"  attribute_type('price') = {trade.attribute_type('price')}")
    print("\n== the generic print utility ==")
    print(render(trade))

    # ------------------------------------------------------------------
    # 4. request/reply: discovery by subject, then point-to-point RMI
    # ------------------------------------------------------------------
    registry.register(TypeDescriptor(
        "position_service",
        operations=[OperationSpec("position",
                                  params=(ParamSpec("symbol", "string"),),
                                  result_type="int",
                                  doc="net position in a symbol")]))
    service = ServiceObject(registry, "position_service")
    book = {"GMC": 1200, "IBM": -300}
    service.implement("position", lambda symbol: book.get(symbol, 0))
    RmiServer(bus.client("node02", "position_server"), "svc.positions",
              service)

    rmi = RmiClient(bus.client("node03", "trader"), "svc.positions")
    answers = []
    rmi.call("position", {"symbol": "GMC"},
             lambda value, error: answers.append((value, error)))
    bus.run_for(2.0)

    print("\n== RMI (discovered by subject, no name service) ==")
    value, error = answers[0]
    print(f"  position(GMC) -> {value} (error={error})")
    assert value == 1200

    print("\nquickstart OK")


if __name__ == "__main__":
    main()
