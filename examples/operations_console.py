#!/usr/bin/env python3
"""An operator's console for a running Information Bus.

Shows the operational tooling the paper gestures at in Section 5.1
("it is possible to examine the list of available services on the
Information Bus ... users can inspect the interface description for
each service"), built entirely from bus metadata:

1. the BusBrowser's live service directory and per-subject traffic
   monitor;
2. interface inspection over the discovery protocol;
3. an exactly-once invocation surviving a server crash mid-flight.

Run:  python examples/operations_console.py
"""

from repro import InformationBus, RmiServer, ServiceObject
from repro.apps import BusBrowser, Equipment
from repro.core import ExactlyOnceRmiClient
from repro.objects import OperationSpec, ParamSpec, TypeDescriptor, standard_registry


def main() -> None:
    bus = InformationBus(seed=21)
    bus.add_hosts(6)

    # ------------------------------------------------------------------
    # a floor with some traffic and two services
    # ------------------------------------------------------------------
    litho = Equipment(bus.client("node00", "litho8"), "fab5", "litho8",
                      {"thick": (9.0, 0.2, "um")}, interval=0.4)

    reg = standard_registry()
    reg.register(TypeDescriptor(
        "lot_dispatch_service",
        operations=[OperationSpec(
            "dispatch", params=(ParamSpec("station", "string"),),
            result_type="string", doc="assign the next lot to a station")]))

    dispatched = {"count": 0}

    def make_dispatcher(client):
        svc = ServiceObject(client.registry, "lot_dispatch_service")

        def dispatch(station):
            dispatched["count"] += 1
            return f"LOT-{dispatched['count']:04d}->{station.upper()}"

        svc.implement("dispatch", dispatch)
        return svc

    client1 = bus.client("node01", "dispatcher")
    client1.registry.register(reg.get("lot_dispatch_service"))
    server = RmiServer(client1, "svc.dispatch", make_dispatcher(client1),
                       durable_replies=True)

    # ------------------------------------------------------------------
    # 1. the console comes up and discovers the world from metadata
    # ------------------------------------------------------------------
    console = BusBrowser(bus.client("node05", "console"))
    bus.run_for(4.0)
    print("== operator console snapshot ==")
    print(console.report())

    # ------------------------------------------------------------------
    # 2. inspect a service interface through discovery
    # ------------------------------------------------------------------
    print("\n== inspecting svc.dispatch ==")
    interfaces = []
    console.inspect("svc.dispatch", interfaces.extend)
    bus.run_for(1.0)
    for op in interfaces[0]["operations"]:
        params = ", ".join(f"{p['name']}: {p['type']}"
                           for p in op["params"])
        print(f"  {op['name']}({params}) -> {op['result']}   # {op['doc']}")

    # ------------------------------------------------------------------
    # 3. exactly-once dispatch across a server crash
    # ------------------------------------------------------------------
    print("\n== exactly-once call through a server crash ==")
    operator = bus.client("node04", "operator")
    eo = ExactlyOnceRmiClient(operator, "svc.dispatch",
                              retry_delay=0.5, call_timeout=1.0)
    bus.crash_host("node01")          # the dispatcher is down right now
    results = []
    eo.call("dispatch", {"station": "litho8"},
            lambda v, e: results.append((v, e)))
    bus.sim.schedule(2.0, bus.recover_host, "node01")
    bus.run_for(10.0)
    value, error = results[0]
    print(f"  result: {value!r} (error={error}, retries={eo.retries})")
    print(f"  dispatch executed {dispatched['count']} time(s)")
    assert error is None
    assert eo.retries >= 1            # it had to wait out the outage
    assert dispatched["count"] == 1   # and still executed exactly once

    litho.stop()
    print("\noperations console OK")


if __name__ == "__main__":
    main()
