"""Figure 5: Latency vs. message size.

Paper setup: "one publisher publishing under a single subject ...
consumed by fourteen consumers (one consumer per node) ... the batch
parameter was turned off", mean latency with 99%-confidence intervals.
Paper claims: latency depends on message size; variances between
1.1e-4 and 1.7e-2 ms.
"""

from conftest import SIZES

from repro.bench import AppendixExperiment, Report, ascii_chart


def run_figure5():
    experiment = AppendixExperiment(seed=5)
    return [experiment.run_latency(size, samples=40, interval=0.1)
            for size in SIZES]


def test_fig5_latency_vs_message_size(benchmark):
    results = benchmark.pedantic(run_figure5, rounds=1, iterations=1)

    report = Report("fig5_latency")
    report.table(
        "Figure 5: Latency of Publish/Subscribe (1 pub, 14 consumers, "
        "batching OFF)",
        ["size (B)", "mean (ms)", "99% CI ± (ms)", "variance (ms^2)",
         "samples"],
        [[r.size, r.mean_ms, r.ci99_ms, r.variance_ms, r.summary().n]
         for r in results])
    report.add(ascii_chart(
        [(r.size, r.mean_ms) for r in results],
        title="Figure 5 (regenerated): Latency of Publish/Subscribe",
        x_label="message size (B)", y_label="latency (ms)",
        log_x=True, errors=[max(r.ci99_ms, 0.2) for r in results]))
    report.emit()

    by_size = {r.size: r for r in results}
    # latency grows with message size (the figure's visible slope)
    assert by_size[10000].mean_ms > 5 * by_size[64].mean_ms
    means = [by_size[s].mean_ms for s in SIZES]
    assert all(b > a * 0.8 for a, b in zip(means, means[1:])), \
        "latency should be (noisily) non-decreasing in size"
    # millisecond scale, like the paper's y-axis
    assert 0.1 < by_size[64].mean_ms < 20
    assert 5 < by_size[10000].mean_ms < 200
    # tight 99% CIs: the dashed lines hug the curve
    assert all(r.ci99_ms < 0.2 * r.mean_ms + 0.5 for r in results)
    # every sample from every consumer arrived (reliable delivery)
    assert all(r.summary().n == 40 * 14 for r in results)
    # nonzero, small variance (paper: 1.1e-4 .. 1.7e-2 ms)
    assert all(r.variance_ms > 0 for r in results)
