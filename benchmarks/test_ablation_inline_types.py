"""Ablation: the price of self-describing messages (P2).

Publishing with inline type metadata is what lets any receiver decode
and learn unknown types — the mechanism behind every dynamic-evolution
scenario in Section 5.2.  The cost is extra bytes per message.  This
ablation measures that overhead for a realistic Story object and shows
the obvious optimization (senders that know their audience already has
the type can omit the metadata) — and then the session type plane
(``BusConfig.type_plane``), which keeps the learn-on-first-sight
property while hoisting the metadata out of every payload into
once-per-session typedefs.
"""

from repro.adapters import register_news_types
from repro.bench import Report
from repro.core import BusConfig, InformationBus, TypeTable
from repro.objects import (DataObject, encode_typed, encoded_size,
                           standard_registry)


def sample_story(reg):
    return DataObject(reg, "reuters_story", {
        "headline": "General Motors rises on earnings",
        "body": "Body text with a realistic couple of sentences in it, "
                "the way a newswire flash reads.",
        "category": "equity", "topic": "gmc",
        "industry_groups": ["autos", "semis"],
        "sources": ["Reuters"], "country_codes": ["us", "jp"],
        "ric": "GMC.N", "priority": 2})


def run_ablation():
    reg = standard_registry()
    register_news_types(reg)
    story = sample_story(reg)
    bare = encoded_size(story)
    inline = encoded_size(story, reg, inline_types=True)

    # wall-clock effect on the wire: same story stream both ways
    def throughput(inline_types):
        bus = InformationBus(seed=15)
        bus.add_hosts(3)
        pub = bus.client("node00", "feed", registry=reg)
        count = [0]
        consumer = bus.client("node01", "mon", registry=reg)
        consumer.subscribe("news.>", lambda s, o, i:
                           count.__setitem__(0, count[0] + 1))
        start = bus.sim.now
        for _ in range(200):
            pub.publish("news.equity.gmc", story,
                        inline_types=inline_types)
        bus.settle(10.0)
        return count[0], bus.lan.bytes_transmitted

    with_meta = throughput(True)
    without_meta = throughput(False)
    return {"bare": bare, "inline": inline,
            "with": with_meta, "without": without_meta}


def run_type_plane_ablation():
    """The same story stream with the type plane on vs off, receivers
    learning from scratch in both runs."""
    reg = standard_registry()
    register_news_types(reg)
    story = sample_story(reg)
    inline = encoded_size(story, reg, inline_types=True)
    typed = len(encode_typed(story, reg, TypeTable())[0])

    def wire_bytes(plane):
        bus = InformationBus(seed=15, config=BusConfig(type_plane=plane))
        bus.add_hosts(3)
        pub = bus.client("node00", "feed", registry=reg)
        count = [0]
        consumer = bus.client("node01", "mon")   # bare registry: learns
        consumer.subscribe("news.>", lambda s, o, i:
                           count.__setitem__(0, count[0] + 1))
        for _ in range(200):
            pub.publish("news.equity.gmc", story)
        bus.settle(10.0)
        assert count[0] == 200
        assert consumer.registry.has("reuters_story")
        return bus.lan.bytes_transmitted

    return {"inline": inline, "typed": typed,
            "plane_wire": wire_bytes(True), "flat_wire": wire_bytes(False)}


def test_inline_type_metadata_overhead(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    overhead = results["inline"] - results["bare"]
    report = Report("ablation_inline_types")
    report.table(
        "Inline type metadata (P2) cost for a reuters_story",
        ["encoding", "bytes/message", "wire bytes (200 msgs)"],
        [["payload only", results["bare"], results["without"][1]],
         ["with inline types", results["inline"], results["with"][1]]])
    report.note(f"metadata overhead: {overhead} bytes/message "
                f"({100 * overhead / results['inline']:.0f}% of the "
                f"self-describing encoding)")
    report.emit()

    # both modes deliver everything (the consumer pre-registered types)
    assert results["with"][0] == 200
    assert results["without"][0] == 200
    # the overhead is real but bounded — the story's own data dominates
    assert 0 < overhead < results["bare"] * 4
    assert results["with"][1] > results["without"][1]


def test_type_plane_ablation(benchmark):
    results = benchmark.pedantic(run_type_plane_ablation,
                                 rounds=1, iterations=1)

    reduction = 1.0 - results["typed"] / results["inline"]
    report = Report("ablation_type_plane")
    report.table(
        "Session type plane vs inline metadata for a reuters_story",
        ["encoding", "bytes/message", "wire bytes (200 msgs)"],
        [["inline types every message", results["inline"],
          results["flat_wire"]],
         ["type plane (steady state)", results["typed"],
          results["plane_wire"]]])
    report.note(f"steady-state payload reduction: {reduction:.0%} "
                f"(acceptance floor 40%); both runs teach a blank "
                f"receiver the types")
    report.emit()

    # the tentpole acceptance bar: >= 40% per-message payload saving
    assert reduction >= 0.40
    assert results["plane_wire"] < results["flat_wire"]
