"""Ablation: why Ethernet broadcast.

"This choice allows the same data to be delivered to a large number of
destinations without a performance penalty."  The counterfactual: a
publisher that must transmit one point-to-point copy per consumer.  With
14 consumers, broadcast should win by roughly that factor.
"""

from repro.bench import AppendixExperiment, Report

SIZE = 512
MESSAGES = 150
CONSUMERS = 14


def run_ablation():
    broadcast = AppendixExperiment(
        seed=11, consumers=CONSUMERS).run_throughput(SIZE, MESSAGES)
    unicast = AppendixExperiment(
        seed=11, consumers=CONSUMERS,
        unicast_fanout=True).run_throughput(SIZE, MESSAGES)
    return broadcast, unicast


def test_broadcast_beats_unicast_fanout(benchmark):
    broadcast, unicast = benchmark.pedantic(run_ablation, rounds=1,
                                            iterations=1)

    report = Report("ablation_unicast")
    report.table(
        f"Broadcast vs unicast fan-out ({SIZE}-byte messages, "
        f"{CONSUMERS} consumers)",
        ["fan-out", "per-consumer msgs/sec", "cumulative msgs/sec"],
        [["broadcast", broadcast.msgs_per_sec,
          broadcast.cumulative_msgs_per_sec],
         ["unicast", unicast.msgs_per_sec,
          unicast.cumulative_msgs_per_sec]])
    report.emit()

    factor = broadcast.msgs_per_sec / unicast.msgs_per_sec
    # one transmission serves all 14 listeners: expect ~14x, allow slack
    # for batching and per-packet overheads
    assert factor > CONSUMERS * 0.6, \
        f"broadcast should win by ~{CONSUMERS}x, got {factor:.1f}x"
    assert broadcast.delivery_ratio > 0.999
    assert unicast.delivery_ratio > 0.999
