"""Ablation: reliable vs. guaranteed delivery cost.

Guaranteed delivery logs every message to non-volatile storage before
sending and waits for consumer acknowledgements (Section 3.1) — that is
the price of surviving publisher crashes.  This ablation quantifies the
throughput gap, which is why "the usual semantics we provide is
reliable" and guaranteed is reserved for database-bound traffic.
"""

from repro.bench import Report, payload_of_size
from repro.core import InformationBus, QoS

SIZE = 512
MESSAGES = 300


def run_qos(qos, durable):
    bus = InformationBus(seed=12)
    bus.add_hosts(3)
    publisher = bus.client("node00", "publisher")
    received = []
    consumer = bus.client("node01", "consumer")
    consumer.subscribe("gd.bench",
                       lambda s, o, info: received.append(info.deliver_time),
                       durable=durable)
    payload = payload_of_size(SIZE)
    start = bus.sim.now
    for _ in range(MESSAGES):
        publisher.publish_bytes("gd.bench", payload, qos=qos)
    bus.daemon("node00").flush()
    previous = -1
    while len(received) != previous:
        previous = len(received)
        bus.run_for(2.0)
    duration = max(received) - start
    stable_writes = bus.host("node00").stable.write_count \
        + bus.host("node01").stable.write_count
    pending = len(bus.daemon("node00").guaranteed_pending())
    return {"received": len(received), "duration": duration,
            "msgs_per_sec": len(received) / duration,
            "stable_writes": stable_writes, "pending": pending}


def run_ablation():
    return {"reliable": run_qos(QoS.RELIABLE, durable=False),
            "guaranteed": run_qos(QoS.GUARANTEED, durable=True)}


def test_guaranteed_costs_more_than_reliable(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    reliable, guaranteed = results["reliable"], results["guaranteed"]

    report = Report("ablation_qos")
    report.table(
        f"QoS ablation ({SIZE}-byte messages, 1 publisher, 1 consumer)",
        ["qos", "msgs/sec", "stable writes", "unacked at end"],
        [["reliable", reliable["msgs_per_sec"],
          reliable["stable_writes"], "-"],
         ["guaranteed", guaranteed["msgs_per_sec"],
          guaranteed["stable_writes"], guaranteed["pending"]]])
    report.emit()

    # both QoS levels deliver everything on a healthy network
    assert reliable["received"] == MESSAGES
    assert guaranteed["received"] == MESSAGES
    # guaranteed leaves nothing unacknowledged ...
    assert guaranteed["pending"] == 0
    # ... pays for stable logging (ledger + consumer dedupe records) ...
    assert guaranteed["stable_writes"] > 2 * MESSAGES
    assert reliable["stable_writes"] == 0
    # reliable is at least as fast (logging is off the wire path here,
    # so the gap is modest; the stable-write count is the real cost)
    assert reliable["msgs_per_sec"] >= 0.9 * guaranteed["msgs_per_sec"]
