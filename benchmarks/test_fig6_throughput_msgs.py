"""Figure 6: Throughput in messages/second vs. message size.

Paper setup: "one publisher publishing under one subject, sending to
fourteen consumers.  For this test, the batching parameter was turned
on."  Claims: msgs/sec falls as size grows; variances of 0.25 to 125
messages/second across consumers.
"""

from conftest import SIZES, messages_for

from repro.bench import AppendixExperiment, Report, ascii_chart


def run_figure6():
    experiment = AppendixExperiment(seed=6)
    return [experiment.run_throughput(size, messages_for(size))
            for size in SIZES]


def test_fig6_throughput_msgs_vs_size(benchmark):
    results = benchmark.pedantic(run_figure6, rounds=1, iterations=1)

    report = Report("fig6_throughput_msgs")
    report.table(
        "Figure 6: Throughput in Msgs/Sec (1 pub, 14 consumers, "
        "batching ON)",
        ["size (B)", "msgs/sec", "rate variance", "messages", "delivered"],
        [[r.size, r.msgs_per_sec, r.rate_summary().variance, r.messages,
          f"{r.delivery_ratio:.4f}"] for r in results])
    report.add(ascii_chart(
        [(r.size, r.msgs_per_sec) for r in results],
        title="Figure 6 (regenerated): Throughput in Msgs/Sec",
        x_label="message size (B)", y_label="msgs/sec", log_x=True))
    report.emit()

    by_size = {r.size: r for r in results}
    # msgs/sec falls steeply with size — small messages in the thousands,
    # 10 KB messages in the tens
    assert by_size[64].msgs_per_sec > 1000
    assert by_size[10000].msgs_per_sec < 100
    assert by_size[64].msgs_per_sec > 20 * by_size[10000].msgs_per_sec
    rates = [by_size[s].msgs_per_sec for s in SIZES]
    assert all(b < a * 1.1 for a, b in zip(rates, rates[1:])), \
        "msgs/sec should be (noisily) non-increasing in size"
    # reliable delivery held: everything arrived everywhere
    assert all(r.delivery_ratio > 0.999 for r in results)
