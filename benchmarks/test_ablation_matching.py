"""Ablation: subject trie vs. linear subscription matching.

The reason Figure 8 comes out flat: the daemon's subscription table is a
trie whose match cost depends on subject depth, not on how many patterns
are registered.  The strawman — test every pattern with
``subject_matches`` — degrades linearly.  This is the design choice
behind the paper's "subject-based addressing scales more easily ... than
attribute qualification" argument.
"""

from repro.bench import Report
from repro.core import SubjectTrie, subject_matches

PATTERN_COUNTS = [100, 1000, 10000]
PROBES = 200


def build_patterns(count):
    # a realistic mix: exact subjects, one-level wildcards, tails
    patterns = []
    for i in range(count):
        if i % 10 == 0:
            patterns.append(f"bench.s{i:05d}.>")
        elif i % 10 == 1:
            patterns.append(f"bench.s{i:05d}.*")
        else:
            patterns.append(f"bench.s{i:05d}.data")
    return patterns


def probe_subjects(count):
    step = max(1, count // PROBES)
    return [f"bench.s{i:05d}.data" for i in range(0, count, step)][:PROBES]


def trie_match_all(trie, subjects):
    total = 0
    for subject in subjects:
        total += len(trie.match(subject))
    return total


def linear_match_all(patterns, subjects):
    total = 0
    for subject in subjects:
        total += sum(1 for p in patterns if subject_matches(p, subject))
    return total


def test_trie_matching_scales(benchmark):
    import time
    rows = []
    for count in PATTERN_COUNTS:
        patterns = build_patterns(count)
        trie = SubjectTrie()
        for index, pattern in enumerate(patterns):
            trie.insert(pattern, index)
        subjects = probe_subjects(count)

        t0 = time.perf_counter()
        trie_hits = trie_match_all(trie, subjects)
        trie_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        linear_hits = linear_match_all(patterns, subjects)
        linear_time = time.perf_counter() - t0

        assert trie_hits == linear_hits   # same semantics
        rows.append([count, trie_time * 1e6 / len(subjects),
                     linear_time * 1e6 / len(subjects),
                     linear_time / trie_time])

    # benchmark the trie at the Figure 8 scale for the timing record
    patterns = build_patterns(10000)
    trie = SubjectTrie()
    for index, pattern in enumerate(patterns):
        trie.insert(pattern, index)
    subjects = probe_subjects(10000)
    benchmark(trie_match_all, trie, subjects)

    report = Report("ablation_matching")
    report.table(
        "Subject matching: trie vs linear scan (per-subject cost)",
        ["patterns", "trie (us/match)", "linear (us/match)", "speedup"],
        rows)
    report.emit()

    # the trie's per-match cost must not grow with the table size ...
    assert rows[-1][1] < rows[0][1] * 3
    # ... while the linear scan visibly does
    assert rows[-1][2] > rows[0][2] * 20
    assert rows[-1][3] > 50   # at 10k patterns the trie wins big
