"""Appendix claims about the number of consumers.

"Although not shown, the latency is independent of the number of
consumers" and "the publication rate is independent of the number of
subscribers.  Therefore, the cumulative throughput over all subscribers
is proportional to the number of subscribers."  Both are consequences of
Ethernet broadcast: one transmission serves every listener.
"""

from repro.bench import AppendixExperiment, Report

CONSUMER_COUNTS = [1, 2, 4, 8, 14]
SIZE = 512
MESSAGES = 600
SAMPLES = 40


def run_sweep():
    latency, throughput = [], []
    for consumers in CONSUMER_COUNTS:
        experiment = AppendixExperiment(seed=9, consumers=consumers)
        latency.append((consumers,
                        experiment.run_latency(SIZE, samples=SAMPLES)))
        throughput.append((consumers,
                           experiment.run_throughput(SIZE, MESSAGES)))
    return latency, throughput


def test_consumer_count_independence(benchmark):
    latency, throughput = benchmark.pedantic(run_sweep, rounds=1,
                                             iterations=1)

    report = Report("ablation_consumers")
    report.table(
        f"Latency vs consumer count ({SIZE}-byte messages, batching OFF)",
        ["consumers", "mean latency (ms)", "99% CI ± (ms)"],
        [[n, r.mean_ms, r.ci99_ms] for n, r in latency])
    report.table(
        f"Throughput vs consumer count ({SIZE}-byte messages, "
        f"batching ON)",
        ["consumers", "per-consumer msgs/sec", "cumulative msgs/sec"],
        [[n, r.msgs_per_sec, r.cumulative_msgs_per_sec]
         for n, r in throughput])
    report.emit()

    # latency is independent of the number of consumers
    means = [r.mean_ms for _, r in latency]
    assert max(means) / min(means) < 1.15
    # per-consumer delivery rate is independent of the subscriber count
    rates = [r.msgs_per_sec for _, r in throughput]
    assert max(rates) / min(rates) < 1.15
    # cumulative throughput is proportional to the subscriber count
    base = throughput[0][1].cumulative_msgs_per_sec
    for n, r in throughput:
        assert abs(r.cumulative_msgs_per_sec - n * base) / (n * base) < 0.15
