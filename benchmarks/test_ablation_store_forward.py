"""Ablation: the price of store-and-forward routing.

Plain routing forwards in memory; store-and-forward stably logs every
guaranteed message at the ingress leg and waits for durable confirmation
from the egress leg.  This ablation measures what that durability costs
in cross-WAN latency and stable-storage writes — and what it buys: zero
loss across a WAN outage that the plain router simply drops through.
"""

from repro.bench import Report, summarize
from repro.core import BusConfig, InformationBus, QoS, Router, WanLink
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel, Simulator

MESSAGES = 40


def build(store_and_forward):
    sim = Simulator(seed=19)
    config = BusConfig()
    config.advert_interval = 0.4
    west = InformationBus(cost=CostModel.ideal(), name="west", sim=sim,
                          config=config)
    east = InformationBus(cost=CostModel.ideal(), name="east", sim=sim,
                          config=config)
    west.add_hosts(2, prefix="w")
    east.add_hosts(2, prefix="e")
    router = Router(link=WanLink(latency=0.02),
                    store_and_forward=store_and_forward)
    west_leg = router.add_leg(west)
    router.add_leg(east)
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "evt", attributes=[AttributeSpec("n", "int")]))
    publisher = west.client("w00", "feed", registry=reg)
    arrivals = {}
    east.client("e00", "mon").subscribe(
        "wan.>", lambda s, o, i: arrivals.setdefault(o.get("n"), sim.now),
        durable=True)
    sim.run_until(2.0)
    return sim, router, west_leg, publisher, reg, arrivals


def run_mode(store_and_forward, outage):
    sim, router, west_leg, publisher, reg, arrivals = build(
        store_and_forward)
    writes_before = west_leg.host.stable.write_count
    if outage:
        sim.schedule_at(2.1, router.link.fail)
        sim.schedule_at(4.0, router.link.restore)
    send_times = {}
    for n in range(MESSAGES):
        def send(n=n):
            send_times[n] = sim.now
            publisher.publish("wan.data", DataObject(reg, "evt", n=n),
                              qos=QoS.GUARANTEED)
        sim.schedule_at(2.05 + n * 0.05, send)
    sim.run_until(20.0)
    latencies = [arrivals[n] - send_times[n] for n in arrivals]
    return {
        "delivered": len(arrivals),
        "latency": summarize(latencies) if latencies else None,
        "stable_writes": west_leg.host.stable.write_count - writes_before,
    }


def run_ablation():
    return {
        "plain": run_mode(False, outage=False),
        "sf": run_mode(True, outage=False),
        "plain_outage": run_mode(False, outage=True),
        "sf_outage": run_mode(True, outage=True),
    }


def test_store_and_forward_costs_and_benefits(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    report = Report("ablation_store_forward")
    rows = []
    for key, label in [("plain", "plain"), ("sf", "store-and-forward"),
                       ("plain_outage", "plain + 1.9s WAN outage"),
                       ("sf_outage", "store-and-forward + outage")]:
        r = results[key]
        rows.append([label, f"{r['delivered']}/{MESSAGES}",
                     r["latency"].mean * 1000 if r["latency"] else "-",
                     r["stable_writes"]])
    report.table(
        "Store-and-forward ablation (guaranteed QoS across a 20ms WAN)",
        ["mode", "delivered", "mean cross-WAN latency (ms)",
         "ingress stable writes"],
        rows)
    report.emit()

    # healthy link: both modes deliver everything; S&F pays stable I/O
    assert results["plain"]["delivered"] == MESSAGES
    assert results["sf"]["delivered"] == MESSAGES
    assert results["sf"]["stable_writes"] > MESSAGES
    assert results["plain"]["stable_writes"] == 0
    # latency overhead of logging is modest (well under 2x here)
    assert results["sf"]["latency"].mean < \
        2.0 * results["plain"]["latency"].mean + 0.01
    # the payoff: through a WAN outage, plain routing loses messages
    # (guaranteed or not — the publisher was acked by its local durable
    # router? no: plain legs are non-durable, so the publisher ledger
    # never clears, but the *cross-WAN copies* are simply dropped);
    # store-and-forward delivers every single one
    assert results["plain_outage"]["delivered"] < MESSAGES
    assert results["sf_outage"]["delivered"] == MESSAGES
