"""Shared configuration for the figure benchmarks.

Every benchmark regenerates one exhibit from the paper's Appendix (or an
ablation of a design choice DESIGN.md calls out), prints the series in
the paper's axes, persists it under ``benchmarks/results/``, and asserts
the *shape* the paper reports — who wins, by roughly what factor, where
the curve bends.  Absolute numbers are the simulated SPARC/Ethernet
model's, not the 1993 testbed's.
"""

import pytest

from repro.core import wire

#: Message sizes swept by the Appendix figures (bytes).
SIZES = [64, 128, 256, 512, 1024, 2048, 4096, 6000, 8000, 10000]


def messages_for(size: int) -> int:
    """Enough messages to measure steadily without hour-long runs."""
    return max(60, min(2000, 300_000 // size))


@pytest.fixture
def sizes():
    return list(SIZES)


@pytest.fixture(autouse=True)
def _reset_decode_memo():
    """Start every benchmark with a cold decode memo: the module-global
    cache (and its hit/miss stats) must not leak between exhibits."""
    wire.configure_decode_memo()
    yield
    wire.configure_decode_memo()
