"""Scale: toward the intro's "one hundred to a thousand workstations".

The paper's Appendix measures 15 nodes; its introduction claims the
architecture serves plants of "one hundred to a thousand workstations".
The property that makes that plausible is the broadcast fan-out: the
publisher's cost — and therefore every consumer's delivery rate — is
flat in the number of consumers.  This bench extends the consumer sweep
well past the Appendix's 14 to show the flat line holding.
"""

from repro.bench import AppendixExperiment, Report, ascii_chart

CONSUMER_COUNTS = [14, 30, 60, 100]
SIZE = 512
MESSAGES = 300


def run_sweep():
    out = []
    for consumers in CONSUMER_COUNTS:
        experiment = AppendixExperiment(seed=18, nodes=consumers + 1,
                                        consumers=consumers)
        out.append((consumers, experiment.run_throughput(SIZE, MESSAGES)))
    return out


def test_throughput_flat_to_one_hundred_consumers(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report = Report("scale_consumers")
    report.table(
        f"Scaling the consumer population ({SIZE}-byte messages, "
        f"batching ON)",
        ["consumers", "per-consumer msgs/sec", "cumulative msgs/sec",
         "delivered"],
        [[n, r.msgs_per_sec, r.cumulative_msgs_per_sec,
          f"{r.delivery_ratio:.4f}"] for n, r in results])
    report.add(ascii_chart(
        [(n, r.msgs_per_sec) for n, r in results],
        title="Per-consumer delivery rate vs consumer count (flat = "
              "broadcast wins)",
        x_label="consumers", y_label="msgs/sec"))
    report.emit()

    rates = [r.msgs_per_sec for _, r in results]
    assert max(rates) / min(rates) < 1.10, \
        "per-consumer rate must stay flat as the population grows"
    assert all(r.delivery_ratio > 0.999 for _, r in results)
    # cumulative throughput keeps scaling linearly
    base = results[0][1].cumulative_msgs_per_sec / CONSUMER_COUNTS[0]
    for n, r in results:
        assert abs(r.cumulative_msgs_per_sec - n * base) / (n * base) < 0.10
