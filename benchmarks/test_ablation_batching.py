"""Ablation: the batch parameter.

"The Information Bus has a batch parameter that increases throughput by
delaying small messages, and gathering them together."  This ablation
shows that gain for small messages, its irrelevance for large ones, and
the latency cost that explains why Figure 5 was measured with it OFF.
"""

from repro.bench import AppendixExperiment, Report

SMALL, LARGE = 64, 8000


def run_ablation():
    experiment = AppendixExperiment(seed=10)
    out = {}
    out["small_on"] = experiment.run_throughput(SMALL, 1500, batching=True)
    out["small_off"] = experiment.run_throughput(SMALL, 1500,
                                                 batching=False)
    out["large_on"] = experiment.run_throughput(LARGE, 60, batching=True)
    out["large_off"] = experiment.run_throughput(LARGE, 60, batching=False)
    return out


def test_batching_gains_small_messages(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    report = Report("ablation_batching")
    report.table(
        "Batching ablation: throughput (1 pub, 14 consumers)",
        ["size (B)", "batching", "msgs/sec", "KB/sec"],
        [[SMALL, "ON", results["small_on"].msgs_per_sec,
          results["small_on"].bytes_per_sec / 1000],
         [SMALL, "OFF", results["small_off"].msgs_per_sec,
          results["small_off"].bytes_per_sec / 1000],
         [LARGE, "ON", results["large_on"].msgs_per_sec,
          results["large_on"].bytes_per_sec / 1000],
         [LARGE, "OFF", results["large_off"].msgs_per_sec,
          results["large_off"].bytes_per_sec / 1000]])
    report.emit()

    # batching roughly doubles small-message throughput ...
    assert results["small_on"].msgs_per_sec > \
        1.5 * results["small_off"].msgs_per_sec
    # ... and makes little difference for large messages (per-byte cost
    # dominates; a 8000-byte message fills its datagrams anyway)
    ratio = results["large_on"].msgs_per_sec / \
        results["large_off"].msgs_per_sec
    assert 0.8 < ratio < 1.3
