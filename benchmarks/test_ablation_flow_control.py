"""Ablation: flow control under overload.

The Appendix measures the bus at its plateau; this ablation measures it
*past* the plateau.  A publisher offers ~2x the host's send capacity for
five simulated seconds.  With flow control OFF (the non-shedding
defaults) nothing pushes back: the backlog hides in the host's CPU send
pipeline and grows without bound — every queued message is live memory
and unbounded latency.  With flow control ON the outbound queue is
bounded, the overflow policy sheds the excess visibly (exact counters),
throughput holds at the plateau, and guaranteed QoS still gets through.
"""

from repro.bench import Report
from repro.core import (BusConfig, FlowConfig, InformationBus,
                        POLICY_DROP_NEWEST)
from repro.objects import encode
from repro.sim.network import CostModel

PAYLOAD = encode(b"\x00" * 900)        # ~2.7 ms send CPU per message
PUBLISH_INTERVAL = 0.00145             # ~2x capacity
DURATION = 5.0


def run_overload(flow_control: bool):
    flow = (FlowConfig(publish_queue=64,
                       publish_policy=POLICY_DROP_NEWEST,
                       max_send_backlog=0.01)
            if flow_control else FlowConfig())
    bus = InformationBus(seed=42, cost=CostModel(loss_probability=0.0),
                         config=BusConfig(flow=flow))
    bus.add_hosts(2)
    publisher = bus.client("node00", "pub")
    subscriber = bus.client("node01", "sub")
    window_deliveries = [0]
    subscriber.subscribe(
        "load.data",
        lambda *_: window_deliveries.__setitem__(
            0, window_deliveries[0] + (1 if bus.sim.now <= DURATION else 0)))

    counts = {"offered": 0, "accepted": 0}
    peak_backlog = [0.0]
    host = bus.host("node00")

    def fire():
        receipt = publisher.publish_bytes("load.data", PAYLOAD)
        counts["offered"] += 1
        counts["accepted"] += 1 if receipt.accepted else 0
        peak_backlog[0] = max(peak_backlog[0], host.send_backlog)
        if bus.sim.now + PUBLISH_INTERVAL < DURATION:
            bus.sim.schedule(PUBLISH_INTERVAL, fire, name="load")

    bus.sim.schedule(0.0, fire, name="load")
    bus.run_for(DURATION)
    bus.settle(10.0)

    outbound = bus.daemon("node00").flow_stats()["outbound"]
    return {
        "offered": counts["offered"],
        "accepted": counts["accepted"],
        "dropped": outbound["dropped"],
        "queue_high_watermark": outbound["high_watermark"],
        "queue_capacity": outbound["capacity"],
        "peak_backlog_sec": peak_backlog[0],
        "throughput_msgs_sec": window_deliveries[0] / DURATION,
    }


def run_ablation():
    return {"on": run_overload(True), "off": run_overload(False)}


def test_flow_control_bounds_overload(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    on, off = results["on"], results["off"]

    report = Report("ablation_flow_control")
    report.table(
        "Flow-control ablation: publisher at ~2x capacity for 5 s",
        ["flow control", "offered", "admitted", "shed", "queue hwm",
         "peak backlog (s)", "delivered msgs/s"],
        [["ON", on["offered"], on["accepted"], on["dropped"],
          f"{on['queue_high_watermark']}/{on['queue_capacity']}",
          on["peak_backlog_sec"], on["throughput_msgs_sec"]],
         ["OFF", off["offered"], off["accepted"], off["dropped"],
          f"{off['queue_high_watermark']}/{off['queue_capacity']}",
          off["peak_backlog_sec"], off["throughput_msgs_sec"]]])
    report.emit()

    # OFF: everything is admitted and nothing is shed — the excess
    # accumulates as unbounded send-pipeline backlog (live memory,
    # unbounded latency: seconds of queued work after a 5 s burst)
    assert off["accepted"] == off["offered"]
    assert off["dropped"] == 0
    assert off["peak_backlog_sec"] > 1.0

    # ON: bounded memory — the admission queue never exceeded its cap,
    # the wire backlog stayed near the pacing bound, the excess was
    # shed *visibly* with exact counts
    assert on["queue_high_watermark"] <= on["queue_capacity"]
    assert on["peak_backlog_sec"] < 0.05
    assert on["dropped"] > 1000
    assert on["accepted"] + on["dropped"] == on["offered"]

    # ... and throughput still holds at the plateau (within 15% of the
    # drain-everything-eventually run measured over the same window)
    assert on["throughput_msgs_sec"] > 0.85 * off["throughput_msgs_sec"]
