"""RMI performance (an extension: the paper benchmarks only pub/sub).

Measures request/reply latency and sustained call rate on the calibrated
SPARC/Ethernet model, for growing result payloads.  The interesting
shape: small calls are dominated by fixed per-message costs (two CPU
passes + two wire crossings each way), so latency starts near twice the
one-way pub/sub figure and grows linearly with payload, while calls/sec
is its reciprocal.
"""

from repro.bench import Report, summarize
from repro.core import InformationBus, RmiClient, RmiServer
from repro.objects import (OperationSpec, ParamSpec, ServiceObject,
                           TypeDescriptor, standard_registry)

SIZES = [0, 1000, 4000, 8000]
CALLS = 30


def build_world():
    bus = InformationBus(seed=17)
    bus.add_hosts(3)
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "blob_service",
        operations=[OperationSpec("fetch",
                                  params=(ParamSpec("size", "int"),),
                                  result_type="bytes")]))
    svc = ServiceObject(reg, "blob_service")
    svc.implement("fetch", lambda size: b"\x00" * size)
    RmiServer(bus.client("node01", "blobs"), "svc.blobs", svc)
    client = RmiClient(bus.client("node00", "reader"), "svc.blobs",
                       call_timeout=30.0)
    return bus, client


def run_series():
    out = []
    for size in SIZES:
        bus, client = build_world()
        latencies = []
        state = {"start": None}

        def call_next(remaining):
            if remaining == 0:
                return
            state["start"] = bus.sim.now

            def done(value, error, remaining=remaining):
                assert error is None, error
                latencies.append(bus.sim.now - state["start"])
                call_next(remaining - 1)

            client.call("fetch", {"size": size}, done)

        call_next(CALLS)
        bus.run_for(60.0)
        summary = summarize(latencies)
        out.append((size, summary, CALLS / sum(latencies)))
    return out


def test_rmi_latency_and_rate(benchmark):
    series = benchmark.pedantic(run_series, rounds=1, iterations=1)

    report = Report("rmi_performance")
    report.table(
        "RMI request/reply performance (sequential calls, warm "
        "connection)",
        ["result bytes", "mean latency (ms)", "99% CI ± (ms)",
         "calls/sec"],
        [[size, s.mean * 1000, s.ci99 * 1000, rate]
         for size, s, rate in series])
    report.note("extension measurement: the paper's Appendix covers "
                "publish/subscribe only")
    report.emit()

    by_size = {size: (s, rate) for size, s, rate in series}
    # every call completed
    assert all(s.n == CALLS for _, s, _ in series)
    # request/reply costs about two one-way hops at the small end
    small = by_size[0][0].mean
    assert 0.001 < small < 0.02
    # latency grows with payload; rate falls
    assert by_size[8000][0].mean > 3 * small
    assert by_size[0][1] > 2 * by_size[8000][1]