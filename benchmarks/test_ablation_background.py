"""Ablation: unrelated network activity.

The Appendix measured on a "lightly loaded" Ethernet and attributes "the
slight decrease in throughput and increase in variance between five
thousand and ten thousand-byte messages ... to collisions from unrelated
network activity."  This ablation injects cross-traffic at increasing
offered load and shows the mechanism: contention for the shared medium
leaves mean latency roughly intact at light load but inflates its
variance dramatically — more so for large messages, which occupy the
medium longest.
"""

from repro.bench import AppendixExperiment, Report

LOADS = [0.0, 0.3, 0.6]
SIZES = [512, 8000]
SAMPLES = 40


def run_ablation():
    out = {}
    for size in SIZES:
        for load in LOADS:
            experiment = AppendixExperiment(seed=16, background_load=load)
            out[(size, load)] = experiment.run_latency(size,
                                                       samples=SAMPLES)
    return out


def test_background_load_inflates_variance(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    report = Report("ablation_background")
    report.table(
        "Unrelated network activity vs latency (1 pub, 14 consumers)",
        ["size (B)", "bg load", "mean (ms)", "variance (ms^2)"],
        [[size, f"{load:.0%}", r.mean_ms, r.variance_ms]
         for (size, load), r in sorted(results.items())])
    report.note("the Appendix's 'collisions from unrelated network "
                "activity' reproduced: light load leaves the mean almost "
                "untouched but inflates variance, most for the largest "
                "messages")
    report.emit()

    for size in SIZES:
        quiet = results[(size, 0.0)]
        busy = results[(size, 0.6)]
        # all samples still delivered (reliable QoS absorbs contention)
        assert quiet.summary().n == busy.summary().n == SAMPLES * 14
        # mean latency rises only modestly at 60% offered load ...
        assert busy.mean_ms < quiet.mean_ms * 1.5
        # ... but the variance blows up
        assert busy.variance_ms > 5 * quiet.variance_ms
    # the variance hit is larger for the biggest messages (the paper's
    # 5-10 KB observation): compare inflation factors
    small_inflation = results[(512, 0.6)].variance_ms / \
        results[(512, 0.0)].variance_ms
    large_absolute = results[(8000, 0.6)].variance_ms
    small_absolute = results[(512, 0.6)].variance_ms
    assert large_absolute > small_absolute
