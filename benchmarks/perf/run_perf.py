#!/usr/bin/env python
"""Wall-clock performance harness for the publish→deliver hot path.

The figure benches (``benchmarks/test_fig*.py``) measure *simulated*
time — the paper's axes.  This harness measures the *simulator's own*
wall-clock cost, the ceiling on how much traffic a run can push through:

* ``fanout`` — a full end-to-end scenario: 1 publisher, 8 consumer
  daemons on one broadcast segment, repeated subjects (the Figs 5–8
  shape).  Exercises every layer: publish, encode-once broadcast,
  per-receiver decode, subject matching, reliable delivery.
* ``trie_match`` — `SubjectTrie.match` alone, steady-state repeated
  subjects against a large subscription table.
* ``codec_decode`` — `decode_packet` alone on one encoded DATA frame,
  the per-receiver cost of hearing a broadcast — for both the plain and
  the header-compressed encodings.
* ``wire_bytes`` — bytes on the wire per delivered message with
  ``BusConfig.wire_compression`` off vs on: the tentpole bandwidth win,
  measured end-to-end on a data-dominated fan-out.
* ``metrics_overhead`` — the fan-out again with the unified metrics
  registry live vs stubbed (``BusConfig.metrics_stub``): instrumenting
  the hot path must cost < ``--max-metrics-overhead`` (default 5%).
* ``interest_scaling`` — per-frame receive cost with vs without local
  interest: a pre-encoded compressed stream replayed into one daemon
  that either subscribes to the feed or to nothing it carries.  The
  uninterested path (digest read + trie probe + window advance) must be
  at least ``--min-interest-ratio`` times cheaper than the full decode.
* ``typed_payload_bytes`` — per-message payload bytes for a DataObject
  feed with inline type metadata vs the session type plane
  (``BusConfig.type_plane``): after the first message of a session the
  typed payload must be at least ``--min-typed-reduction`` smaller,
  plus the same comparison end-to-end on total wire bytes.
* ``shard_scaling`` — *simulated*-time fan-out throughput with
  ``BusConfig.subject_shards`` at 1 vs 4: under the paper-calibrated
  cost model the per-packet CPU pipeline is the daemon bottleneck, and
  four shard planes (four CPU lanes) must drain a subject-spread burst
  at least ``--min-shard-ratio`` times faster.  The only bench on
  simulated time: the simulator itself is single-threaded, so shard
  planes pay wall-clock for what they save on the modelled host.

Each bench runs twice: with the caches disabled (the escape hatches:
``match_memo_capacity=0`` and ``configure_decode_memo(0)`` — the pre-PR
cost shape) and enabled (the defaults).  Both numbers land in
``BENCH_core.json`` at the repo root, the first datapoint of the perf
trajectory; future PRs append comparable runs rather than regress
silently.

Before timing anything the harness proves cache honesty twice over: a
fixed-seed scenario with bit-flip corruption and a mid-stream
subscribe/unsubscribe must produce *identical* per-consumer delivery
sequences, trace output, and corruption counters (a) with caches on and
off, (b) with wire compression on and off, and (c) with the interest
gate on and off (the gated run must additionally *skip* frames).

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/run_perf.py            # full
    PYTHONPATH=src python benchmarks/perf/run_perf.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"
if str(SRC) not in sys.path:                       # repo-relative fallback
    sys.path.insert(0, str(SRC))

from repro.core import (DAEMON_PORT, BusConfig, InformationBus,  # noqa: E402
                        QoS, StringTable, SubjectTrie, TypeTable,
                        decode_packet, encode_packet)
from repro.core import wire                                      # noqa: E402
from repro.core.message import Envelope, Packet, PacketKind      # noqa: E402
from repro.objects import (AttributeSpec, DataObject,            # noqa: E402
                           TypeDescriptor, encode, encode_typed,
                           standard_registry)
from repro.sim import CostModel, Tracer                          # noqa: E402

CONSUMERS = 8
SUBJECT_CYCLE = [f"feed.equity.s{i}" for i in range(8)]


def _configure_caches(enabled: bool) -> BusConfig:
    """Flip both cache layers at once; returns a matching BusConfig."""
    wire.configure_decode_memo(
        wire.DEFAULT_DECODE_MEMO_CAPACITY if enabled else 0)
    return BusConfig(match_memo_capacity=None if enabled else 0)


# ----------------------------------------------------------------------
# fan-out: the end-to-end hot path
# ----------------------------------------------------------------------

def _fanout_once(messages: int, caches: bool, seed: int = 2026) -> dict:
    config = _configure_caches(caches)
    bus = InformationBus(seed=seed, cost=CostModel.ideal(), config=config)
    bus.add_hosts(CONSUMERS + 1)
    counts = [0] * CONSUMERS
    # each consumer holds several overlapping wildcard subscriptions (the
    # Figure 8 shape: applications subscribe to whole subtrees, not single
    # subjects), all matching the published feed
    patterns = ["feed.>", "feed.equity.>", "feed.equity.*"]
    for i in range(CONSUMERS):
        def on_message(subject, obj, info, i=i):
            counts[i] += 1
        consumer = bus.client(f"node{i + 1:02d}", "consumer")
        for pattern in patterns:
            consumer.subscribe(pattern, on_message)
    publisher = bus.client("node00", "pub")
    payload = encode({"tick": 1}, publisher.registry, inline_types=False)

    start = time.perf_counter()
    for n in range(messages):
        publisher.publish_bytes(SUBJECT_CYCLE[n & 7], payload)
    bus.settle(10.0)
    elapsed = time.perf_counter() - start

    expected = messages * CONSUMERS * len(patterns)
    deliveries = sum(counts)
    assert deliveries == expected, (
        f"fan-out lost messages: {deliveries} != {expected}")
    return {"elapsed": elapsed, "deliveries": deliveries}


def bench_fanout(messages: int, repeats: int) -> dict:
    result = {"messages": messages, "consumers": CONSUMERS,
              "repeats": repeats}
    for label, caches in (("baseline", False), ("cached", True)):
        best = min(_fanout_once(messages, caches)["elapsed"]
                   for _ in range(repeats))
        result[f"{label}_msgs_per_sec"] = round(messages / best, 1)
        result[f"{label}_deliveries_per_sec"] = round(
            messages * CONSUMERS / best, 1)
    result["speedup"] = round(
        result["cached_msgs_per_sec"] / result["baseline_msgs_per_sec"], 2)
    return result


# ----------------------------------------------------------------------
# metrics overhead: the unified registry must stay off the hot path
# ----------------------------------------------------------------------

def _metrics_once(messages: int, stub: bool, seed: int = 2026) -> dict:
    """The fan-out scenario again, pivoted on ``metrics_stub``: live
    per-name instruments vs the shared throwaway ones."""
    wire.configure_decode_memo()
    bus = InformationBus(seed=seed, cost=CostModel.ideal(),
                         config=BusConfig(metrics_stub=stub))
    bus.add_hosts(CONSUMERS + 1)
    counts = [0] * CONSUMERS
    patterns = ["feed.>", "feed.equity.>", "feed.equity.*"]
    for i in range(CONSUMERS):
        def on_message(subject, obj, info, i=i):
            counts[i] += 1
        consumer = bus.client(f"node{i + 1:02d}", "consumer")
        for pattern in patterns:
            consumer.subscribe(pattern, on_message)
    publisher = bus.client("node00", "pub")
    payload = encode({"tick": 1}, publisher.registry, inline_types=False)

    start = time.perf_counter()
    for n in range(messages):
        publisher.publish_bytes(SUBJECT_CYCLE[n & 7], payload)
    bus.settle(10.0)
    elapsed = time.perf_counter() - start

    expected = messages * CONSUMERS * len(patterns)
    deliveries = sum(counts)
    assert deliveries == expected, (
        f"metrics bench lost messages: {deliveries} != {expected}")
    if stub:
        assert all(d.metrics.snapshot() == {}
                   for d in bus.daemons.values()), "stub mode registered"
    else:
        assert all(d.metrics.snapshot() for d in bus.daemons.values()), (
            "live registries are empty — nothing was measured")
    return {"elapsed": elapsed, "deliveries": deliveries}


def bench_metrics_overhead(messages: int, repeats: int) -> dict:
    """Fan-out throughput with the registry live vs stubbed.  The stub
    shares one throwaway instrument per kind, so the increments still
    execute and the difference isolates what per-name instruments add."""
    result = {"messages": messages, "consumers": CONSUMERS,
              "repeats": repeats}
    for label, stub in (("stubbed", True), ("live", False)):
        best = min(_metrics_once(messages, stub)["elapsed"]
                   for _ in range(repeats))
        result[f"{label}_msgs_per_sec"] = round(messages / best, 1)
    result["overhead"] = round(
        result["stubbed_msgs_per_sec"] / result["live_msgs_per_sec"] - 1.0,
        4)
    return result


# ----------------------------------------------------------------------
# trie matching alone
# ----------------------------------------------------------------------

def bench_trie(iterations: int, repeats: int, patterns: int = 2000) -> dict:
    subjects = [f"feed.equity.s{i:04d}" for i in range(32)]
    result = {"iterations": iterations, "patterns": patterns + 2,
              "repeats": repeats}
    expected = None
    for label, capacity in (("baseline", 0), ("cached", 1024)):
        trie: SubjectTrie = SubjectTrie(memo_capacity=capacity)
        for i in range(patterns):
            trie.insert(f"feed.equity.s{i:04d}", i)
        trie.insert("feed.>", "tail")
        trie.insert("feed.*.s0001", "star")
        best, checksum = None, 0
        for _ in range(repeats):
            total = 0
            start = time.perf_counter()
            for n in range(iterations):
                total += len(trie.match(subjects[n & 31]))
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            checksum = total
        if expected is None:
            expected = checksum
        assert checksum == expected, "memo changed match results"
        result[f"{label}_matches_per_sec"] = round(iterations / best, 1)
    result["speedup"] = round(result["cached_matches_per_sec"]
                              / result["baseline_matches_per_sec"], 2)
    return result


# ----------------------------------------------------------------------
# wire codec alone
# ----------------------------------------------------------------------

def bench_codec(iterations: int, repeats: int) -> dict:
    envelopes = [Envelope(subject=SUBJECT_CYCLE[i & 7], sender="node00.pub",
                          session="node00#0", seq=i + 1, payload=b"x" * 64,
                          publish_time=0.25)
                 for i in range(4)]
    data = encode_packet(Packet(PacketKind.DATA, "node00#0", envelopes,
                                last_seq=4, session_start=0.0))
    result = {"iterations": iterations, "frame_bytes": len(data),
              "envelopes_per_frame": len(envelopes), "repeats": repeats}
    reference = None
    for label, capacity in (("baseline", 0), ("cached", 256)):
        wire.configure_decode_memo(capacity)
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(iterations):
                packet = decode_packet(data)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        decoded = [(e.subject, e.seq, e.payload) for e in packet.envelopes]
        if reference is None:
            reference = decoded
        assert decoded == reference, "memo changed decode results"
        result[f"{label}_decodes_per_sec"] = round(iterations / best, 1)
    result["speedup"] = round(result["cached_decodes_per_sec"]
                              / result["baseline_decodes_per_sec"], 2)

    # the same steady-state frame, header-compressed: a defining first
    # frame primes the receiver table, then the reference-only frame is
    # what every receiver decodes per broadcast in the common case
    table = StringTable()
    first = [Envelope(subject=SUBJECT_CYCLE[i & 7], sender="node00.pub",
                      session="node00#0", seq=i + 1, payload=b"x" * 64,
                      publish_time=0.25)
             for i in range(4)]
    defining = encode_packet(Packet(PacketKind.DATA, "node00#0", first,
                                    last_seq=4, session_start=0.0), table)
    steady = [Envelope(subject=SUBJECT_CYCLE[i & 7], sender="node00.pub",
                       session="node00#0", seq=i + 5, payload=b"x" * 64,
                       publish_time=0.5)
              for i in range(4)]
    data_z = encode_packet(Packet(PacketKind.DATA, "node00#0", steady,
                                  last_seq=8, session_start=0.0), table)
    result["compressed_frame_bytes"] = len(data_z)
    for label, capacity in (("baseline", 0), ("cached", 256)):
        wire.configure_decode_memo(capacity)
        tables: dict = {}
        decode_packet(defining, tables=tables)
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(iterations):
                packet = decode_packet(data_z, tables=tables)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        decoded = [(e.subject, e.seq, e.payload) for e in packet.envelopes]
        assert [d[0] for d in decoded] == [d[0] for d in reference], \
            "compressed decode resolved different subjects"
        result[f"compressed_{label}_decodes_per_sec"] = round(
            iterations / best, 1)
    # compression must not slow the per-receiver fresh-parse path down
    result["compressed_vs_plain"] = round(
        result["compressed_baseline_decodes_per_sec"]
        / result["baseline_decodes_per_sec"], 2)
    return result


# ----------------------------------------------------------------------
# wire bytes: header compression on vs off, end to end
# ----------------------------------------------------------------------

WIRE_SUBJECT = "market.feed.equity.gmc.tick"


def bench_wire_bytes(messages: int) -> dict:
    """Bytes on the wire per delivered message, compression off vs on.

    Adverts are disabled and the run is data-dominated (small payloads,
    a hierarchical subject, a short settle) so the comparison measures
    header compression rather than heartbeat chatter.
    """
    result = {"messages": messages, "consumers": 3, "subject": WIRE_SUBJECT}
    for label, compression in (("plain", False), ("compressed", True)):
        wire.configure_decode_memo()
        bus = InformationBus(
            seed=7, cost=CostModel.ideal(),
            config=BusConfig(wire_compression=compression,
                             advertise_subscriptions=False))
        bus.add_hosts(4)
        counts = [0]
        def on_message(subject, obj, info):
            counts[0] += 1
        for i in range(1, 4):
            bus.client(f"node{i:02d}", "mon").subscribe(
                "market.>", on_message)
        publisher = bus.client("node00", "pub")
        payload = encode({"tick": 1}, publisher.registry, inline_types=False)
        for _ in range(messages):
            publisher.publish_bytes(WIRE_SUBJECT, payload)
        bus.settle(5.0)
        assert counts[0] == messages * 3, (
            f"wire_bytes lost messages: {counts[0]} != {messages * 3}")
        result[f"{label}_bytes"] = bus.lan.bytes_transmitted
        result[f"{label}_bytes_per_msg"] = round(
            bus.lan.bytes_transmitted / messages, 1)
    result["reduction"] = round(
        1.0 - result["compressed_bytes"] / result["plain_bytes"], 3)
    return result


# ----------------------------------------------------------------------
# interest scaling: what an uninteresting frame costs a daemon
# ----------------------------------------------------------------------

ENVELOPES_PER_FRAME = 8


def _interest_stream(frames: int, registry) -> list:
    """A compressed steady-state DATA stream from one publisher session:
    contiguous seqs, ``ENVELOPES_PER_FRAME`` envelopes per frame over the
    ``SUBJECT_CYCLE`` subjects.  Frame 0 carries the table definitions;
    the rest are reference-only, the shape a daemon sees all day."""
    table = StringTable()
    payload = encode({"tick": 1}, registry, inline_types=False)
    out, seq = [], 1
    for _ in range(frames):
        envelopes = []
        for _ in range(ENVELOPES_PER_FRAME):
            envelopes.append(Envelope(
                subject=SUBJECT_CYCLE[seq & 7], sender="node00.pub",
                session="node00#0", seq=seq, payload=payload,
                publish_time=0.25))
            seq += 1
        out.append(encode_packet(
            Packet(PacketKind.DATA, "node00#0", envelopes,
                   last_seq=seq - 1, session_start=0.0), table=table))
    return out


def _interest_once(frames: int, interested: bool) -> dict:
    """Replay a pre-encoded stream straight into one daemon's datagram
    handler and time the receive path alone.  The first frame is fed
    un-timed: it defines the string table and establishes the reliable
    session (first contact always takes the full path)."""
    wire.configure_decode_memo()
    bus = InformationBus(seed=9, cost=CostModel.ideal(),
                         config=BusConfig(advertise_subscriptions=False))
    bus.add_hosts(2)
    count = [0]
    consumer = bus.client("node01", "mon")
    consumer.subscribe("feed.>" if interested else "quiet.>",
                       lambda s, p, info: count.__setitem__(0, count[0] + 1))
    stream = _interest_stream(frames, consumer.registry)
    daemon = bus.daemons["node01"]
    src = ("node00", DAEMON_PORT)
    daemon._on_datagram(stream[0], len(stream[0]), src)

    start = time.perf_counter()
    for data in stream[1:]:
        daemon._on_datagram(data, len(data), src)
    elapsed = time.perf_counter() - start

    timed = len(stream) - 1
    if interested:
        assert count[0] == frames * ENVELOPES_PER_FRAME, (
            f"interested daemon lost messages: {count[0]}")
        assert daemon.skipped_frames == 0, "interested daemon skipped"
    else:
        assert count[0] == 0
        assert daemon.skipped_frames == timed, (
            f"gate missed frames: {daemon.skipped_frames} != {timed}")
        assert daemon.skipped_envelopes == timed * ENVELOPES_PER_FRAME
    # either way the reliable window consumed the whole stream
    stats = daemon.reliable_stats("node00#0")
    assert stats.delivered == frames * ENVELOPES_PER_FRAME
    assert stats.nacks_sent == 0
    return {"elapsed": elapsed, "frames": timed}


def bench_interest_scaling(frames: int, repeats: int) -> dict:
    """Per-frame receive cost with vs without local interest.

    The tentpole claim: a daemon that subscribes to none of a frame's
    subjects pays O(header) — digest read, trie probe, window advance —
    instead of O(frame).  ``interest_ratio`` is how many times cheaper
    the uninterested path is; the CI floor (``--min-interest-ratio``)
    keeps it a structural property, not a tuning accident."""
    result = {"frames": frames, "envelopes_per_frame": ENVELOPES_PER_FRAME,
              "repeats": repeats}
    for label, interested in (("interested", True), ("uninterested", False)):
        best = min(_interest_once(frames, interested)["elapsed"]
                   for _ in range(repeats))
        result[f"{label}_frames_per_sec"] = round((frames - 1) / best, 1)
    result["interest_ratio"] = round(
        result["uninterested_frames_per_sec"]
        / result["interested_frames_per_sec"], 2)
    return result


# ----------------------------------------------------------------------
# compression honesty: same seed, wire compression on/off, identical
# observable behaviour
# ----------------------------------------------------------------------

def _pivot_once(messages: int, seed: int = 42, **flags) -> dict:
    """The check_determinism scenario, pivoted on one ``BusConfig`` flag:
    corruption faults plus a mid-stream subscribe and unsubscribe, after
    a clean warm-up that publishes every subject once so the table
    definitions reach every daemon before faults start (the unresolvable
    path is covered by the integration tests; here both modes must walk
    the exact same event timeline)."""
    wire.configure_decode_memo()           # defaults in both modes
    tracer = Tracer(enabled=True)
    cost = CostModel.ideal()
    # frame sizes differ between the modes; exact-zero wire time keeps
    # the event timeline identical regardless of encoding length
    cost.bandwidth_bytes_per_sec = float("inf")
    bus = InformationBus(seed=seed, cost=cost, tracer=tracer,
                         config=BusConfig(advertise_subscriptions=False,
                                          **flags))
    bus.add_hosts(5)
    inboxes: dict = {}
    for i in range(1, 4):
        address = f"node{i:02d}"
        box: list = []
        inboxes[address] = box
        bus.client(address, "mon").subscribe(
            "feed.>", lambda s, p, info, box=box: box.append((s, p["n"])))

    late = bus.client("node04", "late")
    late_box: list = []
    inboxes["node04"] = late_box
    state: dict = {}

    def join():
        state["sub"] = late.subscribe(
            "feed.>", lambda s, p, info: late_box.append((s, p["n"])))

    def leave():
        late.unsubscribe(state["sub"])

    publisher = bus.client("node00", "pub")
    for n, subject in enumerate(SUBJECT_CYCLE):     # clean warm-up
        bus.sim.schedule(0.01 + n * 0.01, publisher.publish,
                         subject, {"n": n})

    def arm_fault():
        bus.lan.corrupt_rate = 0.12

    bus.sim.schedule(0.3, arm_fault)
    bus.sim.schedule(0.8, join)
    bus.sim.schedule(1.8, leave)

    interval = 2.5 / messages
    for n in range(messages):
        bus.sim.schedule(0.4 + n * interval, publisher.publish,
                         SUBJECT_CYCLE[n & 7], {"n": n + len(SUBJECT_CYCLE)})
    bus.run_for(30.0)
    session = bus.daemons["node00"].session
    return {
        "inboxes": inboxes,
        "trace": [(r.time, r.category, r.fields) for r in tracer.records],
        "corrupt_dropped": sum(d.corrupt_dropped
                               for d in bus.daemons.values()),
        "unresolved_dropped": sum(d.unresolved_dropped
                                  for d in bus.daemons.values()),
        "frames_corrupted": bus.lan.frames_corrupted,
        "bytes": bus.lan.bytes_transmitted,
        "skipped_frames": sum(d.skipped_frames
                              for d in bus.daemons.values()),
        # how every receiver tracked the publisher session: the gate
        # must advance windows exactly as the full path would
        "recv_stats": {
            address: (stats.delivered, stats.duplicates, stats.nacks_sent)
            for address in sorted(bus.daemons)
            if address != "node00"
            for stats in [bus.daemons[address].reliable_stats(session)]
        },
    }


def check_compression_honesty(messages: int) -> dict:
    plain = _pivot_once(messages, wire_compression=False)
    compressed = _pivot_once(messages, wire_compression=True)
    problems = []
    if plain["inboxes"] != compressed["inboxes"]:
        problems.append("delivery sequences differ")
    if plain["trace"] != compressed["trace"]:
        problems.append("trace records differ")
    for key in ("corrupt_dropped", "frames_corrupted"):
        if plain[key] != compressed[key]:
            problems.append(f"{key} differs "
                            f"({plain[key]} != {compressed[key]})")
    if plain["frames_corrupted"] == 0:
        problems.append("corruption fault was not exercised")
    if compressed["corrupt_dropped"] == 0:
        problems.append("no corrupted frame was CRC-rejected")
    if compressed["unresolved_dropped"] != 0:
        problems.append("warm-up leaked an unresolvable id "
                        "(timeline would diverge)")
    if compressed["bytes"] >= plain["bytes"]:
        problems.append("compression did not reduce bytes "
                        f"({compressed['bytes']} >= {plain['bytes']})")
    total = sum(len(box) for box in compressed["inboxes"].values())
    return {
        "ok": not problems,
        "problems": problems,
        "messages": messages,
        "deliveries": total,
        "trace_records": len(compressed["trace"]),
        "frames_corrupted": compressed["frames_corrupted"],
        "corrupt_dropped": compressed["corrupt_dropped"],
        "bytes_plain": plain["bytes"],
        "bytes_compressed": compressed["bytes"],
    }


def check_gating_honesty(messages: int) -> dict:
    """Same seed, ``interest_gating`` on vs off: the skip path must be
    invisible.  The scenario keeps daemons with *no* interest on the
    segment (node04 outside its subscribe/unsubscribe window) under
    corruption faults, so frames are both skipped and repaired; the
    mid-stream subscribe doubles as the late-interest boundary case.
    ``wire.skipped_*`` / ``wire.lazy.*`` counters are the only expected
    difference and stay out of the comparison."""
    gated = _pivot_once(messages, interest_gating=True)
    ungated = _pivot_once(messages, interest_gating=False)
    problems = []
    if gated["inboxes"] != ungated["inboxes"]:
        problems.append("delivery sequences differ")
    if gated["trace"] != ungated["trace"]:
        problems.append("trace records differ")
    for key in ("corrupt_dropped", "unresolved_dropped",
                "frames_corrupted", "bytes", "recv_stats"):
        if gated[key] != ungated[key]:
            problems.append(f"{key} differs "
                            f"({gated[key]} != {ungated[key]})")
    if gated["frames_corrupted"] == 0:
        problems.append("corruption fault was not exercised")
    if gated["skipped_frames"] == 0:
        problems.append("interest gate never skipped a frame")
    if ungated["skipped_frames"] != 0:
        problems.append("frames skipped with gating off")
    total = sum(len(box) for box in gated["inboxes"].values())
    return {
        "ok": not problems,
        "problems": problems,
        "messages": messages,
        "deliveries": total,
        "trace_records": len(gated["trace"]),
        "frames_corrupted": gated["frames_corrupted"],
        "corrupt_dropped": gated["corrupt_dropped"],
        "skipped_frames": gated["skipped_frames"],
    }


# ----------------------------------------------------------------------
# the session type plane: payload bytes and same-seed honesty
# ----------------------------------------------------------------------

def _typed_registry():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "tick_source", attributes=[AttributeSpec("name", "string")]))
    reg.register(TypeDescriptor(
        "tick", attributes=[
            AttributeSpec("n", "int"),
            AttributeSpec("venue", "string", required=False),
            AttributeSpec("source", "tick_source", required=False)]))
    return reg


def _make_tick(reg, n: int) -> DataObject:
    return DataObject(reg, "tick", n=n, venue="NYSE",
                      source=DataObject(reg, "tick_source", name="feedco"))


def bench_typed_payload_bytes(messages: int) -> dict:
    """Per-message payload bytes, inline metadata vs the type plane.

    ``payload_reduction`` is the steady-state per-message saving — what
    every message after the first of a session stops carrying.  The
    end-to-end run repeats the comparison on total wire bytes with
    ``BusConfig.type_plane`` flipped (both runs deliver identically;
    ``check_typed_honesty`` proves that separately).
    """
    reg = _typed_registry()
    obj = _make_tick(reg, 1)
    table = TypeTable()
    typed_payload, _ = encode_typed(obj, reg, table)
    inline_payload = encode(obj, reg, inline_types=True)
    result = {
        "messages": messages, "consumers": 3,
        "inline_payload_bytes": len(inline_payload),
        "typed_payload_bytes": len(typed_payload),
        "payload_reduction": round(
            1.0 - len(typed_payload) / len(inline_payload), 3),
    }
    for label, plane in (("flat", False), ("plane", True)):
        wire.configure_decode_memo()
        bus = InformationBus(
            seed=7, cost=CostModel.ideal(),
            config=BusConfig(type_plane=plane,
                             advertise_subscriptions=False))
        bus.add_hosts(4)
        counts = [0]
        def on_message(subject, obj, info):
            counts[0] += 1
        for i in range(1, 4):
            bus.client(f"node{i:02d}", "mon").subscribe(
                "market.>", on_message)
        publisher = bus.client("node00", "pub",
                               registry=_typed_registry())
        for n in range(messages):
            publisher.publish(WIRE_SUBJECT, _make_tick(reg, n))
        bus.settle(5.0)
        assert counts[0] == messages * 3, (
            f"typed bench lost messages: {counts[0]} != {messages * 3}")
        result[f"{label}_bytes"] = bus.lan.bytes_transmitted
        result[f"{label}_bytes_per_msg"] = round(
            bus.lan.bytes_transmitted / messages, 1)
    result["wire_reduction"] = round(
        1.0 - result["plane_bytes"] / result["flat_bytes"], 3)
    return result


def _typed_pivot_once(messages: int, seed: int = 42, **flags) -> dict:
    """The honesty scenario once more, publishing *DataObjects* and
    pivoted on ``BusConfig.type_plane``: corruption faults plus a
    mid-stream subscribe and unsubscribe, after a clean warm-up that
    publishes every subject once so string tables AND typedefs reach
    every daemon before faults arm.  Payload bytes legitimately differ
    between the modes, so trace fields named ``size`` are masked out of
    the returned trace, and the MTU is raised so neither mode's repair
    frames fragment (fragment boundaries follow payload size — the very
    thing being optimised); everything else must be bit-identical."""
    wire.configure_decode_memo()
    tracer = Tracer(enabled=True)
    cost = CostModel.ideal()
    cost.bandwidth_bytes_per_sec = float("inf")
    cost.mtu = 1 << 20
    bus = InformationBus(seed=seed, cost=cost, tracer=tracer,
                         config=BusConfig(advertise_subscriptions=False,
                                          **flags))
    bus.add_hosts(5)
    reg = _typed_registry()
    inboxes: dict = {}
    for i in range(1, 4):
        address = f"node{i:02d}"
        box: list = []
        inboxes[address] = box
        bus.client(address, "mon").subscribe(
            "feed.>",
            lambda s, o, info, box=box: box.append((s, o.get("n"))))

    late = bus.client("node04", "late")
    late_box: list = []
    inboxes["node04"] = late_box
    state: dict = {}

    def join():
        state["sub"] = late.subscribe(
            "feed.>", lambda s, o, info: late_box.append((s, o.get("n"))))

    def leave():
        late.unsubscribe(state["sub"])

    publisher = bus.client("node00", "pub", registry=_typed_registry())
    for n, subject in enumerate(SUBJECT_CYCLE):     # clean warm-up
        bus.sim.schedule(0.01 + n * 0.01, publisher.publish,
                         subject, _make_tick(reg, n))

    def arm_fault():
        bus.lan.corrupt_rate = 0.12

    bus.sim.schedule(0.3, arm_fault)
    bus.sim.schedule(0.8, join)
    bus.sim.schedule(1.8, leave)

    interval = 2.5 / messages
    for n in range(messages):
        bus.sim.schedule(0.4 + n * interval, publisher.publish,
                         SUBJECT_CYCLE[n & 7],
                         _make_tick(reg, n + len(SUBJECT_CYCLE)))
    bus.run_for(30.0)
    session = bus.daemons["node00"].session
    decode_errors = sum(c.decode_errors
                        for d in bus.daemons.values()
                        for c in d.clients.values())
    return {
        "inboxes": inboxes,
        "trace": [(r.time, r.category,
                   {k: v for k, v in r.fields.items() if k != "size"})
                  for r in tracer.records],
        "retransmits": sum(1 for r in tracer.records
                           if r.category == "retransmit"),
        "corrupt_dropped": sum(d.corrupt_dropped
                               for d in bus.daemons.values()),
        "unresolved_dropped": sum(d.unresolved_dropped
                                  for d in bus.daemons.values()),
        "typedef_unresolved": sum(d.typedef_unresolved_dropped
                                  for d in bus.daemons.values()),
        "decode_errors": decode_errors,
        "frames_corrupted": bus.lan.frames_corrupted,
        "bytes": bus.lan.bytes_transmitted,
        "skipped_frames": sum(d.skipped_frames
                              for d in bus.daemons.values()),
        "recv_stats": {
            address: (stats.delivered, stats.duplicates, stats.nacks_sent)
            for address in sorted(bus.daemons)
            if address != "node00"
            for stats in [bus.daemons[address].reliable_stats(session)]
        },
    }


def check_typed_honesty(messages: int) -> dict:
    """Same seed, ``type_plane`` on vs off: deliveries, traces (sizes
    masked) and every counter must match under corruption faults,
    retransmission and a mid-stream (late-joining) subscriber — while
    the plane run moves fewer bytes."""
    plane = _typed_pivot_once(messages, type_plane=True)
    flat = _typed_pivot_once(messages, type_plane=False)
    problems = []
    if plane["inboxes"] != flat["inboxes"]:
        problems.append("delivery sequences differ")
    if plane["trace"] != flat["trace"]:
        problems.append("trace records differ")
    for key in ("corrupt_dropped", "frames_corrupted", "recv_stats",
                "skipped_frames", "retransmits"):
        if plane[key] != flat[key]:
            problems.append(f"{key} differs "
                            f"({plane[key]} != {flat[key]})")
    if plane["frames_corrupted"] == 0:
        problems.append("corruption fault was not exercised")
    if plane["retransmits"] == 0:
        problems.append("no retransmission was exercised")
    if not plane["inboxes"]["node04"]:
        problems.append("late-joining subscriber heard nothing")
    for label, run in (("plane", plane), ("flat", flat)):
        if run["unresolved_dropped"] or run["typedef_unresolved"]:
            problems.append(f"{label} run leaked an unresolvable id "
                            "(timeline would diverge)")
        if run["decode_errors"]:
            problems.append(f"{label} run hit payload decode errors")
    if plane["bytes"] >= flat["bytes"]:
        problems.append("type plane did not reduce bytes "
                        f"({plane['bytes']} >= {flat['bytes']})")
    total = sum(len(box) for box in plane["inboxes"].values())
    return {
        "ok": not problems,
        "problems": problems,
        "messages": messages,
        "deliveries": total,
        "midstream_subscriber_deliveries": len(plane["inboxes"]["node04"]),
        "trace_records": len(plane["trace"]),
        "frames_corrupted": plane["frames_corrupted"],
        "corrupt_dropped": plane["corrupt_dropped"],
        "retransmits": plane["retransmits"],
        "bytes_plane": plane["bytes"],
        "bytes_flat": flat["bytes"],
    }


# ----------------------------------------------------------------------
# subject-space sharding: simulated-time scaling and same-seed honesty
# ----------------------------------------------------------------------

#: first elements whose crc32 lands on shards 0..3 at four planes — the
#: round-robin burst spreads evenly, every plane carries traffic
SHARD_FIRSTS = ("news", "feed0", "alpha", "beta")


def _shard_fanout_once(messages: int, shards: int, seed: int = 2026) -> dict:
    """One subject-spread burst under the paper-calibrated cost model,
    measured in *simulated* seconds from first publish to last delivery.
    Jitter and loss are zeroed so the drain time is pure pipeline shape:
    one CPU lane per shard plane against one shared wire."""
    wire.configure_decode_memo()
    cost = CostModel(cpu_jitter=0.0, loss_probability=0.0)
    bus = InformationBus(seed=seed, cost=cost,
                         config=BusConfig(subject_shards=shards,
                                          advertise_subscriptions=False))
    consumers = 4
    bus.add_hosts(consumers + 1)
    done = {"count": 0, "last": 0.0}

    def on_message(subject, obj, info):
        done["count"] += 1
        done["last"] = bus.sim.now

    for i in range(consumers):
        bus.client(f"node{i + 1:02d}", "consumer").subscribe(
            ">", on_message)
    publisher = bus.client("node00", "pub")
    payload = encode({"tick": 1}, publisher.registry, inline_types=False)
    for n in range(messages):
        publisher.publish_bytes(
            f"{SHARD_FIRSTS[n & 3]}.tick{n & 7}", payload)
    bus.settle(180.0)
    expected = messages * consumers
    assert done["count"] == expected, (
        f"shard fan-out lost messages: {done['count']} != {expected}")
    if shards > 1:
        published = {row["shard"]: row["published"]
                     for row in bus.daemon("node00").shard_stats()}
        assert all(published[k] > 0 for k in range(shards)), (
            f"burst did not spread across planes: {published}")
    return {"elapsed": done["last"], "deliveries": done["count"]}


def bench_shard_scaling(messages: int) -> dict:
    """Fan-out drain time at 1 vs 4 shard planes, in simulated time.

    The tentpole claim: the single daemon's CPU pipeline is the fan-out
    ceiling, and hash-sharding the subject space onto per-plane lanes
    raises it.  ``shard_ratio`` is the throughput multiple at 4 planes;
    the CI floor (``--min-shard-ratio``) keeps it structural."""
    result = {"messages": messages, "consumers": 4,
              "firsts": list(SHARD_FIRSTS)}
    for label, shards in (("one", 1), ("four", 4)):
        run = _shard_fanout_once(messages, shards)
        result[f"{label}_sim_seconds"] = round(run["elapsed"], 4)
        result[f"{label}_sim_msgs_per_sec"] = round(
            messages / run["elapsed"], 1)
    result["shard_ratio"] = round(result["four_sim_msgs_per_sec"]
                                  / result["one_sim_msgs_per_sec"], 2)
    return result


SHARD_SUBJECTS = [f"{SHARD_FIRSTS[i & 3]}.s{i & 7}" for i in range(8)]


def _shard_pivot_once(messages: int, shards: int, seed: int = 42) -> dict:
    """The honesty scenario pivoted on ``subject_shards``: literal,
    wildcard and durable subscribers, a mid-stream subscribe and
    unsubscribe, and periodic guaranteed publishes, under a zero-CPU
    infinite-bandwidth cost model.  Zero CPU keeps event *times*
    identical whether sends serialize on one lane or four; per-plane
    sequence counters legitimately renumber, so ``seq`` is masked from
    the trace alongside ``size`` (session strings differ by plane)."""
    wire.configure_decode_memo()
    tracer = Tracer(enabled=True)
    cost = CostModel(bandwidth_bytes_per_sec=float("inf"),
                     cpu_send_per_packet=0.0, cpu_send_per_byte=0.0,
                     cpu_recv_per_packet=0.0, cpu_recv_per_byte=0.0,
                     cpu_jitter=0.0, loss_probability=0.0)
    bus = InformationBus(seed=seed, cost=cost, tracer=tracer,
                         config=BusConfig(subject_shards=shards,
                                          advertise_subscriptions=False))
    bus.add_hosts(5)
    inboxes: dict = {}

    def collect(address):
        box = inboxes.setdefault(address, {})
        return lambda s, p, info: box.setdefault(s, []).append(p["n"])

    lit = bus.client("node01", "lit")
    lit.subscribe("news.>", collect("node01"))        # one plane
    lit.subscribe("alpha.>", collect("node01"))       # another plane
    bus.client("node02", "wild").subscribe(">", collect("node02"))
    bus.client("node03", "db").subscribe("feed0.>", collect("node03"),
                                         durable=True)
    late = bus.client("node04", "late")
    state: dict = {}

    def join():
        state["sub"] = late.subscribe(">", collect("node04"))

    def leave():
        late.unsubscribe(state["sub"])

    bus.sim.schedule(0.8, join)
    bus.sim.schedule(1.8, leave)

    publisher = bus.client("node00", "pub")
    interval = 2.5 / messages
    for n in range(messages):
        # every 8th message rides the guaranteed path, on the plane the
        # durable consumer covers (feed0 -> acks must drain the ledger)
        qos = QoS.GUARANTEED if n & 7 == 1 else QoS.RELIABLE
        bus.sim.schedule(0.01 + n * interval, publisher.publish,
                         SHARD_SUBJECTS[n & 7], {"n": n}, qos)
    bus.run_for(30.0)
    facade = bus.daemon("node00")
    return {
        "inboxes": inboxes,
        "trace": [(r.time, r.category,
                   {k: v for k, v in r.fields.items()
                    if k not in ("seq", "size")})
                  for r in tracer.records],
        "published": sum(d.published for d in bus.daemons.values()),
        "delivered": sum(d.delivered for d in bus.daemons.values()),
        "acks_sent": sum(d.acks_sent for d in bus.daemons.values()),
        "corrupt_dropped": sum(d.corrupt_dropped
                               for d in bus.daemons.values()),
        "pending": len(facade.guaranteed_pending()),
        "retransmissions": facade.sender_retransmissions(),
    }


def check_sharding_honesty(messages: int) -> dict:
    """Same seed, ``subject_shards=4`` vs ``1``: per-subject delivery
    sequences, daemon counters, and the seq/size-masked trace must be
    bit-identical — sharding relocates work, it must not reorder,
    drop, or duplicate anything."""
    sharded = _shard_pivot_once(messages, shards=4)
    classic = _shard_pivot_once(messages, shards=1)
    problems = []
    if sharded["inboxes"] != classic["inboxes"]:
        problems.append("per-subject delivery sequences differ")
    if sharded["trace"] != classic["trace"]:
        problems.append("trace records differ")
    for key in ("published", "delivered", "acks_sent", "corrupt_dropped",
                "pending", "retransmissions"):
        if sharded[key] != classic[key]:
            problems.append(f"{key} differs "
                            f"({sharded[key]} != {classic[key]})")
    if sharded["acks_sent"] == 0:
        problems.append("guaranteed path was not exercised")
    if sharded["pending"] != 0:
        problems.append("guaranteed ledger did not drain "
                        f"({sharded['pending']} pending)")
    if not sharded["inboxes"].get("node04"):
        problems.append("mid-stream subscriber heard nothing")
    total = sum(len(ns) for box in sharded["inboxes"].values()
                for ns in box.values())
    return {
        "ok": not problems,
        "problems": problems,
        "messages": messages,
        "deliveries": total,
        "trace_records": len(sharded["trace"]),
        "acks_sent": sharded["acks_sent"],
        "midstream_subscriber_subjects":
            len(sharded["inboxes"].get("node04", {})),
    }


# ----------------------------------------------------------------------
# cache honesty: same seed, caches on/off, identical observable behaviour
# ----------------------------------------------------------------------

def _determinism_once(caches: bool, messages: int, seed: int = 77) -> dict:
    """A hostile fixed-seed scenario: corruption faults plus a mid-stream
    subscribe and unsubscribe (the memo-invalidation edges)."""
    config = _configure_caches(caches)
    tracer = Tracer(enabled=True)
    bus = InformationBus(seed=seed, cost=CostModel.ideal(), config=config,
                         tracer=tracer)
    bus.add_hosts(5)
    bus.lan.corrupt_rate = 0.12
    inboxes: dict = {}
    for i in range(1, 4):
        address = f"node{i:02d}"
        box: list = []
        inboxes[address] = box
        bus.client(address, "mon").subscribe(
            "feed.>", lambda s, p, info, box=box: box.append((s, p["n"])))

    late = bus.client("node04", "late")
    late_box: list = []
    inboxes["node04"] = late_box
    state: dict = {}

    def join():       # subscribe mid-stream: must take effect immediately
        state["sub"] = late.subscribe(
            "feed.>", lambda s, p, info: late_box.append((s, p["n"])))

    def leave():      # unsubscribe mid-stream: no stale memo deliveries
        late.unsubscribe(state["sub"])

    bus.sim.schedule(0.5, join)
    bus.sim.schedule(1.5, leave)

    publisher = bus.client("node00", "pub")
    interval = 2.5 / messages

    def publish(n: int) -> None:
        publisher.publish(SUBJECT_CYCLE[n & 7], {"n": n})

    for n in range(messages):
        bus.sim.schedule(0.01 + n * interval, publish, n)
    bus.run_for(30.0)

    return {
        "inboxes": inboxes,
        "trace": [(r.time, r.category, r.fields) for r in tracer.records],
        "corrupt_dropped": sum(d.corrupt_dropped
                               for d in bus.daemons.values()),
        "frames_corrupted": bus.lan.frames_corrupted,
        "decode_memo": wire.decode_memo_stats(),
    }


def check_determinism(messages: int) -> dict:
    plain = _determinism_once(caches=False, messages=messages)
    cached = _determinism_once(caches=True, messages=messages)
    problems = []
    if plain["inboxes"] != cached["inboxes"]:
        problems.append("delivery sequences differ")
    if plain["trace"] != cached["trace"]:
        problems.append("trace records differ")
    for key in ("corrupt_dropped", "frames_corrupted"):
        if plain[key] != cached[key]:
            problems.append(f"{key} differs "
                            f"({plain[key]} != {cached[key]})")
    if plain["frames_corrupted"] == 0:
        problems.append("corruption fault was not exercised")
    if cached["corrupt_dropped"] == 0:
        problems.append("no corrupted frame was CRC-rejected under memo")
    if cached["decode_memo"]["hits"] == 0:
        problems.append("decode memo never hit")
    late_deliveries = len(cached["inboxes"]["node04"])
    total = sum(len(box) for box in cached["inboxes"].values())
    return {
        "ok": not problems,
        "problems": problems,
        "messages": messages,
        "deliveries": total,
        "midstream_subscriber_deliveries": late_deliveries,
        "trace_records": len(cached["trace"]),
        "frames_corrupted": cached["frames_corrupted"],
        "corrupt_dropped": cached["corrupt_dropped"],
        "decode_memo_hits": cached["decode_memo"]["hits"],
    }


# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke)")
    parser.add_argument("--output", type=Path,
                        default=ROOT / "BENCH_core.json",
                        help="where to write the JSON report")
    # header compression speeds up the cache-disabled baseline too
    # (smaller frames, fewer string decodes), so the cached-over-baseline
    # ratio is structurally tighter than before compression landed
    parser.add_argument("--min-fanout-speedup", type=float, default=1.5,
                        help="fail unless cached fan-out beats the "
                             "cache-disabled baseline by this factor")
    parser.add_argument("--min-codec-speedup", type=float, default=1.5,
                        help="fail unless memoized decode beats the "
                             "memo-disabled baseline by this factor")
    parser.add_argument("--min-wire-reduction", type=float, default=0.25,
                        help="fail unless header compression cuts wire "
                             "bytes per message by at least this fraction")
    parser.add_argument("--max-metrics-overhead", type=float, default=0.05,
                        help="fail if live registry instruments cost more "
                             "than this fraction of fan-out throughput "
                             "vs the stubbed registry")
    parser.add_argument("--min-interest-ratio", type=float, default=3.0,
                        help="fail unless an uninteresting frame is at "
                             "least this many times cheaper to receive "
                             "than an interesting one")
    parser.add_argument("--min-typed-reduction", type=float, default=0.40,
                        help="fail unless the type plane cuts steady-"
                             "state payload bytes per message by at "
                             "least this fraction vs inline metadata")
    parser.add_argument("--min-shard-ratio", type=float, default=1.5,
                        help="fail unless 4 shard planes drain the "
                             "fan-out burst at least this many times "
                             "faster (simulated time) than 1")
    args = parser.parse_args(argv)

    if args.quick:
        fanout_msgs, repeats = 600, 2
        trie_iters, codec_iters = 60_000, 20_000
        det_msgs, interest_frames = 80, 300
    else:
        fanout_msgs, repeats = 3000, 3
        trie_iters, codec_iters = 300_000, 80_000
        det_msgs, interest_frames = 150, 1200

    print("determinism: fixed seed, caches on vs off ...")
    determinism = check_determinism(det_msgs)
    for problem in determinism["problems"]:
        print(f"  FAIL: {problem}")
    if not determinism["ok"]:
        return 1
    print(f"  ok — {determinism['deliveries']} deliveries, "
          f"{determinism['trace_records']} trace records, "
          f"{determinism['corrupt_dropped']} corrupt frames dropped, "
          f"identical with caches on/off")

    print("compression honesty: fixed seed, wire compression on vs off ...")
    wire.configure_decode_memo()
    compression = check_compression_honesty(det_msgs)
    for problem in compression["problems"]:
        print(f"  FAIL: {problem}")
    if not compression["ok"]:
        return 1
    print(f"  ok — {compression['deliveries']} deliveries, "
          f"{compression['trace_records']} trace records, "
          f"{compression['bytes_compressed']} vs "
          f"{compression['bytes_plain']} bytes, "
          f"identical with compression on/off")

    print("gating honesty: fixed seed, interest gating on vs off ...")
    wire.configure_decode_memo()
    gating = check_gating_honesty(det_msgs)
    for problem in gating["problems"]:
        print(f"  FAIL: {problem}")
    if not gating["ok"]:
        return 1
    print(f"  ok — {gating['deliveries']} deliveries, "
          f"{gating['trace_records']} trace records, "
          f"{gating['skipped_frames']} frames skipped, "
          f"identical with gating on/off")

    print("typed honesty: fixed seed, type plane on vs off ...")
    wire.configure_decode_memo()
    typed_honesty = check_typed_honesty(det_msgs)
    for problem in typed_honesty["problems"]:
        print(f"  FAIL: {problem}")
    if not typed_honesty["ok"]:
        return 1
    print(f"  ok — {typed_honesty['deliveries']} deliveries, "
          f"{typed_honesty['trace_records']} trace records, "
          f"{typed_honesty['retransmits']} retransmits, "
          f"{typed_honesty['bytes_plane']} vs "
          f"{typed_honesty['bytes_flat']} bytes, "
          f"identical with the plane on/off")

    print("sharding honesty: fixed seed, subject_shards 4 vs 1 ...")
    wire.configure_decode_memo()
    sharding_honesty = check_sharding_honesty(det_msgs)
    for problem in sharding_honesty["problems"]:
        print(f"  FAIL: {problem}")
    if not sharding_honesty["ok"]:
        return 1
    print(f"  ok — {sharding_honesty['deliveries']} deliveries, "
          f"{sharding_honesty['trace_records']} trace records, "
          f"{sharding_honesty['acks_sent']} guaranteed acks, "
          f"identical at 4 shards and 1")

    benches = {}
    print(f"fanout: 1 publisher -> {CONSUMERS} consumers, "
          f"{fanout_msgs} msgs ...")
    benches["fanout"] = bench_fanout(fanout_msgs, repeats)
    wire.configure_decode_memo()   # no cross-bench memo state
    print(f"trie_match: {trie_iters} matches ...")
    benches["trie_match"] = bench_trie(trie_iters, repeats)
    print(f"codec_decode: {codec_iters} decodes ...")
    benches["codec_decode"] = bench_codec(codec_iters, repeats)
    wire.configure_decode_memo()
    print(f"wire_bytes: compression off vs on, {fanout_msgs} msgs ...")
    benches["wire_bytes"] = bench_wire_bytes(fanout_msgs)
    print(f"metrics_overhead: registry live vs stubbed, "
          f"{fanout_msgs} msgs ...")
    benches["metrics_overhead"] = bench_metrics_overhead(fanout_msgs,
                                                         repeats)
    print(f"interest_scaling: {interest_frames} frames, interested vs "
          f"uninterested daemon ...")
    benches["interest_scaling"] = bench_interest_scaling(interest_frames,
                                                         repeats)
    print(f"typed_payload_bytes: inline metadata vs type plane, "
          f"{fanout_msgs} msgs ...")
    benches["typed_payload_bytes"] = bench_typed_payload_bytes(fanout_msgs)
    print(f"shard_scaling: subject_shards 1 vs 4, {fanout_msgs} msgs ...")
    benches["shard_scaling"] = bench_shard_scaling(fanout_msgs)
    wire.configure_decode_memo()   # leave the process at defaults

    report = {
        "schema": 6,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": args.quick,
        "benches": benches,
        "determinism": determinism,
        "compression_honesty": compression,
        "gating_honesty": gating,
        "typed_honesty": typed_honesty,
        "sharding_honesty": sharding_honesty,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for name, bench in benches.items():
        keys = [k for k in bench if k.endswith("_per_sec")]
        rates = ", ".join(f"{k}={bench[k]:,.0f}" for k in sorted(keys))
        if "speedup" in bench:
            print(f"  {name}: {rates}  (speedup {bench['speedup']}x)")
        elif "shard_ratio" in bench:
            print(f"  {name}: {rates}  "
                  f"(shard ratio {bench['shard_ratio']}x, simulated time)")
        elif "interest_ratio" in bench:
            print(f"  {name}: {rates}  "
                  f"(ratio {bench['interest_ratio']}x)")
        elif "overhead" in bench:
            print(f"  {name}: {rates}  (overhead {bench['overhead']:.1%})")
        elif "payload_reduction" in bench:
            print(f"  {name}: {bench['inline_payload_bytes']} -> "
                  f"{bench['typed_payload_bytes']} payload bytes/msg  "
                  f"(reduction {bench['payload_reduction']:.1%}, wire "
                  f"{bench['wire_reduction']:.1%})")
        else:
            print(f"  {name}: {bench['plain_bytes_per_msg']} -> "
                  f"{bench['compressed_bytes_per_msg']} bytes/msg  "
                  f"(reduction {bench['reduction']:.1%})")
    print(f"wrote {args.output}")

    failed = False
    speedup = benches["fanout"]["speedup"]
    if speedup < args.min_fanout_speedup:
        print(f"FAIL: fan-out speedup {speedup}x < "
              f"required {args.min_fanout_speedup}x")
        failed = True
    codec = benches["codec_decode"]["speedup"]
    if codec < args.min_codec_speedup:
        print(f"FAIL: codec decode speedup {codec}x < "
              f"required {args.min_codec_speedup}x")
        failed = True
    reduction = benches["wire_bytes"]["reduction"]
    if reduction < args.min_wire_reduction:
        print(f"FAIL: wire-byte reduction {reduction:.1%} < "
              f"required {args.min_wire_reduction:.1%}")
        failed = True
    overhead = benches["metrics_overhead"]["overhead"]
    if overhead > args.max_metrics_overhead:
        print(f"FAIL: metrics overhead {overhead:.1%} > "
              f"allowed {args.max_metrics_overhead:.1%}")
        failed = True
    ratio = benches["interest_scaling"]["interest_ratio"]
    if ratio < args.min_interest_ratio:
        print(f"FAIL: interest ratio {ratio}x < "
              f"required {args.min_interest_ratio}x")
        failed = True
    typed = benches["typed_payload_bytes"]["payload_reduction"]
    if typed < args.min_typed_reduction:
        print(f"FAIL: typed payload reduction {typed:.1%} < "
              f"required {args.min_typed_reduction:.1%}")
        failed = True
    shard = benches["shard_scaling"]["shard_ratio"]
    if shard < args.min_shard_ratio:
        print(f"FAIL: shard scaling ratio {shard}x < "
              f"required {args.min_shard_ratio}x")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
