#!/usr/bin/env python
"""Wall-clock performance harness for the publish→deliver hot path.

The figure benches (``benchmarks/test_fig*.py``) measure *simulated*
time — the paper's axes.  This harness measures the *simulator's own*
wall-clock cost, the ceiling on how much traffic a run can push through:

* ``fanout`` — a full end-to-end scenario: 1 publisher, 8 consumer
  daemons on one broadcast segment, repeated subjects (the Figs 5–8
  shape).  Exercises every layer: publish, encode-once broadcast,
  per-receiver decode, subject matching, reliable delivery.
* ``trie_match`` — `SubjectTrie.match` alone, steady-state repeated
  subjects against a large subscription table.
* ``codec_decode`` — `decode_packet` alone on one encoded DATA frame,
  the per-receiver cost of hearing a broadcast.

Each bench runs twice: with the caches disabled (the escape hatches:
``match_memo_capacity=0`` and ``configure_decode_memo(0)`` — the pre-PR
cost shape) and enabled (the defaults).  Both numbers land in
``BENCH_core.json`` at the repo root, the first datapoint of the perf
trajectory; future PRs append comparable runs rather than regress
silently.

Before timing anything the harness proves cache honesty: a fixed-seed
scenario with bit-flip corruption and a mid-stream subscribe/unsubscribe
must produce *identical* per-consumer delivery sequences, trace output,
and corruption counters with caches on and off.

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf/run_perf.py            # full
    PYTHONPATH=src python benchmarks/perf/run_perf.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"
if str(SRC) not in sys.path:                       # repo-relative fallback
    sys.path.insert(0, str(SRC))

from repro.core import (BusConfig, InformationBus, SubjectTrie,  # noqa: E402
                        decode_packet, encode_packet)
from repro.core import wire                                      # noqa: E402
from repro.core.message import Envelope, Packet, PacketKind      # noqa: E402
from repro.objects import encode                                 # noqa: E402
from repro.sim import CostModel, Tracer                          # noqa: E402

CONSUMERS = 8
SUBJECT_CYCLE = [f"feed.equity.s{i}" for i in range(8)]


def _configure_caches(enabled: bool) -> BusConfig:
    """Flip both cache layers at once; returns a matching BusConfig."""
    wire.configure_decode_memo(
        wire.DEFAULT_DECODE_MEMO_CAPACITY if enabled else 0)
    return BusConfig(match_memo_capacity=None if enabled else 0)


# ----------------------------------------------------------------------
# fan-out: the end-to-end hot path
# ----------------------------------------------------------------------

def _fanout_once(messages: int, caches: bool, seed: int = 2026) -> dict:
    config = _configure_caches(caches)
    bus = InformationBus(seed=seed, cost=CostModel.ideal(), config=config)
    bus.add_hosts(CONSUMERS + 1)
    counts = [0] * CONSUMERS
    # each consumer holds several overlapping wildcard subscriptions (the
    # Figure 8 shape: applications subscribe to whole subtrees, not single
    # subjects), all matching the published feed
    patterns = ["feed.>", "feed.equity.>", "feed.equity.*"]
    for i in range(CONSUMERS):
        def on_message(subject, obj, info, i=i):
            counts[i] += 1
        consumer = bus.client(f"node{i + 1:02d}", "consumer")
        for pattern in patterns:
            consumer.subscribe(pattern, on_message)
    publisher = bus.client("node00", "pub")
    payload = encode({"tick": 1}, publisher.registry, inline_types=False)

    start = time.perf_counter()
    for n in range(messages):
        publisher.publish_bytes(SUBJECT_CYCLE[n & 7], payload)
    bus.settle(10.0)
    elapsed = time.perf_counter() - start

    expected = messages * CONSUMERS * len(patterns)
    deliveries = sum(counts)
    assert deliveries == expected, (
        f"fan-out lost messages: {deliveries} != {expected}")
    return {"elapsed": elapsed, "deliveries": deliveries}


def bench_fanout(messages: int, repeats: int) -> dict:
    result = {"messages": messages, "consumers": CONSUMERS,
              "repeats": repeats}
    for label, caches in (("baseline", False), ("cached", True)):
        best = min(_fanout_once(messages, caches)["elapsed"]
                   for _ in range(repeats))
        result[f"{label}_msgs_per_sec"] = round(messages / best, 1)
        result[f"{label}_deliveries_per_sec"] = round(
            messages * CONSUMERS / best, 1)
    result["speedup"] = round(
        result["cached_msgs_per_sec"] / result["baseline_msgs_per_sec"], 2)
    return result


# ----------------------------------------------------------------------
# trie matching alone
# ----------------------------------------------------------------------

def bench_trie(iterations: int, repeats: int, patterns: int = 2000) -> dict:
    subjects = [f"feed.equity.s{i:04d}" for i in range(32)]
    result = {"iterations": iterations, "patterns": patterns + 2,
              "repeats": repeats}
    expected = None
    for label, capacity in (("baseline", 0), ("cached", 1024)):
        trie: SubjectTrie = SubjectTrie(memo_capacity=capacity)
        for i in range(patterns):
            trie.insert(f"feed.equity.s{i:04d}", i)
        trie.insert("feed.>", "tail")
        trie.insert("feed.*.s0001", "star")
        best, checksum = None, 0
        for _ in range(repeats):
            total = 0
            start = time.perf_counter()
            for n in range(iterations):
                total += len(trie.match(subjects[n & 31]))
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            checksum = total
        if expected is None:
            expected = checksum
        assert checksum == expected, "memo changed match results"
        result[f"{label}_matches_per_sec"] = round(iterations / best, 1)
    result["speedup"] = round(result["cached_matches_per_sec"]
                              / result["baseline_matches_per_sec"], 2)
    return result


# ----------------------------------------------------------------------
# wire codec alone
# ----------------------------------------------------------------------

def bench_codec(iterations: int, repeats: int) -> dict:
    envelopes = [Envelope(subject=SUBJECT_CYCLE[i & 7], sender="node00.pub",
                          session="node00#0", seq=i + 1, payload=b"x" * 64,
                          publish_time=0.25)
                 for i in range(4)]
    data = encode_packet(Packet(PacketKind.DATA, "node00#0", envelopes,
                                last_seq=4, session_start=0.0))
    result = {"iterations": iterations, "frame_bytes": len(data),
              "envelopes_per_frame": len(envelopes), "repeats": repeats}
    reference = None
    for label, capacity in (("baseline", 0), ("cached", 256)):
        wire.configure_decode_memo(capacity)
        best = None
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(iterations):
                packet = decode_packet(data)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        decoded = [(e.subject, e.seq, e.payload) for e in packet.envelopes]
        if reference is None:
            reference = decoded
        assert decoded == reference, "memo changed decode results"
        result[f"{label}_decodes_per_sec"] = round(iterations / best, 1)
    result["speedup"] = round(result["cached_decodes_per_sec"]
                              / result["baseline_decodes_per_sec"], 2)
    return result


# ----------------------------------------------------------------------
# cache honesty: same seed, caches on/off, identical observable behaviour
# ----------------------------------------------------------------------

def _determinism_once(caches: bool, messages: int, seed: int = 77) -> dict:
    """A hostile fixed-seed scenario: corruption faults plus a mid-stream
    subscribe and unsubscribe (the memo-invalidation edges)."""
    config = _configure_caches(caches)
    tracer = Tracer(enabled=True)
    bus = InformationBus(seed=seed, cost=CostModel.ideal(), config=config,
                         tracer=tracer)
    bus.add_hosts(5)
    bus.lan.corrupt_rate = 0.12
    inboxes: dict = {}
    for i in range(1, 4):
        address = f"node{i:02d}"
        box: list = []
        inboxes[address] = box
        bus.client(address, "mon").subscribe(
            "feed.>", lambda s, p, info, box=box: box.append((s, p["n"])))

    late = bus.client("node04", "late")
    late_box: list = []
    inboxes["node04"] = late_box
    state: dict = {}

    def join():       # subscribe mid-stream: must take effect immediately
        state["sub"] = late.subscribe(
            "feed.>", lambda s, p, info: late_box.append((s, p["n"])))

    def leave():      # unsubscribe mid-stream: no stale memo deliveries
        late.unsubscribe(state["sub"])

    bus.sim.schedule(0.5, join)
    bus.sim.schedule(1.5, leave)

    publisher = bus.client("node00", "pub")
    interval = 2.5 / messages

    def publish(n: int) -> None:
        publisher.publish(SUBJECT_CYCLE[n & 7], {"n": n})

    for n in range(messages):
        bus.sim.schedule(0.01 + n * interval, publish, n)
    bus.run_for(30.0)

    return {
        "inboxes": inboxes,
        "trace": [(r.time, r.category, r.fields) for r in tracer.records],
        "corrupt_dropped": sum(d.corrupt_dropped
                               for d in bus.daemons.values()),
        "frames_corrupted": bus.lan.frames_corrupted,
        "decode_memo": wire.decode_memo_stats(),
    }


def check_determinism(messages: int) -> dict:
    plain = _determinism_once(caches=False, messages=messages)
    cached = _determinism_once(caches=True, messages=messages)
    problems = []
    if plain["inboxes"] != cached["inboxes"]:
        problems.append("delivery sequences differ")
    if plain["trace"] != cached["trace"]:
        problems.append("trace records differ")
    for key in ("corrupt_dropped", "frames_corrupted"):
        if plain[key] != cached[key]:
            problems.append(f"{key} differs "
                            f"({plain[key]} != {cached[key]})")
    if plain["frames_corrupted"] == 0:
        problems.append("corruption fault was not exercised")
    if cached["corrupt_dropped"] == 0:
        problems.append("no corrupted frame was CRC-rejected under memo")
    if cached["decode_memo"]["hits"] == 0:
        problems.append("decode memo never hit")
    late_deliveries = len(cached["inboxes"]["node04"])
    total = sum(len(box) for box in cached["inboxes"].values())
    return {
        "ok": not problems,
        "problems": problems,
        "messages": messages,
        "deliveries": total,
        "midstream_subscriber_deliveries": late_deliveries,
        "trace_records": len(cached["trace"]),
        "frames_corrupted": cached["frames_corrupted"],
        "corrupt_dropped": cached["corrupt_dropped"],
        "decode_memo_hits": cached["decode_memo"]["hits"],
    }


# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke)")
    parser.add_argument("--output", type=Path,
                        default=ROOT / "BENCH_core.json",
                        help="where to write the JSON report")
    parser.add_argument("--min-fanout-speedup", type=float, default=2.0,
                        help="fail unless cached fan-out beats the "
                             "cache-disabled baseline by this factor")
    args = parser.parse_args(argv)

    if args.quick:
        fanout_msgs, repeats = 600, 2
        trie_iters, codec_iters = 60_000, 20_000
        det_msgs = 80
    else:
        fanout_msgs, repeats = 3000, 3
        trie_iters, codec_iters = 300_000, 80_000
        det_msgs = 150

    print("determinism: fixed seed, caches on vs off ...")
    determinism = check_determinism(det_msgs)
    for problem in determinism["problems"]:
        print(f"  FAIL: {problem}")
    if not determinism["ok"]:
        return 1
    print(f"  ok — {determinism['deliveries']} deliveries, "
          f"{determinism['trace_records']} trace records, "
          f"{determinism['corrupt_dropped']} corrupt frames dropped, "
          f"identical with caches on/off")

    benches = {}
    print(f"fanout: 1 publisher -> {CONSUMERS} consumers, "
          f"{fanout_msgs} msgs ...")
    benches["fanout"] = bench_fanout(fanout_msgs, repeats)
    print(f"trie_match: {trie_iters} matches ...")
    benches["trie_match"] = bench_trie(trie_iters, repeats)
    print(f"codec_decode: {codec_iters} decodes ...")
    benches["codec_decode"] = bench_codec(codec_iters, repeats)
    wire.configure_decode_memo()   # leave the process at defaults

    report = {
        "schema": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": args.quick,
        "benches": benches,
        "determinism": determinism,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")

    for name, bench in benches.items():
        keys = [k for k in bench if k.endswith("_per_sec")]
        rates = ", ".join(f"{k}={bench[k]:,.0f}" for k in sorted(keys))
        print(f"  {name}: {rates}  (speedup {bench['speedup']}x)")
    print(f"wrote {args.output}")

    speedup = benches["fanout"]["speedup"]
    if speedup < args.min_fanout_speedup:
        print(f"FAIL: fan-out speedup {speedup}x < "
              f"required {args.min_fanout_speedup}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
