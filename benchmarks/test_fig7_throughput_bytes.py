"""Figure 7: Throughput in bytes/second vs. message size.

Same data collection as Figure 6, plotted in bytes/sec.  Paper claims:
"For messages larger than five thousand bytes, the device bandwidth
becomes the limiting factor: it is difficult to drive more th[a]n 300
Kb/sec through Ethernet with a raw UDP socket, suggesting that the
Information Bus represents a low overhead."
"""

from conftest import SIZES, messages_for

from repro.bench import AppendixExperiment, Report, ascii_chart


def run_figure7():
    experiment = AppendixExperiment(seed=7)
    return [experiment.run_throughput(size, messages_for(size))
            for size in SIZES]


def test_fig7_throughput_bytes_vs_size(benchmark):
    results = benchmark.pedantic(run_figure7, rounds=1, iterations=1)

    report = Report("fig7_throughput_bytes")
    report.table(
        "Figure 7: Throughput in Bytes/Sec (1 pub, 14 consumers, "
        "batching ON)",
        ["size (B)", "KB/sec", "msgs/sec", "delivered"],
        [[r.size, r.bytes_per_sec / 1000, r.msgs_per_sec,
          f"{r.delivery_ratio:.4f}"] for r in results])
    report.add(ascii_chart(
        [(r.size, r.bytes_per_sec / 1000) for r in results],
        title="Figure 7 (regenerated): Throughput in KB/Sec "
              "(note the plateau past ~5000 B)",
        x_label="message size (B)", y_label="KB/sec", log_x=True))
    report.emit()

    by_size = {r.size: r for r in results}
    # bytes/sec rises with size ...
    assert by_size[1024].bytes_per_sec > 1.2 * by_size[64].bytes_per_sec
    # ... then plateaus near the device ceiling for >5000-byte messages
    plateau = [by_size[s].bytes_per_sec for s in (6000, 8000, 10000)]
    peak = max(r.bytes_per_sec for r in results)
    assert all(p > 0.75 * peak for p in plateau), \
        "large-message throughput should sit on the plateau"
    # the plateau lands in the calibrated ~300 KB/s band
    assert all(250_000 < p < 450_000 for p in plateau)
    # and the spread across the plateau is small (the flat top)
    assert max(plateau) / min(plateau) < 1.25
    assert all(r.delivery_ratio > 0.999 for r in results)
