"""Ablation: router-bridged WAN vs. everything on one bus.

Section 3.1: wide-area topologies use information routers instead of one
giant broadcast domain; "messages are only re-published on buses for
which there exists a subscription on that subject."  This ablation shows
(a) the WAN hop's latency cost for cross-site traffic and (b) the
isolation win: local-only traffic never crosses the link.
"""

from repro.bench import Report, payload_of_size, summarize
from repro.core import BusConfig, InformationBus, Router, WanLink
from repro.sim import Simulator

SIZE = 256
SAMPLES = 30


def build_bridged():
    sim = Simulator(seed=13)
    config = BusConfig()
    config.advert_interval = 0.5
    east = InformationBus(name="east", sim=sim, config=config)
    west = InformationBus(name="west", sim=sim, config=config)
    east.add_hosts(8, prefix="e")
    west.add_hosts(8, prefix="w")
    router = Router(link=WanLink(latency=0.03))
    router.add_leg(east)
    router.add_leg(west)
    return sim, east, west, router


def run_ablation():
    sim, east, west, router = build_bridged()
    payload = payload_of_size(SIZE)

    local_latencies, remote_latencies, isolated = [], [], []
    east.client("e01", "local-mon").subscribe(
        "lan.data", lambda s, o, i: local_latencies.append(i.latency))
    west.client("w01", "wan-mon").subscribe(
        "wan.data", lambda s, o, i: remote_latencies.append(sim.now))
    east.client("e02", "noise-mon").subscribe(
        "noise.data", lambda s, o, i: isolated.append(s))
    sim.run_until(2.0)   # adverts propagate, forwarding subs installed

    publisher = east.client("e00", "publisher")
    send_times = []
    for i in range(SAMPLES):
        at = 2.0 + i * 0.2

        def send(at=at):
            send_times.append(sim.now)
            publisher.publish_bytes("lan.data", payload)
            publisher.publish_bytes("wan.data", payload)
            publisher.publish_bytes("noise.data", payload)

        sim.schedule_at(at, send)
    sim.run_until(2.0 + SAMPLES * 0.2 + 5.0)

    remote = [recv - sent
              for recv, sent in zip(remote_latencies, send_times)]
    east_leg = router.legs["east:router-east"]
    return {
        "local": summarize(local_latencies),
        "remote": summarize(remote),
        "noise_forwarded": sum(
            1 for r in east_leg.host.stable.read_log("router.log")),
        "forwarded": east_leg.messages_forwarded,
        "isolated_delivered": len(isolated),
    }


def test_router_isolates_and_costs_latency(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    local, remote = results["local"], results["remote"]

    report = Report("ablation_router")
    report.table(
        f"Router-bridged WAN ({SIZE}-byte messages, 30ms link)",
        ["path", "mean latency (ms)", "n"],
        [["intra-bus", local.mean * 1000, local.n],
         ["cross-bus (via router)", remote.mean * 1000, remote.n]])
    report.note(f"messages forwarded across the WAN: "
                f"{results['forwarded']} (subscribed traffic only; "
                f"local-only 'noise' subject never crossed)")
    report.emit()

    assert local.n == SAMPLES and remote.n == SAMPLES
    # the WAN hop adds at least the link latency
    assert remote.mean > local.mean + 0.03
    # isolation: only the subject with a remote subscription crossed
    assert results["forwarded"] == SAMPLES
    assert results["isolated_delivered"] == SAMPLES   # delivered locally
