"""Figure 8: Effect of the number of subjects on throughput.

Paper setup: "the publisher published on ten thousand different subjects
instead of one, and the fourteen consumers subscribed to all ten
thousand subjects."  Claim: "the number of subjects has an insignificant
influence on the throughput."
"""

from repro.bench import AppendixExperiment, Report, ascii_chart

SIZE = 1024
MESSAGES = 1200
SUBJECT_COUNTS = [1, 100, 10000]


def run_figure8():
    experiment = AppendixExperiment(seed=8)
    return [(count, experiment.run_throughput(SIZE, MESSAGES,
                                              subjects=count))
            for count in SUBJECT_COUNTS]


def test_fig8_subject_count_insignificant(benchmark):
    results = benchmark.pedantic(run_figure8, rounds=1, iterations=1)

    report = Report("fig8_subjects")
    report.table(
        f"Figure 8: Effect of the Number of Subjects ({SIZE}-byte "
        f"messages, batching ON)",
        ["subjects", "KB/sec", "msgs/sec", "rate variance", "delivered"],
        [[count, r.bytes_per_sec / 1000, r.msgs_per_sec,
          r.rate_summary().variance, f"{r.delivery_ratio:.4f}"]
         for count, r in results])
    report.add(ascii_chart(
        [(count, r.bytes_per_sec / 1000) for count, r in results],
        title="Figure 8 (regenerated): subject count vs throughput "
              "(flat, as the paper reports)",
        x_label="number of subjects", y_label="KB/sec", log_x=True))
    report.emit()

    rates = {count: r.bytes_per_sec for count, r in results}
    # the 10,000-subject run is within a whisker of the 1-subject run:
    # subject matching is a trie walk, not a table scan
    assert abs(rates[10000] - rates[1]) / rates[1] < 0.10, \
        "subject count must have insignificant influence on throughput"
    assert abs(rates[100] - rates[1]) / rates[1] < 0.10
    assert all(r.delivery_ratio > 0.999 for _, r in results)
