# Convenience targets for the Information Bus reproduction.

PYTHON ?= python

.PHONY: install test bench examples quicktest all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) -m repro all

quicktest:
	$(PYTHON) -m pytest tests/ -x -q --ignore=tests/properties \
	    --ignore=tests/integration

all: test bench

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
