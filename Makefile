# Convenience targets for the Information Bus reproduction.

PYTHON ?= python

.PHONY: install test bench pytest-bench lint examples quicktest all clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	PYTHONPATH=src $(PYTHON) benchmarks/perf/run_perf.py

pytest-bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

lint:
	ruff check src tests benchmarks tools
	$(PYTHON) tools/check_stats_surfaces.py

examples:
	$(PYTHON) -m repro all

quicktest:
	$(PYTHON) -m pytest tests/ -x -q --ignore=tests/properties \
	    --ignore=tests/integration

all: test bench

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
