"""Discrete-event simulation substrate for the Information Bus reproduction.

The paper's testbed — a 15-node SPARCstation LAN on 10 Mbit/s Ethernet —
is replaced by this package: a deterministic event kernel
(:class:`~repro.sim.kernel.Simulator`), fail-stop hosts
(:class:`~repro.sim.node.Host`), a shared broadcast segment
(:class:`~repro.sim.ethernet.EthernetSegment`), UDP-like and TCP-like
transports (:mod:`repro.sim.transport`), and crash-surviving stable
storage (:class:`~repro.sim.stable_storage.StableStore`).
"""

from .background import BackgroundTraffic
from .framing import CorruptFrame, FRAME_OVERHEAD, frame, unframe
from .kernel import Event, PeriodicTimer, SimError, Simulator
from .network import BROADCAST, Address, CostModel, Frame
from .node import Host, PortInUseError
from .ethernet import EthernetSegment
from .stable_storage import StableStore
from .transport import DatagramSocket, Endpoint, StreamConnection, StreamManager
from .trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "Address", "BROADCAST", "BackgroundTraffic", "CorruptFrame",
    "CostModel", "DatagramSocket", "Endpoint",
    "EthernetSegment", "Event", "FRAME_OVERHEAD", "Frame", "Host",
    "PeriodicTimer", "PortInUseError", "SimError", "Simulator",
    "StableStore", "StreamConnection", "StreamManager", "TraceRecord",
    "NULL_TRACER", "Tracer", "frame", "unframe",
]
