"""Network primitives shared by the Ethernet segment and the transport layer.

The unit moved on the wire is a :class:`Frame`.  Frames carry an opaque
``payload`` (a Python object — the transport layer accounts for its size
explicitly via ``size``) between host addresses.  ``dst=BROADCAST`` frames
are delivered to every host attached to the segment, which is how the
Information Bus gets its "one transmission, N receivers" property.

The :class:`CostModel` captures the 1993 testbed's performance envelope:
a 10 Mbit/s shared Ethernet and SPARCstation-2-class per-packet UDP socket
overheads.  See DESIGN.md ("Calibration of the cost model").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["BROADCAST", "Frame", "CostModel", "Address"]

#: Destination address meaning "every host on the segment".
BROADCAST = "*"

#: Host addresses are plain strings ("node03"); ports are small ints.
Address = str


@dataclass
class Frame:
    """One link-layer frame.

    ``size`` is the payload size in bytes as accounted by the sender; the
    wire adds :attr:`CostModel.frame_overhead` bytes of header/preamble on
    top when computing transmission time.  ``frame_id`` is stamped by the
    segment that transmits the frame, from a per-segment counter — never
    from process-global state, so same-seed simulations are bit-identical
    no matter what ran before them in the process.
    """

    src: Address
    dst: Address           # a host address, or BROADCAST
    src_port: int
    dst_port: int
    payload: Any
    size: int
    frame_id: int = 0      # 0 = not yet on a wire

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"frame size must be >= 0 (got {self.size})")


@dataclass
class CostModel:
    """Per-host CPU and wire costs, calibrated to the paper's Appendix.

    All times are seconds; rates are bytes/second.  Defaults produce the
    paper's shape: millisecond latencies, an effective UDP throughput
    ceiling around 300 KB/s, and msgs/sec that falls with message size.
    """

    #: Wire bandwidth of the shared segment (10 Mbit/s Ethernet).
    bandwidth_bytes_per_sec: float = 10_000_000 / 8
    #: Speed-of-light + repeater delay across the segment.
    propagation_delay: float = 15e-6
    #: Link-layer header + preamble + CRC accounted per frame on the wire.
    frame_overhead: int = 34
    #: Largest payload carried in one frame; datagrams fragment above this.
    mtu: int = 1472

    #: Host CPU cost to push one packet through the UDP stack (send side).
    cpu_send_per_packet: float = 400e-6
    #: Host CPU cost per payload byte on the send side (copies, checksum).
    #: 2.5 µs/byte yields the ~300 KB/s raw-UDP ceiling the paper reports
    #: for SPARCstation-2-class hosts.
    cpu_send_per_byte: float = 2.5e-6
    #: Host CPU cost to receive one packet (interrupt, socket wakeup).
    cpu_recv_per_packet: float = 250e-6
    #: Host CPU cost per payload byte on the receive side.
    cpu_recv_per_byte: float = 1.0e-6

    #: Relative jitter on per-packet CPU costs (scheduler noise, cache
    #: effects).  Gives latency samples the nonzero variance the paper's
    #: Figure 5 confidence intervals reflect.
    cpu_jitter: float = 0.05

    #: Probability an individual receiver drops a frame (light load).
    loss_probability: float = 1e-4
    #: Probability a receiver sees a frame twice (duplicated in the stack).
    duplicate_probability: float = 0.0
    #: Max extra random delivery delay per receiver; >0 permits reordering.
    reorder_jitter: float = 0.0

    def wire_time(self, size: int) -> float:
        """Transmission time for a payload of ``size`` bytes on the medium."""
        return (size + self.frame_overhead) / self.bandwidth_bytes_per_sec

    def send_cpu_time(self, size: int) -> float:
        """Host CPU time to emit one packet of ``size`` payload bytes."""
        return self.cpu_send_per_packet + size * self.cpu_send_per_byte

    def recv_cpu_time(self, size: int) -> float:
        """Host CPU time to absorb one packet of ``size`` payload bytes."""
        return self.cpu_recv_per_packet + size * self.cpu_recv_per_byte

    @classmethod
    def ideal(cls) -> "CostModel":
        """A lossless, near-zero-cost model for protocol-logic tests."""
        return cls(
            bandwidth_bytes_per_sec=1e12,
            propagation_delay=1e-6,
            cpu_send_per_packet=1e-6,
            cpu_send_per_byte=0.0,
            cpu_recv_per_packet=1e-6,
            cpu_recv_per_byte=0.0,
            cpu_jitter=0.0,
            loss_probability=0.0,
            duplicate_probability=0.0,
            reorder_jitter=0.0,
        )
