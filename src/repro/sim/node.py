"""Fail-stop hosts.

A :class:`Host` models one workstation: it owns a CPU (serialized send and
receive processing per the :class:`~repro.sim.network.CostModel`), a set of
bound ports, crash/recover state, and a :class:`~repro.sim.stable_storage.
StableStore` that survives crashes.

Failure semantics follow Section 2 of the paper: fail-stop only.  A crashed
host silently drops every frame addressed to it and everything queued in its
CPU pipelines; volatile listener state is the owning protocol's problem
(protocols re-register on the recovery callback).

A host may expose several CPU *lanes* — independent send/receive pipelines
modelling one process pinned per core.  Lane 0 is the default everywhere, so
single-lane hosts behave exactly as before; the sharded daemon binds each
shard's sockets to its own lane so shard planes serialize independently
(the multi-core story behind ``BusConfig.subject_shards``).  The wire is
still shared: lanes contend on the same Ethernet segment.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from .kernel import Simulator
from .network import Address, CostModel, Frame
from .stable_storage import StableStore

if TYPE_CHECKING:  # pragma: no cover
    from .ethernet import EthernetSegment

__all__ = ["Host", "PortInUseError"]


class PortInUseError(RuntimeError):
    """Raised when binding a port that already has a listener."""


class Host:
    """One fail-stop workstation attached to an Ethernet segment."""

    def __init__(self, sim: Simulator, address: Address,
                 cost: Optional[CostModel] = None):
        self.sim = sim
        self.address = address
        self.cost = cost or CostModel()
        self.segment: Optional["EthernetSegment"] = None
        self.stable = StableStore()
        self._up = True
        #: epoch increments on every crash; stale deliveries check it
        self.epoch = 0
        self._ports: Dict[int, Callable[[Frame], None]] = {}
        #: port -> CPU lane whose receive pipeline processes its frames
        self._port_lanes: Dict[int, int] = {}
        # CPU pipelines are serialized *per lane*; lane 0 always exists
        self._send_ready_at: Dict[int, float] = {0: 0.0}
        self._recv_ready_at: Dict[int, float] = {0: 0.0}
        self._crash_listeners: List[Callable[[], None]] = []
        self._recover_listeners: List[Callable[[], None]] = []
        # traffic counters (used by benches)
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        return self._up

    def crash(self) -> None:
        """Fail-stop: lose all volatile state, stop sending and receiving."""
        if not self._up:
            return
        self._up = False
        self.epoch += 1
        self._ports.clear()
        self._port_lanes.clear()
        for lane in self._send_ready_at:
            self._send_ready_at[lane] = self.sim.now
        for lane in self._recv_ready_at:
            self._recv_ready_at[lane] = self.sim.now
        for listener in list(self._crash_listeners):
            listener()

    def recover(self) -> None:
        """Restart the host.  Stable storage is intact; ports are empty."""
        if self._up:
            return
        self._up = True
        for listener in list(self._recover_listeners):
            listener()

    def on_crash(self, listener: Callable[[], None]) -> None:
        self._crash_listeners.append(listener)

    def on_recover(self, listener: Callable[[], None]) -> None:
        self._recover_listeners.append(listener)

    # ------------------------------------------------------------------
    # ports
    # ------------------------------------------------------------------
    def bind(self, port: int, handler: Callable[[Frame], None],
             lane: int = 0) -> None:
        """Attach ``handler`` to ``port``.  One listener per port.

        ``lane`` selects which CPU receive pipeline serializes the port's
        inbound frames (default lane 0 — the pre-lane behaviour).
        """
        if port in self._ports:
            raise PortInUseError(f"{self.address}: port {port} already bound")
        self._ports[port] = handler
        if lane:
            self._port_lanes[port] = lane
            self._send_ready_at.setdefault(lane, 0.0)
            self._recv_ready_at.setdefault(lane, 0.0)

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)
        self._port_lanes.pop(port, None)

    def port_bound(self, port: int) -> bool:
        return port in self._ports

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    @property
    def send_backlog(self) -> float:
        """Seconds of queued work in the busiest CPU send lane.

        0.0 means the next :meth:`send_frame` starts immediately; the
        daemon's flow-control pump reads this to pace admission to the
        wire instead of queueing unboundedly inside the pipeline.  With
        a single lane (the default) this is exactly the old scalar.
        """
        now = self.sim.now
        return max(0.0, max(self._send_ready_at.values()) - now)

    def send_backlog_for(self, lane: int) -> float:
        """Seconds of queued work in one CPU send lane (shard pacing)."""
        return max(0.0, self._send_ready_at.get(lane, 0.0) - self.sim.now)

    def _jitter(self) -> float:
        """Per-packet CPU-cost noise factor (scheduler/cache effects)."""
        if self.cost.cpu_jitter <= 0:
            return 1.0
        u = self.sim.rng(f"cpu.{self.address}").random()
        return 1.0 + self.cost.cpu_jitter * (2.0 * u - 1.0)

    def send_frame(self, frame: Frame, lane: int = 0) -> float:
        """Push ``frame`` through one CPU send lane onto the segment.

        Returns the simulated time at which the frame reaches the wire.
        Raises if the host is down or detached from a segment.
        """
        if not self._up:
            raise RuntimeError(f"{self.address} is down")
        if self.segment is None:
            raise RuntimeError(f"{self.address} is not attached to a segment")
        cpu = self.cost.send_cpu_time(frame.size) * self._jitter()
        start = max(self.sim.now, self._send_ready_at.get(lane, 0.0))
        done = start + cpu
        self._send_ready_at[lane] = done
        self.frames_sent += 1
        self.bytes_sent += frame.size
        epoch = self.epoch
        segment = self.segment

        def _to_wire() -> None:
            # a crash between enqueue and wire kills the frame
            if self._up and self.epoch == epoch:
                segment.transmit(frame)

        self.sim.schedule(done - self.sim.now, _to_wire, name="host.send")
        return done

    def deliver_frame(self, frame: Frame) -> None:
        """Called by the segment when a frame arrives at this host's NIC."""
        if not self._up:
            return
        cpu = self.cost.recv_cpu_time(frame.size) * self._jitter()
        lane = self._port_lanes.get(frame.dst_port, 0)
        start = max(self.sim.now, self._recv_ready_at.get(lane, 0.0))
        done = start + cpu
        self._recv_ready_at[lane] = done
        epoch = self.epoch

        def _to_socket() -> None:
            if not self._up or self.epoch != epoch:
                return
            handler = self._ports.get(frame.dst_port)
            if handler is not None:
                self.frames_received += 1
                self.bytes_received += frame.size
                handler(frame)

        self.sim.schedule(done - self.sim.now, _to_socket, name="host.recv")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self._up else "DOWN"
        return f"<Host {self.address} {state}>"
