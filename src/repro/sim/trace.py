"""Structured event tracing for simulations.

Protocols emit trace records (a timestamped category + fields dict); tests
and benches query them afterwards.  Tracing defaults to off, and hot paths
guard with the tracer's truthiness::

    if self.tracer:
        self.tracer.emit(self.sim.now, "publish", subject=subject, ...)

so the disabled-tracing cost is one attribute test — the ``**fields``
kwargs dict is never built.  :data:`NULL_TRACER` is the shared disabled
instance components fall back to when none is supplied.

Flow-control events (:mod:`repro.core.flow`) share the ``flow.`` prefix:

``flow.drop``
    A queue shed a message (``queue``, ``policy``/``reason``, ``depth``).
``flow.defer``
    A full queue pushed back instead of shedding — always the fate of
    guaranteed-QoS traffic (``queue``, ``depth``).
``flow.credit``
    A queue that had pushed back drained below its resume threshold;
    upstream may resume (``queue``, ``depth``).

Tracing must never change behavior — emitters may not branch on what
was recorded, so a traced run and an untraced run of the same seed are
identical (a property the flow-control tests assert).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["NULL_TRACER", "TraceRecord", "Tracer"]


@dataclass
class TraceRecord:
    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered."""

    def __init__(self, enabled: bool = False,
                 categories: Optional[List[str]] = None):
        self.enabled = enabled
        self._categories = set(categories) if categories else None
        self.records: List[TraceRecord] = []
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def __bool__(self) -> bool:
        """Truthy iff emitting would record — the hot-path guard."""
        return self.enabled

    def emit(self, time: float, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        record = TraceRecord(time, category, fields)
        self.records.append(record)
        for listener in self._listeners:
            listener(record)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        self._listeners.append(listener)

    def select(self, category: str, **match: Any) -> List[TraceRecord]:
        """Records of ``category`` whose fields equal every ``match`` item."""
        out = []
        for record in self.records:
            if record.category != category:
                continue
            if all(record.fields.get(k) == v for k, v in match.items()):
                out.append(record)
        return out

    def count(self, category: str, **match: Any) -> int:
        return len(self.select(category, **match))

    def category_counts(self, prefix: str = "") -> Dict[str, int]:
        """Record counts per category, optionally limited to a prefix
        (e.g. ``"flow."`` for the flow-control event family)."""
        out: Dict[str, int] = {}
        for record in self.records:
            if prefix and not record.category.startswith(prefix):
                continue
            out[record.category] = out.get(record.category, 0) + 1
        return out

    def clear(self) -> None:
        self.records.clear()


#: Shared always-disabled tracer.  Do not enable it: every component that
#: was constructed without an explicit tracer holds this one instance.
NULL_TRACER = Tracer(enabled=False)
