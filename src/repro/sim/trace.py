"""Structured event tracing for simulations.

Protocols emit trace records (a timestamped category + fields dict); tests
and benches query them afterwards.  Tracing defaults to off, and hot paths
guard with the tracer's truthiness::

    if self.tracer:
        self.tracer.emit(self.sim.now, "publish", subject=subject, ...)

so the disabled-tracing cost is one attribute test — the ``**fields``
kwargs dict is never built.  :data:`NULL_TRACER` is the shared disabled
instance components fall back to when none is supplied.

Flow-control events (:mod:`repro.core.flow`) share the ``flow.`` prefix:

``flow.drop``
    A queue shed a message (``queue``, ``policy``/``reason``, ``depth``).
``flow.defer``
    A full queue pushed back instead of shedding — always the fate of
    guaranteed-QoS traffic (``queue``, ``depth``).
``flow.credit``
    A queue that had pushed back drained below its resume threshold;
    upstream may resume (``queue``, ``depth``).

Tracing must never change behavior — emitters may not branch on what
was recorded, so a traced run and an untraced run of the same seed are
identical (a property the flow-control tests assert).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["DEFAULT_MAX_RECORDS", "NULL_TRACER", "TraceRecord", "Tracer"]

#: Default ring-buffer capacity for :attr:`Tracer.records`.  Long sims
#: with tracing left on used to grow memory without bound; past the cap
#: the oldest records are discarded and counted in ``dropped_records``.
DEFAULT_MAX_RECORDS = 100_000


@dataclass
class TraceRecord:
    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered."""

    def __init__(self, enabled: bool = False,
                 categories: Optional[List[str]] = None,
                 max_records: Optional[int] = DEFAULT_MAX_RECORDS):
        self.enabled = enabled
        self._categories = set(categories) if categories else None
        #: a bounded ring: at ``max_records`` the oldest record falls off
        #: (and is tallied below).  ``max_records=None`` is unbounded —
        #: the historical behavior, for tests that replay everything.
        self.records: Deque[TraceRecord] = deque(maxlen=max_records)
        #: records discarded off the front of the full ring
        self.dropped_records = 0
        self._listeners: List[Callable[[TraceRecord], None]] = []

    def __bool__(self) -> bool:
        """Truthy iff emitting would record — the hot-path guard."""
        return self.enabled

    def emit(self, time: float, category: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        record = TraceRecord(time, category, fields)
        ring = self.records
        if ring.maxlen is not None and len(ring) == ring.maxlen:
            self.dropped_records += 1
        ring.append(record)
        for listener in self._listeners:
            listener(record)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        self._listeners.append(listener)

    def select(self, category: str, **match: Any) -> List[TraceRecord]:
        """Records of ``category`` whose fields equal every ``match`` item."""
        out = []
        for record in self.records:
            if record.category != category:
                continue
            if all(record.fields.get(k) == v for k, v in match.items()):
                out.append(record)
        return out

    def count(self, category: str, **match: Any) -> int:
        return len(self.select(category, **match))

    def category_counts(self, prefix: str = "") -> Dict[str, int]:
        """Record counts per category, optionally limited to a prefix
        (e.g. ``"flow."`` for the flow-control event family)."""
        out: Dict[str, int] = {}
        for record in self.records:
            if prefix and not record.category.startswith(prefix):
                continue
            out[record.category] = out.get(record.category, 0) + 1
        return out

    def clear(self) -> None:
        self.records.clear()
        self.dropped_records = 0


#: Shared always-disabled tracer.  Do not enable it: every component that
#: was constructed without an explicit tracer holds this one instance.
NULL_TRACER = Tracer(enabled=False)
