"""Crash-surviving storage for guaranteed delivery and the repository.

The paper's *guaranteed* quality of service logs each message to
non-volatile storage before sending (Section 3.1).  :class:`StableStore`
models that storage: append-only logs plus a key-value area, both of which
survive :meth:`Host.crash`.

Values are deep-copied on the way in and out so that a protocol cannot
accidentally mutate its "disk" through a live reference — a classic source
of unrealistically optimistic recovery tests.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, List

__all__ = ["StableStore"]


class StableStore:
    """Per-host non-volatile storage: named append-only logs + a KV area."""

    def __init__(self) -> None:
        self._logs: Dict[str, List[Any]] = {}
        self._kv: Dict[str, Any] = {}
        self.write_count = 0   # counters let benches charge for I/O if desired

    # ------------------------------------------------------------------
    # append-only logs
    # ------------------------------------------------------------------
    def append(self, log: str, record: Any) -> int:
        """Append ``record`` to ``log``; returns its index in the log."""
        entries = self._logs.setdefault(log, [])
        entries.append(copy.deepcopy(record))
        self.write_count += 1
        return len(entries) - 1

    def read_log(self, log: str) -> List[Any]:
        """Return a snapshot copy of every record in ``log`` (oldest first)."""
        return copy.deepcopy(self._logs.get(log, []))

    def iter_log(self, log: str) -> Iterator[Any]:
        for record in self._logs.get(log, []):
            yield copy.deepcopy(record)

    def log_length(self, log: str) -> int:
        return len(self._logs.get(log, []))

    def truncate_log(self, log: str, keep_from: int) -> None:
        """Discard records with index < ``keep_from`` (compaction)."""
        entries = self._logs.get(log)
        if entries is None:
            return
        del entries[: max(0, keep_from)]
        self.write_count += 1

    def delete_log(self, log: str) -> None:
        self._logs.pop(log, None)

    def logs(self) -> List[str]:
        return sorted(self._logs)

    # ------------------------------------------------------------------
    # key-value area
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self._kv[key] = copy.deepcopy(value)
        self.write_count += 1

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._kv:
            return copy.deepcopy(self._kv[key])
        return default

    def delete(self, key: str) -> None:
        self._kv.pop(key, None)

    def keys(self) -> List[str]:
        return sorted(self._kv)

    def __contains__(self, key: str) -> bool:
        return key in self._kv
