"""Discrete-event simulation kernel.

Every distributed component in this reproduction (hosts, daemons, the
Ethernet segment, protocol timers) runs on top of this kernel.  Simulated
time is a ``float`` number of seconds starting at 0.0.  Events scheduled at
the same instant fire in the order they were scheduled, which keeps runs
fully deterministic for a given seed.

The kernel is deliberately small: an event heap, cancellable timers, named
RNG streams (so adding a new random consumer never perturbs existing ones),
and a couple of run-loop variants (`run`, `run_until`, `step`).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Event", "Simulator", "SimError"]


class SimError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice, ...)."""


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Events are single-shot.  Cancelling an event that already fired (or was
    already cancelled) is a no-op, which makes protocol cleanup code simple.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired",
                 "name", "sort_key", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[..., None],
                 args: tuple, name: str = "",
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.name = name
        # the heap compares events on every sift; precomputing the key
        # once beats building a tuple per comparison
        self.sort_key = (time, seq)
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing.  Idempotent."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        label = self.name or getattr(self.callback, "__name__", "<fn>")
        return f"<Event t={self.time:.6f} {label} {state}>"


class Simulator:
    """The event loop.

    Parameters
    ----------
    seed:
        Master seed.  All randomness in a simulation must come from
        :meth:`rng` streams derived from this seed; two runs with the same
        seed and the same schedule of calls are bit-identical.
    """

    #: Compact once at least this many heap entries are cancelled AND they
    #: outnumber the live ones — timer-churn workloads (heartbeats, advert
    #: timers, retransmit timers across many hosts) otherwise accumulate
    #: dead events until they happen to be popped.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._rngs: Dict[str, random.Random] = {}
        self._running = False
        self._stopped = False
        #: cancelled-but-still-heaped events (kept exact by cancel/pop)
        self._cancelled_count = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # time & randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def rng(self, stream: str) -> random.Random:
        """Return the named RNG stream, creating it deterministically.

        Streams are independent: the draw order in one stream never affects
        another, so e.g. the Ethernet loss stream and an application's
        workload stream cannot perturb each other.
        """
        rng = self._rngs.get(stream)
        if rng is None:
            rng = random.Random(f"{self.seed}/{stream}")
            self._rngs[stream] = rng
        return rng

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any, name: str = "") -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), callback, args,
                      name, sim=self)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any, name: str = "") -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        return self.schedule(time - self._now, callback, *args, name=name)

    def call_soon(self, callback: Callable[..., None], *args: Any,
                  name: str = "") -> Event:
        """Schedule ``callback`` at the current instant (after pending events)."""
        return self.schedule(0.0, callback, *args, name=name)

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.  Returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._cancelled_count -= 1
                continue
            event.fired = True
            self._now = event.time
            event.callback(*event.args)
            return True
        return False

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until the event heap drains.  Returns the number of events fired.

        ``max_events`` is a runaway guard: protocols with periodic timers
        that never idle would otherwise spin forever.
        """
        if self._running:
            raise SimError("simulator is already running")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while fired < max_events and not self._stopped:
                if not self.step():
                    break
                fired += 1
            else:
                if fired >= max_events:
                    raise SimError(f"exceeded max_events={max_events}")
        finally:
            self._running = False
        return fired

    def run_until(self, deadline: float, max_events: int = 10_000_000) -> int:
        """Run events with ``time <= deadline``; leave later events queued.

        After returning, :attr:`now` equals ``deadline`` even if the heap
        drained earlier, so periodic measurement code can rely on it.
        """
        if self._running:
            raise SimError("simulator is already running")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while fired < max_events and not self._stopped:
                if not self._heap:
                    break
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled_count -= 1
                    continue
                if nxt.time > deadline:
                    break
                self.step()
                fired += 1
            else:
                if fired >= max_events:
                    raise SimError(f"exceeded max_events={max_events}")
        finally:
            self._running = False
            if self._now < deadline:
                self._now = deadline
        return fired

    def stop(self) -> None:
        """Request the current :meth:`run` / :meth:`run_until` to return."""
        self._stopped = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the heap.  O(1)."""
        return len(self._heap) - self._cancelled_count

    # ------------------------------------------------------------------
    # cancelled-event bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for events still in the heap."""
        self._cancelled_count += 1
        if (self._cancelled_count >= self.COMPACT_MIN_CANCELLED
                and self._cancelled_count * 2 > len(self._heap)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events.

        Timer-churn workloads cancel far more events than they fire
        (every delivered message cancels a retransmit timer); without
        compaction those corpses occupy heap slots — and comparisons —
        until their deadline is reached.  Rebuilding keeps the relative
        order of live events: the heap is re-heapified on the same
        ``(time, seq)`` keys.
        """
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_count = 0
        self.compactions += 1


class PeriodicTimer:
    """Fixed-interval timer that reschedules itself until stopped.

    Useful for protocol heartbeats and polling loops.  The callback runs
    first at ``sim.now + interval`` (or ``+ initial_delay`` if given).
    """

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[[], None],
                 initial_delay: Optional[float] = None, name: str = ""):
        if interval <= 0:
            raise SimError(f"interval must be positive (got {interval})")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._name = name or "periodic"
        self._event: Optional[Event] = None
        self._stopped = False
        first = interval if initial_delay is None else initial_delay
        self._event = sim.schedule(first, self._fire, name=self._name)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._event = self._sim.schedule(self._interval, self._fire,
                                         name=self._name)
        self._callback()

    def stop(self) -> None:
        """Cancel the timer.  Idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def stopped(self) -> bool:
        return self._stopped


__all__.append("PeriodicTimer")
