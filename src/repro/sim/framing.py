"""Byte-level wire framing: length-prefixed frames with a CRC trailer.

Everything that crosses a simulated socket is real ``bytes``.  A frame is

    +-------+----------------+----------+-----------------+
    | magic | body length u32|   body   | CRC-32 of body  |
    |  "IB" |   big-endian   |          |   big-endian    |
    +-------+----------------+----------+-----------------+

The length prefix lets a receiver reject truncated buffers; the trailing
checksum lets it reject corrupted ones (see the ``corrupt_rate`` knob on
:class:`~repro.sim.ethernet.EthernetSegment`).  Any validation failure
raises :class:`CorruptFrame` — the caller drops the frame and lets the
retransmission machinery repair the loss, exactly like a UDP checksum
failure on a real network.

This module also provides the primitive field encoders (varints, strings,
floats) shared by the packet codec (:mod:`repro.core.wire`) and the
stream-segment codec (:mod:`repro.sim.transport`), in two forms:

* the historical ``read_*(data, pos) -> (value, pos)`` free functions,
  kept for callers that hold plain ``bytes``;
* :class:`Cursor`, the allocation-lean decode fast path: one object
  walks a single :class:`memoryview` of the frame body with precompiled
  :class:`struct.Struct` unpackers, so field reads never slice new
  ``bytes`` objects (strings decode straight out of the buffer, and
  only payload fields pay a copy).  Pair it with :func:`unframe_view`,
  which CRC-validates a frame and returns the body as a zero-copy view.

It sits at the bottom of the layering: it knows nothing about envelopes,
packets, or segments.
"""

from __future__ import annotations

import struct
import zlib
from io import BytesIO
from typing import Tuple

__all__ = ["CorruptFrame", "Cursor", "FRAME_OVERHEAD", "MAX_VARINT_BYTES",
           "frame", "unframe", "unframe_view", "flip_random_bit",
           "read_bytes", "read_f64", "read_str", "read_varint",
           "write_bytes", "write_f64", "write_str", "write_varint"]

_MAGIC = b"IB"
_LEN = struct.Struct(">I")
_CRC = struct.Struct(">I")
_F64 = struct.Struct(">d")

#: Framing bytes added around every body: magic + length + checksum.
FRAME_OVERHEAD = len(_MAGIC) + _LEN.size + _CRC.size

#: Hard cap on encoded varint length.  Ten 7-bit groups cover every value
#: a 64-bit field can carry; anything longer is a corrupt or hostile
#: frame, and the decoder must not spin through an arbitrary run of
#: continuation bytes before noticing.
MAX_VARINT_BYTES = 10


class CorruptFrame(ValueError):
    """A frame failed validation (bad magic, length, or checksum)."""


def frame(body: bytes) -> bytes:
    """Wrap ``body`` in the magic / length / checksum framing."""
    return b"".join((_MAGIC, _LEN.pack(len(body)), body,
                     _CRC.pack(zlib.crc32(body))))


def unframe_view(data: bytes) -> memoryview:
    """Validate framing and return the body as a zero-copy memoryview.

    The decode fast path: the CRC is computed over the view, and a
    :class:`Cursor` then reads fields straight out of the original
    buffer.  Raises :class:`CorruptFrame` on any validation failure.
    """
    if len(data) < FRAME_OVERHEAD:
        raise CorruptFrame(f"frame too short ({len(data)} bytes)")
    if bytes(data[:2]) != _MAGIC:
        raise CorruptFrame("bad magic")
    (length,) = _LEN.unpack_from(data, 2)
    if length != len(data) - FRAME_OVERHEAD:
        raise CorruptFrame(
            f"length prefix {length} != {len(data) - FRAME_OVERHEAD} body bytes")
    body = memoryview(data)[6:6 + length]
    (crc,) = _CRC.unpack_from(data, 6 + length)
    if crc != zlib.crc32(body):
        raise CorruptFrame("checksum mismatch")
    return body


def unframe(data: bytes) -> bytes:
    """Validate framing and return the body; raises :class:`CorruptFrame`."""
    return unframe_view(data).tobytes()


def flip_random_bit(data: bytes, rng) -> bytes:
    """Return a copy of ``data`` with one random bit inverted.

    Consumes a *fixed* amount of entropy (one 32-bit draw) regardless of
    the buffer length: ``rng.randrange(n)`` re-draws until its sample
    fits ``n``, so differently sized buffers would advance the stream by
    different amounts and same-seed runs whose encodings differ (e.g.
    wire compression on vs off) would see diverging fault sequences.
    The modulo bias is irrelevant for fault injection.
    """
    if not data:
        return data
    flipped = bytearray(data)
    bit = rng.getrandbits(32) % (len(flipped) * 8)
    flipped[bit >> 3] ^= 1 << (bit & 7)
    return bytes(flipped)


# ----------------------------------------------------------------------
# allocation-lean cursor (the decode fast path)
# ----------------------------------------------------------------------

class Cursor:
    """Sequential field reader over one frame body.

    Holds a single :class:`memoryview` and a position; every ``read``
    advances the position or raises :class:`CorruptFrame`.  Strings are
    decoded directly from the view (no intermediate ``bytes``), floats
    unpack in place via a precompiled :class:`struct.Struct`, and only
    :meth:`bytes_` — payload fields that must outlive the buffer — pays
    a copy.
    """

    __slots__ = ("buf", "pos", "end")

    def __init__(self, data) -> None:
        buf = data if isinstance(data, memoryview) else memoryview(data)
        self.buf = buf
        self.pos = 0
        self.end = len(buf)

    @property
    def exhausted(self) -> bool:
        return self.pos >= self.end

    def remaining(self) -> int:
        return self.end - self.pos

    def u8(self) -> int:
        pos = self.pos
        if pos >= self.end:
            raise CorruptFrame("truncated byte field")
        self.pos = pos + 1
        return self.buf[pos]

    def varint(self) -> int:
        buf, pos, end = self.buf, self.pos, self.end
        result = 0
        shift = 0
        while True:
            if pos >= end:
                raise CorruptFrame("truncated varint")
            byte = buf[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self.pos = pos
                return result
            shift += 7
            if shift >= MAX_VARINT_BYTES * 7:
                raise CorruptFrame(
                    f"varint longer than {MAX_VARINT_BYTES} bytes")

    def bytes_(self) -> bytes:
        length = self.varint()
        pos = self.pos
        if pos + length > self.end:
            raise CorruptFrame("truncated bytes field")
        self.pos = pos + length
        return self.buf[pos:pos + length].tobytes()

    def view_(self) -> memoryview:
        """Like :meth:`bytes_` but zero-copy: the returned view aliases
        the frame buffer.  For fields that may never be materialized —
        lazy envelope payloads copy out only if something downstream
        actually reads them (see :class:`repro.core.wire.EnvelopeView`).
        """
        length = self.varint()
        pos = self.pos
        if pos + length > self.end:
            raise CorruptFrame("truncated bytes field")
        self.pos = pos + length
        return self.buf[pos:pos + length]

    def str_(self) -> str:
        length = self.varint()
        pos = self.pos
        if pos + length > self.end:
            raise CorruptFrame("truncated string field")
        self.pos = pos + length
        try:
            return str(self.buf[pos:pos + length], "utf-8")
        except UnicodeDecodeError as error:
            raise CorruptFrame(
                f"invalid UTF-8 in string field: {error}") from None

    def f64(self) -> float:
        pos = self.pos
        if pos + 8 > self.end:
            raise CorruptFrame("truncated float field")
        self.pos = pos + 8
        return _F64.unpack_from(self.buf, pos)[0]


# ----------------------------------------------------------------------
# primitive field codecs
# ----------------------------------------------------------------------

def write_varint(out: BytesIO, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint must be non-negative: {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptFrame("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift >= MAX_VARINT_BYTES * 7:
            raise CorruptFrame(f"varint longer than {MAX_VARINT_BYTES} bytes")


def write_bytes(out: BytesIO, raw: bytes) -> None:
    write_varint(out, len(raw))
    out.write(raw)


def read_bytes(data: bytes, pos: int) -> Tuple[bytes, int]:
    length, pos = read_varint(data, pos)
    if pos + length > len(data):
        raise CorruptFrame("truncated bytes field")
    return bytes(data[pos:pos + length]), pos + length


def write_str(out: BytesIO, text: str) -> None:
    write_bytes(out, text.encode("utf-8"))


def read_str(data: bytes, pos: int) -> Tuple[str, int]:
    raw, pos = read_bytes(data, pos)
    try:
        return raw.decode("utf-8"), pos
    except UnicodeDecodeError as error:
        raise CorruptFrame(f"invalid UTF-8 in string field: {error}") from None


def write_f64(out: BytesIO, value: float) -> None:
    out.write(_F64.pack(value))


def read_f64(data: bytes, pos: int) -> Tuple[float, int]:
    if pos + 8 > len(data):
        raise CorruptFrame("truncated float field")
    return _F64.unpack_from(data, pos)[0], pos + 8
