"""Byte-level wire framing: length-prefixed frames with a CRC trailer.

Everything that crosses a simulated socket is real ``bytes``.  A frame is

    +-------+----------------+----------+-----------------+
    | magic | body length u32|   body   | CRC-32 of body  |
    |  "IB" |   big-endian   |          |   big-endian    |
    +-------+----------------+----------+-----------------+

The length prefix lets a receiver reject truncated buffers; the trailing
checksum lets it reject corrupted ones (see the ``corrupt_rate`` knob on
:class:`~repro.sim.ethernet.EthernetSegment`).  Any validation failure
raises :class:`CorruptFrame` — the caller drops the frame and lets the
retransmission machinery repair the loss, exactly like a UDP checksum
failure on a real network.

This module also provides the primitive field encoders (varints, strings,
floats) shared by the packet codec (:mod:`repro.core.wire`) and the
stream-segment codec (:mod:`repro.sim.transport`).  It sits at the bottom
of the layering: it knows nothing about envelopes, packets, or segments.
"""

from __future__ import annotations

import struct
import zlib
from io import BytesIO
from typing import Tuple

__all__ = ["CorruptFrame", "FRAME_OVERHEAD", "frame", "unframe",
           "flip_random_bit", "read_bytes", "read_f64", "read_str",
           "read_varint", "write_bytes", "write_f64", "write_str",
           "write_varint"]

_MAGIC = b"IB"
_LEN = struct.Struct(">I")
_CRC = struct.Struct(">I")
_F64 = struct.Struct(">d")

#: Framing bytes added around every body: magic + length + checksum.
FRAME_OVERHEAD = len(_MAGIC) + _LEN.size + _CRC.size


class CorruptFrame(ValueError):
    """A frame failed validation (bad magic, length, or checksum)."""


def frame(body: bytes) -> bytes:
    """Wrap ``body`` in the magic / length / checksum framing."""
    return b"".join((_MAGIC, _LEN.pack(len(body)), body,
                     _CRC.pack(zlib.crc32(body))))


def unframe(data: bytes) -> bytes:
    """Validate framing and return the body; raises :class:`CorruptFrame`."""
    if len(data) < FRAME_OVERHEAD:
        raise CorruptFrame(f"frame too short ({len(data)} bytes)")
    if bytes(data[:2]) != _MAGIC:
        raise CorruptFrame("bad magic")
    (length,) = _LEN.unpack_from(data, 2)
    if length != len(data) - FRAME_OVERHEAD:
        raise CorruptFrame(
            f"length prefix {length} != {len(data) - FRAME_OVERHEAD} body bytes")
    body = bytes(data[6:6 + length])
    (crc,) = _CRC.unpack_from(data, 6 + length)
    if crc != zlib.crc32(body):
        raise CorruptFrame("checksum mismatch")
    return body


def flip_random_bit(data: bytes, rng) -> bytes:
    """Return a copy of ``data`` with one random bit inverted."""
    if not data:
        return data
    flipped = bytearray(data)
    bit = rng.randrange(len(flipped) * 8)
    flipped[bit >> 3] ^= 1 << (bit & 7)
    return bytes(flipped)


# ----------------------------------------------------------------------
# primitive field codecs
# ----------------------------------------------------------------------

def write_varint(out: BytesIO, value: int) -> None:
    if value < 0:
        raise ValueError(f"varint must be non-negative: {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptFrame("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CorruptFrame("varint too long")


def write_bytes(out: BytesIO, raw: bytes) -> None:
    write_varint(out, len(raw))
    out.write(raw)


def read_bytes(data: bytes, pos: int) -> Tuple[bytes, int]:
    length, pos = read_varint(data, pos)
    if pos + length > len(data):
        raise CorruptFrame("truncated bytes field")
    return bytes(data[pos:pos + length]), pos + length


def write_str(out: BytesIO, text: str) -> None:
    write_bytes(out, text.encode("utf-8"))


def read_str(data: bytes, pos: int) -> Tuple[str, int]:
    raw, pos = read_bytes(data, pos)
    try:
        return raw.decode("utf-8"), pos
    except UnicodeDecodeError as error:
        raise CorruptFrame(f"invalid UTF-8 in string field: {error}") from None


def write_f64(out: BytesIO, value: float) -> None:
    out.write(_F64.pack(value))


def read_f64(data: bytes, pos: int) -> Tuple[float, int]:
    if pos + 8 > len(data):
        raise CorruptFrame("truncated float field")
    return _F64.unpack_from(data, pos)[0], pos + 8
