"""Unrelated network activity.

The Appendix measured on a "lightly loaded" Ethernet and explicitly
blames "collisions from unrelated network activity" for the slight
throughput dip and variance increase between five- and ten-thousand-byte
messages.  :class:`BackgroundTraffic` injects that activity: a phantom
host pair exchanging frames at a configurable offered load, contending
for the shared medium like any other station.
"""

from __future__ import annotations

from typing import Optional

from .ethernet import EthernetSegment
from .kernel import Event, Simulator
from .network import Frame

__all__ = ["BackgroundTraffic"]

#: Port that no daemon binds: background frames are pure medium load.
_NOISE_PORT = 9


class BackgroundTraffic:
    """Injects cross-traffic onto a segment at a mean offered load.

    ``load`` is the fraction of the segment's bandwidth consumed on
    average (0.05 = 5%).  Inter-frame gaps are exponentially distributed
    (Poisson arrivals), frame sizes uniform in ``[min_size, max_size]``
    — bursty enough to collide with measurement traffic at random
    times, which is exactly what shows up as variance in Figures 6-8.
    """

    def __init__(self, sim: Simulator, segment: EthernetSegment,
                 load: float = 0.05, min_size: int = 64,
                 max_size: int = 1400, name: str = "bg"):
        if not 0 <= load < 0.95:
            raise ValueError(f"load must be in [0, 0.95), got {load}")
        self.sim = sim
        self.segment = segment
        self.load = load
        self.min_size = min_size
        self.max_size = max_size
        self.name = name
        self.frames_injected = 0
        self.bytes_injected = 0
        self._rng = sim.rng(f"background.{name}")
        self._event: Optional[Event] = None
        self._running = False
        if load > 0:
            self.start()

    def start(self) -> None:
        if self._running or self.load <= 0:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # ------------------------------------------------------------------
    def _mean_gap(self, size: int) -> float:
        """Inter-arrival time that yields the target average load."""
        wire_time = self.segment.cost.wire_time(size)
        return wire_time / self.load

    def _schedule_next(self) -> None:
        size = self._rng.randint(self.min_size, self.max_size)
        gap = self._rng.expovariate(1.0 / self._mean_gap(size))
        self._event = self.sim.schedule(gap, self._inject, size,
                                        name="background.frame")

    def _inject(self, size: int) -> None:
        if not self._running:
            return
        # straight onto the medium: phantom stations have no CPU model
        frame = Frame(f"_{self.name}-src", f"_{self.name}-dst",
                      _NOISE_PORT, _NOISE_PORT, None, size)
        self.segment.transmit(frame)
        self.frames_injected += 1
        self.bytes_injected += size
        self._schedule_next()
