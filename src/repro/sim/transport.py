"""Transport layer: UDP-like datagrams and TCP-like streams.

The Information Bus implementation the paper describes uses "UDP packets in
combination with a retransmission protocol" for publish/subscribe, and "any
simple connection mechanism, such as a TCP/IP connection" for the RMI
point-to-point leg (Sections 3.1 and 3.3).  This module provides both:

* :class:`DatagramSocket` — unreliable, unordered datagrams with IP-style
  fragmentation above the MTU (losing any fragment loses the datagram);
* :class:`StreamManager` / :class:`StreamConnection` — a connection-oriented
  reliable, in-order message stream built on go-back-N ARQ over datagrams.

Everything on the wire is real ``bytes``: datagrams are byte buffers,
fragments are slices of the buffer, and stream segments are encoded with
the checksummed framing from :mod:`repro.sim.framing`.  Sizes are measured
(``len(data)``), never declared by the caller.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from io import BytesIO
from typing import Callable, Deque, Dict, Optional, Tuple

from .framing import (CorruptFrame, Cursor, frame, unframe_view,
                      write_bytes, write_varint)
from ..core.metrics import MetricsRegistry
from .kernel import Event, Simulator
from .network import BROADCAST, Address, Frame
from .node import Host

__all__ = ["DatagramSocket", "StreamManager", "StreamConnection",
           "Endpoint", "FRAGMENT_HEADER"]

#: Bytes of fragmentation header accounted per fragment (the simulated
#: IP-style header carrying datagram id / index / count).
FRAGMENT_HEADER = 8

#: How long a partially reassembled datagram is kept before being purged.
REASSEMBLY_TIMEOUT = 5.0

Endpoint = Tuple[Address, int]

_datagram_ids = itertools.count(1)


@dataclass
class _Fragment:
    datagram_id: int
    index: int
    count: int
    payload: bytes     # this fragment's slice of the datagram buffer
    total_size: int    # length of the whole datagram, for sanity checks


class DatagramSocket:
    """An unreliable datagram endpoint bound to ``(host, port)``.

    ``on_datagram(data, size, src_endpoint)`` is invoked with the
    reassembled byte buffer for each fully received datagram
    (``size == len(data)``).  Delivery may be lossy, duplicated, corrupted,
    or reordered according to the segment's fault knobs.
    """

    def __init__(self, sim: Simulator, host: Host, port: int,
                 on_datagram: Callable[[bytes, int, Endpoint], None],
                 metrics=None, metrics_name: str = "", lane: int = 0):
        self.sim = sim
        self.host = host
        self.port = port
        self.lane = lane
        self.on_datagram = on_datagram
        self._reassembly: Dict[Tuple[Address, int], Dict[int, bytes]] = {}
        self._reassembly_deadline: Dict[Tuple[Address, int], float] = {}
        # counters live in the owner's MetricsRegistry when one is
        # handed in (`metrics_name` scopes them); otherwise in a private
        # detached registry so the int properties always work
        if metrics is None:
            metrics = MetricsRegistry()
        scope = metrics.scope(metrics_name) if metrics_name else metrics
        self._datagrams_sent = scope.counter("datagrams_sent")
        self._datagrams_received = scope.counter("datagrams_received")
        host.bind(port, self._on_frame, lane=lane)

    @property
    def datagrams_sent(self) -> int:
        return self._datagrams_sent.value

    @property
    def datagrams_received(self) -> int:
        return self._datagrams_received.value

    def close(self) -> None:
        self.host.unbind(self.port)

    # ------------------------------------------------------------------
    def sendto(self, data: bytes, dst: Address, dst_port: int) -> None:
        """Send one datagram of ``data``; fragments above the MTU."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"datagram payload must be bytes, "
                            f"got {type(data).__name__}")
        data = bytes(data)
        size = len(data)
        mtu = self.host.cost.mtu
        if size <= mtu:
            frame = Frame(self.host.address, dst, self.port, dst_port,
                          _Fragment(next(_datagram_ids), 0, 1, data, size),
                          size)
            self.host.send_frame(frame, lane=self.lane)
            self._datagrams_sent.value += 1
            return
        datagram_id = next(_datagram_ids)
        count = (size + mtu - 1) // mtu
        for index in range(count):
            chunk = data[index * mtu:(index + 1) * mtu]
            frag = _Fragment(datagram_id, index, count, chunk, size)
            frame = Frame(self.host.address, dst, self.port, dst_port,
                          frag, len(chunk) + FRAGMENT_HEADER)
            self.host.send_frame(frame, lane=self.lane)
        self._datagrams_sent.value += 1

    def broadcast(self, data: bytes, dst_port: int) -> None:
        self.sendto(data, BROADCAST, dst_port)

    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        frag: _Fragment = frame.payload
        src = (frame.src, frame.src_port)
        if frag.count == 1:
            self._datagrams_received.value += 1
            self.on_datagram(frag.payload, len(frag.payload), src)
            return
        key = (frame.src, frag.datagram_id)
        chunks = self._reassembly.setdefault(key, {})
        chunks[frag.index] = frag.payload
        self._reassembly_deadline[key] = self.sim.now + REASSEMBLY_TIMEOUT
        if len(chunks) == frag.count:
            del self._reassembly[key]
            del self._reassembly_deadline[key]
            data = b"".join(chunks[i] for i in range(frag.count))
            self._datagrams_received.value += 1
            self.on_datagram(data, len(data), src)
        elif len(self._reassembly) > 256:
            self._purge_stale()

    def _purge_stale(self) -> None:
        now = self.sim.now
        stale = [k for k, dl in self._reassembly_deadline.items() if dl < now]
        for key in stale:
            self._reassembly.pop(key, None)
            self._reassembly_deadline.pop(key, None)
        # still over the cap (a burst of half-arrived datagrams that are
        # not yet stale): evict the oldest — their missing fragments are
        # the least likely to still show up
        overflow = len(self._reassembly) - 256
        if overflow > 0:
            oldest = sorted(self._reassembly_deadline,
                            key=self._reassembly_deadline.get)[:overflow]
            for key in oldest:
                self._reassembly.pop(key, None)
                self._reassembly_deadline.pop(key, None)


# ----------------------------------------------------------------------
# streams
# ----------------------------------------------------------------------

_conn_ids = itertools.count(1)

# segment kinds
_SYN, _SYN_ACK, _DATA, _ACK, _FIN = "syn", "syn_ack", "data", "ack", "fin"

_KIND_TO_CODE = {_SYN: 0, _SYN_ACK: 1, _DATA: 2, _ACK: 3, _FIN: 4}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}


@dataclass
class _StreamSeg:
    kind: str
    conn_id: int
    seq: int
    payload: bytes = b""


def _encode_seg(seg: _StreamSeg) -> bytes:
    """Encode a stream segment to one checksummed wire frame."""
    out = BytesIO()
    out.write(bytes((_KIND_TO_CODE[seg.kind],)))
    write_varint(out, seg.conn_id)
    write_varint(out, seg.seq)
    write_bytes(out, seg.payload)
    return frame(out.getvalue())


def _decode_seg(data: bytes) -> _StreamSeg:
    """Decode one wire frame back to a segment; raises CorruptFrame."""
    cur = Cursor(unframe_view(data))
    try:
        kind = _CODE_TO_KIND[cur.u8()]
    except KeyError:
        raise CorruptFrame("unknown segment kind code") from None
    conn_id = cur.varint()
    seq = cur.varint()
    payload = cur.bytes_()
    if not cur.exhausted:
        raise CorruptFrame(f"{cur.remaining()} trailing bytes after segment")
    return _StreamSeg(kind, conn_id, seq, payload)


class StreamConnection:
    """One reliable, in-order, message-oriented connection endpoint.

    Created by :meth:`StreamManager.connect` (initiator side) or handed to
    the listener's ``on_accept`` callback (responder side).  Use
    :meth:`send` to transmit a message and set :attr:`on_message` /
    :attr:`on_close` to receive.
    """

    WINDOW = 16
    INITIAL_RTO = 0.08
    MAX_RETRIES = 8

    def __init__(self, manager: "StreamManager", conn_id: int,
                 peer: Endpoint, initiator: bool):
        self._manager = manager
        self.sim = manager.sim
        self.conn_id = conn_id
        self.peer = peer
        self.initiator = initiator
        self.established = not initiator   # responder is live on SYN
        self.closed = False
        self.on_message: Optional[Callable[[bytes, int], None]] = None
        self.on_close: Optional[Callable[[Optional[str]], None]] = None
        self.on_established: Optional[Callable[[], None]] = None
        # send side
        self._next_seq = 0
        self._unacked: Dict[int, bytes] = {}
        self._send_queue: Deque[bytes] = deque()
        self._retry_event: Optional[Event] = None
        self._retries = 0
        self._rto = self.INITIAL_RTO
        # receive side
        self._next_expected = 0
        # connect retries (initiator only)
        self._syn_event: Optional[Event] = None
        self._syn_tries = 0

    # ------------------------------------------------------------------
    @property
    def local_endpoint(self) -> Endpoint:
        return (self._manager.host.address, self._manager.port)

    def send(self, data: bytes) -> None:
        """Queue ``data`` for reliable, in-order delivery to the peer."""
        if self.closed:
            raise RuntimeError("connection is closed")
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"stream payload must be bytes, "
                            f"got {type(data).__name__}")
        self._send_queue.append(bytes(data))
        self._pump()

    def close(self, error: Optional[str] = None) -> None:
        """Close the connection.  Unsent queued messages are dropped."""
        if self.closed:
            return
        self.closed = True
        self._cancel_timers()
        if error is None and self.established:
            self._manager._send_seg(self.peer, _StreamSeg(
                _FIN, self.conn_id, self._next_seq))
        self._manager._forget(self.conn_id)
        if self.on_close is not None:
            self.on_close(error)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cancel_timers(self) -> None:
        for ev in (self._retry_event, self._syn_event):
            if ev is not None:
                ev.cancel()
        self._retry_event = None
        self._syn_event = None

    def _start_connect(self) -> None:
        self._syn_tries += 1
        if self._syn_tries > self.MAX_RETRIES:
            self.close(error="connect timed out")
            return
        self._manager._send_seg(self.peer, _StreamSeg(_SYN, self.conn_id, 0))
        self._syn_event = self.sim.schedule(
            self._rto * self._syn_tries, self._start_connect, name="syn.retry")

    def _on_established(self) -> None:
        if self.established:
            return
        self.established = True
        if self._syn_event is not None:
            self._syn_event.cancel()
            self._syn_event = None
        if self.on_established is not None:
            self.on_established()
        self._pump()

    def _pump(self) -> None:
        """Move queued messages into the in-flight window."""
        if not self.established or self.closed:
            return
        while self._send_queue and len(self._unacked) < self.WINDOW:
            data = self._send_queue.popleft()
            seq = self._next_seq
            self._next_seq += 1
            self._unacked[seq] = data
            self._transmit(seq)
        self._arm_retry()

    def _transmit(self, seq: int) -> None:
        self._manager._send_seg(self.peer, _StreamSeg(
            _DATA, self.conn_id, seq, self._unacked[seq]))

    def _arm_retry(self) -> None:
        if self._retry_event is not None or not self._unacked:
            return
        self._retry_event = self.sim.schedule(self._rto, self._on_retry,
                                              name="stream.rto")

    def _on_retry(self) -> None:
        self._retry_event = None
        if self.closed or not self._unacked:
            return
        self._retries += 1
        if self._retries > self.MAX_RETRIES:
            self.close(error="peer unreachable")
            return
        self._rto = min(self._rto * 2, 2.0)   # exponential backoff
        for seq in sorted(self._unacked):      # go-back-N retransmit
            self._transmit(seq)
        self._arm_retry()

    def _on_ack(self, seq: int) -> None:
        """Cumulative ack: everything below ``seq`` is delivered."""
        # any ack is proof the peer is alive — retransmit exhaustion should
        # mean unreachability, not a lossy stretch on a reachable path
        self._retries = 0
        acked = [s for s in self._unacked if s < seq]
        for s in acked:
            del self._unacked[s]
        if acked:
            self._rto = self.INITIAL_RTO
            if self._retry_event is not None:
                self._retry_event.cancel()
                self._retry_event = None
        self._pump()

    def _on_data(self, seg: _StreamSeg) -> None:
        if seg.seq == self._next_expected:
            self._next_expected += 1
            if self.on_message is not None:
                self.on_message(seg.payload, len(seg.payload))
        # ack what we have so far (duplicates and out-of-order re-ack)
        self._manager._send_seg(self.peer, _StreamSeg(
            _ACK, self.conn_id, self._next_expected))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<StreamConnection {self.local_endpoint}->{self.peer} "
                f"id={self.conn_id} est={self.established}>")


class StreamManager:
    """Owns every stream endpoint at one ``(host, port)``.

    A server calls :meth:`listen`; a client calls :meth:`connect`.  Both
    sides of every connection at this port multiplex over one datagram
    socket.
    """

    def __init__(self, sim: Simulator, host: Host, port: int):
        self.sim = sim
        self.host = host
        self.port = port
        self._socket = DatagramSocket(sim, host, port, self._on_datagram)
        self._on_accept: Optional[Callable[[StreamConnection], None]] = None
        self._conns: Dict[int, StreamConnection] = {}
        #: segments dropped because their frame failed validation
        self.corrupt_dropped = 0

    @property
    def endpoint(self) -> Endpoint:
        return (self.host.address, self.port)

    def listen(self, on_accept: Callable[[StreamConnection], None]) -> None:
        self._on_accept = on_accept

    def connect(self, dst: Address, dst_port: int) -> StreamConnection:
        """Open a connection; returns immediately, use ``on_established``."""
        conn = StreamConnection(self, next(_conn_ids), (dst, dst_port),
                                initiator=True)
        self._conns[conn.conn_id] = conn
        conn._start_connect()
        return conn

    def close(self) -> None:
        for conn in list(self._conns.values()):
            conn.close(error="manager closed")
        self._socket.close()

    # ------------------------------------------------------------------
    def _forget(self, conn_id: int) -> None:
        self._conns.pop(conn_id, None)

    def _send_seg(self, peer: Endpoint, seg: _StreamSeg) -> None:
        if not self.host.up:
            return
        self._socket.sendto(_encode_seg(seg), peer[0], peer[1])

    def _on_datagram(self, data: bytes, size: int, src: Endpoint) -> None:
        try:
            seg = _decode_seg(data)
        except CorruptFrame:
            # a corrupted segment is just loss; ARQ repairs it
            self.corrupt_dropped += 1
            return
        conn = self._conns.get(seg.conn_id)
        if seg.kind == _SYN:
            if conn is None:
                if self._on_accept is None:
                    return   # not listening: silently drop, initiator times out
                conn = StreamConnection(self, seg.conn_id, src,
                                        initiator=False)
                self._conns[seg.conn_id] = conn
                self._on_accept(conn)
            # (re)confirm — SYNs may be duplicated or retried
            self._send_seg(src, _StreamSeg(_SYN_ACK, seg.conn_id, 0))
        elif conn is None:
            return   # stale segment for a closed connection
        elif seg.kind == _SYN_ACK:
            conn._on_established()
        elif seg.kind == _DATA:
            conn._on_data(seg)
        elif seg.kind == _ACK:
            conn._on_ack(seg.seq)
        elif seg.kind == _FIN:
            conn.close()
