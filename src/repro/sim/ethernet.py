"""A shared 10 Mbit/s Ethernet broadcast segment.

This is the substrate the paper's LAN implementation runs on: "reliable
publication is implemented with Ethernet broadcast ... the same data [is]
delivered to a large number of destinations without a performance penalty"
(Section 3.1).  The segment therefore models:

* a single shared medium — frames serialize through it at the configured
  bandwidth (this is what makes bytes/sec plateau in Figure 7);
* true broadcast — one transmission is seen by every attached host, so
  latency and publisher throughput are independent of the consumer count
  (the Appendix's headline claims);
* per-receiver loss, duplication, bit corruption (:attr:`corrupt_rate`),
  and optional delivery jitter (the network "may lose, delay, and
  duplicate messages, or deliver messages out of order", Section 2);
* partitions — the host set can be split into groups that cannot hear
  each other, and later healed.
"""

from __future__ import annotations

import dataclasses
import itertools

from typing import Dict, Iterable, List, Optional, Set

from .framing import flip_random_bit
from .kernel import Simulator
from .network import BROADCAST, Address, CostModel, Frame
from .node import Host

__all__ = ["EthernetSegment"]


class EthernetSegment:
    """A broadcast domain connecting a set of :class:`Host` objects."""

    def __init__(self, sim: Simulator, name: str = "lan",
                 cost: Optional[CostModel] = None):
        self.sim = sim
        self.name = name
        self.cost = cost or CostModel()
        self._hosts: Dict[Address, Host] = {}
        #: per-segment frame-id counter (a module-global here would leak
        #: ids across simulators in one process and break same-seed
        #: reproducibility between back-to-back runs)
        self._frame_ids = itertools.count(1)
        self._medium_busy_until = 0.0
        self._partition: Optional[List[Set[Address]]] = None
        #: per-receiver probability that a frame arrives with one bit
        #: flipped.  The payload bytes are altered, the receiver's
        #: checksum fails, and the frame is dropped above the socket —
        #: exercising the NACK/ARQ repair path end-to-end.
        self.corrupt_rate = 0.0
        # traffic counters
        self.frames_transmitted = 0
        self.bytes_transmitted = 0
        self.frames_dropped = 0
        self.frames_corrupted = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def attach(self, host: Host) -> Host:
        if host.address in self._hosts:
            raise ValueError(f"address {host.address!r} already on {self.name}")
        self._hosts[host.address] = host
        host.segment = self
        host.cost = self.cost
        return host

    def add_host(self, address: Address) -> Host:
        """Create a host with this segment's cost model and attach it."""
        return self.attach(Host(self.sim, address, self.cost))

    def detach(self, address: Address) -> None:
        host = self._hosts.pop(address, None)
        if host is not None:
            host.segment = None

    def host(self, address: Address) -> Host:
        return self._hosts[address]

    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    def addresses(self) -> List[Address]:
        return list(self._hosts)

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def partition(self, *groups: Iterable[Address]) -> None:
        """Split the segment: frames only reach hosts in the sender's group.

        Hosts not named in any group form an implicit final group.
        """
        sets = [set(g) for g in groups]
        named = set().union(*sets) if sets else set()
        rest = set(self._hosts) - named
        if rest:
            sets.append(rest)
        self._partition = sets

    def heal(self) -> None:
        """Remove any partition; the segment is whole again."""
        self._partition = None

    def partitioned(self) -> bool:
        return self._partition is not None

    def _reachable(self, src: Address, dst: Address) -> bool:
        if self._partition is None:
            return True
        for group in self._partition:
            if src in group:
                return dst in group
        return False  # unknown sender: isolated

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def transmit(self, frame: Frame) -> None:
        """Serialize ``frame`` through the medium, then deliver it.

        Called by :meth:`Host.send_frame` once the sender's CPU has emitted
        the packet.  The medium is a FIFO: if it is busy the frame waits,
        which is how unrelated traffic shows up as queueing delay.
        """
        if frame.frame_id == 0:
            frame.frame_id = next(self._frame_ids)
        tx_time = self.cost.wire_time(frame.size)
        start = max(self.sim.now, self._medium_busy_until)
        end = start + tx_time
        self._medium_busy_until = end
        self.frames_transmitted += 1
        self.bytes_transmitted += frame.size
        arrival = end + self.cost.propagation_delay
        self.sim.schedule(arrival - self.sim.now, self._deliver, frame,
                          name="ether.deliver")

    def _deliver(self, frame: Frame) -> None:
        rng = self.sim.rng(f"ether.{self.name}")
        if frame.dst == BROADCAST:
            targets = [h for a, h in self._hosts.items() if a != frame.src]
        else:
            host = self._hosts.get(frame.dst)
            targets = [host] if host is not None else []
        for host in targets:
            if not self._reachable(frame.src, host.address):
                continue
            if self.cost.loss_probability > 0 and \
                    rng.random() < self.cost.loss_probability:
                self.frames_dropped += 1
                continue
            delivered = frame
            if self.corrupt_rate > 0 and rng.random() < self.corrupt_rate:
                delivered = self._corrupt(frame, rng)
            copies = 1
            if self.cost.duplicate_probability > 0 and \
                    rng.random() < self.cost.duplicate_probability:
                copies = 2
            for _ in range(copies):
                if self.cost.reorder_jitter > 0:
                    delay = rng.random() * self.cost.reorder_jitter
                    self.sim.schedule(delay, host.deliver_frame, delivered,
                                      name="ether.jitter")
                else:
                    host.deliver_frame(delivered)

    def _corrupt(self, frame: Frame, rng) -> Frame:
        """One receiver's copy of ``frame`` with a bit flipped in its bytes.

        Only this receiver's copy is altered (the medium broadcast itself
        is fine — corruption happens at the NIC).  Frames whose payload
        does not carry bytes (e.g. injected background traffic) pass
        through unchanged.
        """
        inner = frame.payload
        data = getattr(inner, "payload", inner)
        if not isinstance(data, (bytes, bytearray)) or not data:
            return frame
        self.frames_corrupted += 1
        flipped = flip_random_bit(bytes(data), rng)
        if inner is data:
            return dataclasses.replace(frame, payload=flipped)
        return dataclasses.replace(
            frame, payload=dataclasses.replace(inner, payload=flipped))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EthernetSegment {self.name} hosts={len(self._hosts)}>"
