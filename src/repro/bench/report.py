"""Plain-text table rendering for benchmark output.

Each figure bench prints the series it regenerates (and appends it to
``benchmarks/results/``) in the same axes the paper plots.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

__all__ = ["Report", "format_table"]


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width table with a title bar."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, int) and abs(cell) >= 10000:
        return f"{cell:,d}"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


class Report:
    """Collects lines, prints them, and persists them per bench target."""

    def __init__(self, name: str, results_dir: Optional[str] = None):
        self.name = name
        self.results_dir = results_dir or os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))))),
            "benchmarks", "results")
        self.lines: List[str] = []

    def add(self, text: str) -> None:
        self.lines.extend(text.splitlines())

    def table(self, title: str, headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> None:
        self.add(format_table(title, headers, rows))
        self.add("")

    def note(self, text: str) -> None:
        self.add(text)

    def emit(self) -> str:
        """Print to stdout and write ``<results_dir>/<name>.txt``."""
        text = "\n".join(self.lines)
        print()
        print(text)
        try:
            os.makedirs(self.results_dir, exist_ok=True)
            path = os.path.join(self.results_dir, f"{self.name}.txt")
            with open(path, "w") as handle:
                handle.write(text + "\n")
        except OSError:
            pass   # read-only checkout: printing is enough
        return text
