"""ASCII figure rendering.

The paper's Appendix presents its results as plots; with no plotting
stack available offline, these helpers render the regenerated series as
terminal-friendly ASCII charts, embedded in each bench's report file so
the *shape* — the thing this reproduction targets — is visible at a
glance, not just tabulated.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["ascii_chart"]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 10000:
        return f"{value:,.0f}"
    if magnitude >= 100:
        return f"{value:.0f}"
    if magnitude >= 1:
        return f"{value:.1f}"
    return f"{value:.3f}"


def ascii_chart(points: Sequence[Tuple[float, float]],
                title: str = "", x_label: str = "", y_label: str = "",
                width: int = 60, height: int = 16,
                log_x: bool = False,
                errors: Optional[Sequence[float]] = None) -> str:
    """Render an x/y series as an ASCII scatter-with-error-bars chart.

    ``errors``, if given, draws a vertical bar of ``|`` around each point
    (the Appendix's dashed 99%-confidence lines).  ``log_x`` spaces the
    x axis logarithmically — the natural axis for message-size sweeps.
    """
    if not points:
        return "(no data)"
    xs = [float(x) for x, _ in points]
    ys = [float(y) for _, y in points]
    error_list = list(errors) if errors is not None else [0.0] * len(points)

    def x_pos(x: float) -> float:
        if log_x:
            if min(xs) <= 0:
                raise ValueError("log_x needs positive x values")
            lo, hi = math.log10(min(xs)), math.log10(max(xs))
            value = math.log10(x)
        else:
            lo, hi = min(xs), max(xs)
            value = x
        if hi == lo:
            return 0.0
        return (value - lo) / (hi - lo)

    y_lo = min(y - e for y, e in zip(ys, error_list))
    y_hi = max(y + e for y, e in zip(ys, error_list))
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    def y_pos(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, int(round(frac * (height - 1)))))

    grid = [[" "] * width for _ in range(height)]
    for (x, y), err in zip(points, error_list):
        column = min(width - 1, int(round(x_pos(x) * (width - 1))))
        if err > 0:
            for row in range(y_pos(y - err), y_pos(y + err) + 1):
                if grid[height - 1 - row][column] == " ":
                    grid[height - 1 - row][column] = "|"
        grid[height - 1 - y_pos(y)][column] = "*"

    gutter = max(len(_format_tick(v)) for v in (y_lo, y_hi)) + 1
    lines: List[str] = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(y_label)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            tick = _format_tick(y_hi)
        elif row_index == height - 1:
            tick = _format_tick(y_lo)
        else:
            tick = ""
        lines.append(tick.rjust(gutter) + " |" + "".join(row))
    lines.append(" " * gutter + " +" + "-" * width)
    left = _format_tick(min(xs))
    right = _format_tick(max(xs))
    middle = x_label + (" (log scale)" if log_x else "")
    spacing = max(1, width - len(left) - len(right) - len(middle))
    lines.append(" " * (gutter + 2) + left
                 + " " * (spacing // 2) + middle
                 + " " * (spacing - spacing // 2) + right)
    return "\n".join(lines)
