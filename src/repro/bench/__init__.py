"""Benchmark support: the Appendix experiment harness, payload sizing,
statistics, and report formatting."""

from .figures import ascii_chart
from .harness import AppendixExperiment, LatencyResult, ThroughputResult
from .payloads import MIN_PAYLOAD_SIZE, payload_of_size
from .report import Report, format_table
from .stats import Summary, mean, summarize, variance

__all__ = [
    "AppendixExperiment", "LatencyResult", "MIN_PAYLOAD_SIZE", "Report",
    "Summary", "ThroughputResult", "format_table", "mean",
    "ascii_chart", "payload_of_size", "summarize", "variance",
]
