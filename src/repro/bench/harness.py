"""The Appendix experiment harness.

Reproduces the measurement setup of the paper's Appendix: one publisher
and fourteen consumers spread over fifteen nodes on a lightly loaded
10 Mbit/s Ethernet, reliable (not guaranteed) delivery, constant message
size per run, batching ON for throughput runs and OFF for latency runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core import BusConfig, InformationBus
from ..sim import BackgroundTraffic, CostModel
from .payloads import payload_of_size
from .stats import Summary, summarize

__all__ = ["AppendixExperiment", "ThroughputResult", "LatencyResult"]

#: Safety cap on simulated seconds per run.
_MAX_SIM_SECONDS = 600.0


@dataclass
class ThroughputResult:
    """One point on Figures 6/7/8."""

    size: int
    messages: int
    consumers: int
    subjects: int
    per_consumer_received: List[int]
    per_consumer_msgs_per_sec: List[float]
    duration: float                    # publish start -> last delivery

    @property
    def msgs_per_sec(self) -> float:
        """Mean per-consumer delivery rate (what Figure 6 plots)."""
        return summarize(self.per_consumer_msgs_per_sec).mean

    @property
    def bytes_per_sec(self) -> float:
        """Mean per-consumer byte rate (what Figures 7/8 plot)."""
        return self.msgs_per_sec * self.size

    @property
    def cumulative_msgs_per_sec(self) -> float:
        """Across all consumers ("proportional to the number of
        subscribers")."""
        return sum(self.per_consumer_msgs_per_sec)

    @property
    def delivery_ratio(self) -> float:
        expected = self.messages * self.consumers
        return sum(self.per_consumer_received) / expected if expected else 1.0

    def rate_summary(self) -> Summary:
        return summarize(self.per_consumer_msgs_per_sec)


@dataclass
class LatencyResult:
    """One point on Figure 5."""

    size: int
    samples: int
    consumers: int
    latencies: List[float] = field(repr=False, default_factory=list)

    def summary(self) -> Summary:
        return summarize(self.latencies)

    @property
    def mean_ms(self) -> float:
        return self.summary().mean * 1000.0

    @property
    def ci99_ms(self) -> float:
        return self.summary().ci99 * 1000.0

    @property
    def variance_ms(self) -> float:
        """Sample variance in milliseconds² (the Appendix quotes variance
        ranges per data set)."""
        return self.summary().variance * 1e6


class AppendixExperiment:
    """Builds the paper's topology and runs one measurement per call.

    Every run constructs a fresh simulated bus, so runs are independent
    and deterministic for a given seed.
    """

    def __init__(self, seed: int = 1, nodes: int = 15, consumers: int = 14,
                 cost: Optional[CostModel] = None,
                 unicast_fanout: bool = False,
                 background_load: float = 0.0):
        if consumers > nodes - 1:
            raise ValueError("need a node for the publisher")
        self.seed = seed
        self.nodes = nodes
        self.consumers = consumers
        self.cost = cost
        self.unicast_fanout = unicast_fanout
        #: fraction of segment bandwidth consumed by unrelated traffic
        #: ("collisions from unrelated network activity", Appendix)
        self.background_load = background_load

    # ------------------------------------------------------------------
    def _config(self, batching: bool) -> BusConfig:
        config = BusConfig()
        config.batch.enabled = batching
        config.batch.batch_bytes = 1200     # stay inside one MTU
        config.reliable.retention = 65536   # retain the whole run
        # measurement runs carry no routers; skip advert chatter (with
        # 10,000 subjects the snapshots would be enormous)
        config.advertise_subscriptions = False
        return config

    def _cost(self) -> CostModel:
        if self.cost is not None:
            return self.cost
        cost = CostModel()   # the calibrated SPARC/Ethernet model
        if self.unicast_fanout:
            # ablation: pretend broadcast is unavailable; the publisher
            # must transmit one copy per consumer
            pass
        return cost

    def _build(self, batching: bool):
        bus = InformationBus(seed=self.seed, cost=self._cost(),
                             config=self._config(batching))
        bus.add_hosts(self.nodes)
        if self.background_load > 0:
            BackgroundTraffic(bus.sim, bus.lan, load=self.background_load)
        publisher = bus.client("node00", "publisher")
        return bus, publisher

    def _subjects(self, count: int) -> List[str]:
        if count == 1:
            return ["bench.data"]
        return [f"bench.s{i:05d}.data" for i in range(count)]

    # ------------------------------------------------------------------
    def run_throughput(self, size: int, messages: int,
                       subjects: int = 1,
                       batching: bool = True) -> ThroughputResult:
        """Publish ``messages`` of ``size`` bytes flat out.

        Batching defaults ON (the Figure 6-8 configuration); pass
        ``batching=False`` for the ablation.
        """
        bus, publisher = self._build(batching=batching)
        subject_list = self._subjects(subjects)
        counts: Dict[int, int] = {}
        last_seen: Dict[int, float] = {}

        for index in range(self.consumers):
            client = bus.client(f"node{index + 1:02d}", "consumer")

            def on_message(subj, obj, info, index=index):
                counts[index] = counts.get(index, 0) + 1
                last_seen[index] = info.deliver_time

            if self.unicast_fanout:
                # ablation: each consumer listens on a private subject;
                # the publisher must transmit one copy per consumer
                client.subscribe(f"bench.unicast.c{index:02d}", on_message)
            elif subjects == 1:
                client.subscribe(subject_list[0], on_message)
            else:
                # "the fourteen consumers subscribed to all ten thousand
                # subjects" — subscribe to each one explicitly
                for subject in subject_list:
                    client.subscribe(subject, on_message)

        payload = payload_of_size(size)
        start = bus.sim.now
        if self.unicast_fanout:
            for i in range(messages):
                for index in range(self.consumers):
                    publisher.publish_bytes(
                        f"bench.unicast.c{index:02d}", payload)
        else:
            for i in range(messages):
                subject = subject_list[i % len(subject_list)]
                publisher.publish_bytes(subject, payload)
        bus.daemon("node00").flush()

        # run until deliveries stop arriving (or the cap)
        previous = -1
        while bus.sim.now - start < _MAX_SIM_SECONDS:
            bus.run_for(1.0)
            delivered = sum(counts.values())
            if delivered == previous:
                break
            previous = delivered

        received = [counts.get(i, 0) for i in range(self.consumers)]
        rates = []
        for index in range(self.consumers):
            window = last_seen.get(index, start) - start
            rates.append(counts.get(index, 0) / window if window > 0
                         else 0.0)
        duration = max(last_seen.values(), default=start) - start
        return ThroughputResult(
            size=size, messages=messages, consumers=self.consumers,
            subjects=subjects, per_consumer_received=received,
            per_consumer_msgs_per_sec=rates, duration=duration)

    # ------------------------------------------------------------------
    def run_latency(self, size: int, samples: int = 60,
                    interval: float = 0.1) -> LatencyResult:
        """Paced publishing with batching OFF (the Figure 5 setup)."""
        bus, publisher = self._build(batching=False)
        latencies: List[float] = []
        for index in range(self.consumers):
            client = bus.client(f"node{index + 1:02d}", "consumer")
            client.subscribe("bench.data",
                             lambda s, o, info: latencies.append(
                                 info.latency))
        payload = payload_of_size(size)
        for i in range(samples):
            bus.sim.schedule(i * interval, publisher.publish_bytes,
                             "bench.data", payload)
        bus.run_for(samples * interval + 5.0)
        return LatencyResult(size=size, samples=samples,
                             consumers=self.consumers, latencies=latencies)
