"""Exact-size payload construction for the Appendix benchmarks.

"For any given test run, the message size was constant" — so the harness
needs payloads whose *marshalled* size is exactly the requested number of
bytes.  :func:`payload_of_size` builds a valid wire encoding (a bytes
value) padded to hit the target exactly, so consumers decode it like any
other message and the size accounting on the simulated Ethernet is
honest.
"""

from __future__ import annotations

from ..objects import encode

__all__ = ["payload_of_size", "MIN_PAYLOAD_SIZE"]

#: Smallest achievable encoding: magic(3) + tag(1) + varint(1) + 0 bytes.
MIN_PAYLOAD_SIZE = len(encode(b""))


def payload_of_size(size: int) -> bytes:
    """A valid marshalled payload of exactly ``size`` bytes."""
    if size < MIN_PAYLOAD_SIZE:
        raise ValueError(
            f"cannot build a payload smaller than {MIN_PAYLOAD_SIZE} bytes")
    # encoding overhead is magic(3)+tag(1)+varint(len), varint being 1-5
    # bytes; search the padding length that lands exactly on target
    padding = size - MIN_PAYLOAD_SIZE
    for candidate in (padding, padding - 1, padding - 2, padding - 3,
                      padding - 4):
        if candidate < 0:
            continue
        wire = encode(b"\x00" * candidate)
        if len(wire) == size:
            return wire
    # varint length boundaries (e.g. exactly 128 padding bytes) leave a
    # one-byte gap a single bytes value cannot hit; a singleton list
    # around the bytes absorbs it
    for candidate in range(max(0, padding - 8), padding + 1):
        wire = encode([b"\x00" * candidate])
        if len(wire) == size:
            return wire
    raise AssertionError(f"unreachable: no padding hits {size}")
