"""Statistics for the benchmark harness.

The Appendix reports means with 99%-confidence intervals (Figure 5's
dashed lines) and the variance of each data set; this module computes
those the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Summary", "summarize", "mean", "variance"]

# two-sided 99% critical values of Student's t for small samples; beyond
# the table we use the normal approximation (z = 2.576)
_T99 = {1: 63.657, 2: 9.925, 3: 5.841, 4: 4.604, 5: 4.032, 6: 3.707,
        7: 3.499, 8: 3.355, 9: 3.250, 10: 3.169, 12: 3.055, 14: 2.977,
        16: 2.921, 18: 2.878, 20: 2.845, 25: 2.787, 30: 2.750, 40: 2.704,
        60: 2.660, 100: 2.626}
_Z99 = 2.576


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Sample variance (n-1 denominator), 0.0 for fewer than two values."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (n - 1)


def _t99(df: int) -> float:
    if df <= 0:
        return _Z99
    best = _Z99
    for table_df in sorted(_T99):
        if table_df <= df:
            best = _T99[table_df]
        else:
            break
    # exact hits use the table; otherwise the next-smaller df's (slightly
    # conservative) value
    return _T99.get(df, best)


@dataclass
class Summary:
    """One measured series: what each point in an Appendix figure is."""

    n: int
    mean: float
    variance: float
    ci99: float          # half-width of the 99% confidence interval
    minimum: float
    maximum: float

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci99

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci99


def summarize(values: Sequence[float]) -> Summary:
    """Mean, sample variance, and 99% CI half-width of ``values``."""
    values = list(values)
    if not values:
        raise ValueError("cannot summarize an empty series")
    m = mean(values)
    var = variance(values)
    n = len(values)
    if n > 1 and var > 0:
        ci = _t99(n - 1) * math.sqrt(var / n)
    else:
        ci = 0.0
    return Summary(n=n, mean=m, variance=var, ci99=ci,
                   minimum=min(values), maximum=max(values))
