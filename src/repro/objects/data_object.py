"""Self-describing data objects (P2).

A :class:`DataObject` is an instance of a registered type: a bag of typed,
validated attributes plus the meta-object protocol — ``type_name``,
``attribute_names()``, ``attribute_type()``, ``operations()`` — that lets
generic tools (the print utility, the repository's schema mapper, the
application builder) operate on objects of types they were never compiled
against.

Every object carries an ``oid``, a process-unique identity used by the
repository as the primary key and by :class:`~repro.objects.properties`
Property objects to reference the object they annotate.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from .registry import TypeRegistry
from .types import (AttributeSpec, OperationSpec, TypeError_, parse_type_name)

__all__ = ["DataObject", "check_value", "ValidationError"]

_oid_counter = itertools.count(1)


def _new_oid(type_name: str) -> str:
    return f"{type_name}:{next(_oid_counter):08d}"


class ValidationError(TypeError_):
    """An attribute value does not conform to its declared type."""


def check_value(registry: TypeRegistry, type_name: str, value: Any) -> None:
    """Validate ``value`` against ``type_name``; raise :class:`ValidationError`.

    Implements the full attribute-type vocabulary: fundamentals, ``any``,
    object types (subtype instances accepted), ``list<T>`` and ``map<T>``.
    """
    outer, inner = parse_type_name(type_name)
    if outer == "any":
        return
    if outer == "int":
        # bool is an int subclass in Python; reject it for int attributes
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValidationError(f"expected int, got {value!r}")
        return
    if outer == "float":
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(f"expected float, got {value!r}")
        return
    if outer == "bool":
        if not isinstance(value, bool):
            raise ValidationError(f"expected bool, got {value!r}")
        return
    if outer == "string":
        if not isinstance(value, str):
            raise ValidationError(f"expected string, got {value!r}")
        return
    if outer == "bytes":
        if not isinstance(value, bytes):
            raise ValidationError(f"expected bytes, got {value!r}")
        return
    if outer == "list":
        if not isinstance(value, list):
            raise ValidationError(f"expected list, got {value!r}")
        for item in value:
            check_value(registry, inner, item)
        return
    if outer == "map":
        if not isinstance(value, dict):
            raise ValidationError(f"expected map, got {value!r}")
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValidationError(f"map keys must be strings, got {key!r}")
            check_value(registry, inner, item)
        return
    # an object type: value must be a DataObject of that type or a subtype
    if not isinstance(value, DataObject):
        raise ValidationError(
            f"expected object of type {outer!r}, got {value!r}")
    if not registry.is_subtype(value.type_name, outer):
        raise ValidationError(
            f"expected object of type {outer!r}, got {value.type_name!r}")


class DataObject:
    """An instance of a registered type, validated against its descriptor."""

    __slots__ = ("_registry", "_type_name", "_attrs", "oid")

    def __init__(self, registry: TypeRegistry, type_name: str,
                 attributes: Optional[Dict[str, Any]] = None,
                 oid: Optional[str] = None, **kwargs: Any):
        descriptor = registry.get(type_name)   # raises on unknown type
        self._registry = registry
        self._type_name = descriptor.name
        self._attrs: Dict[str, Any] = {}
        self.oid = oid or _new_oid(descriptor.name)
        values = dict(attributes or {})
        values.update(kwargs)
        specs = {a.name: a for a in registry.all_attributes(type_name)}
        for name, value in values.items():
            if name not in specs:
                raise ValidationError(
                    f"type {type_name!r} has no attribute {name!r}")
            check_value(registry, specs[name].type_name, value)
            self._attrs[name] = value
        missing = [a.name for a in specs.values()
                   if a.required and a.name not in self._attrs]
        if missing:
            raise ValidationError(
                f"type {type_name!r}: missing required attributes {missing}")

    # ------------------------------------------------------------------
    # meta-object protocol
    # ------------------------------------------------------------------
    @property
    def type_name(self) -> str:
        return self._type_name

    @property
    def registry(self) -> TypeRegistry:
        return self._registry

    def descriptor(self):
        return self._registry.get(self._type_name)

    def attribute_names(self) -> List[str]:
        """Declared attribute names (inherited first), set or not."""
        return [a.name for a in self._registry.all_attributes(self._type_name)]

    def attribute_type(self, name: str) -> str:
        spec = self._registry.attribute(self._type_name, name)
        if spec is None:
            raise ValidationError(
                f"type {self._type_name!r} has no attribute {name!r}")
        return spec.type_name

    def attribute_specs(self) -> List[AttributeSpec]:
        return self._registry.all_attributes(self._type_name)

    def operations(self) -> List[OperationSpec]:
        return self._registry.all_operations(self._type_name)

    def is_a(self, type_name: str) -> bool:
        """True if this object's type equals or descends from ``type_name``."""
        return self._registry.is_subtype(self._type_name, type_name)

    # ------------------------------------------------------------------
    # attribute access
    # ------------------------------------------------------------------
    def get(self, name: str, default: Any = None) -> Any:
        self.attribute_type(name)   # raise on undeclared name
        return self._attrs.get(name, default)

    def set(self, name: str, value: Any) -> None:
        type_name = self.attribute_type(name)
        check_value(self._registry, type_name, value)
        self._attrs[name] = value

    def has(self, name: str) -> bool:
        return name in self._attrs

    def as_dict(self) -> Dict[str, Any]:
        """Shallow copy of the set attributes (no recursion into children)."""
        return dict(self._attrs)

    def __eq__(self, other: Any) -> bool:
        """Structural equality: same type, same attribute values.

        The oid is identity, not state, so it does not participate — an
        object decoded off the wire equals the one that was published.
        """
        return (isinstance(other, DataObject)
                and other._type_name == self._type_name
                and other._attrs == self._attrs)

    def __hash__(self) -> int:
        return hash((self._type_name, self.oid))

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self._attrs.items()))
        return f"{self._type_name}({attrs})"
