"""Property objects: dynamically attachable name-value annotations.

The Keyword Generator example (Section 5.2) publishes a ``keywords``
property for each story it analyses, under the story's subject; the News
Monitor associates properties with the objects they reference via the
``ref`` oid and displays them alongside the object's own attributes —
without either side knowing the other exists (P4).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .builtin_types import PROPERTY_TYPE
from .data_object import DataObject
from .registry import TypeRegistry

__all__ = ["make_property", "is_property", "PropertyIndex"]


def make_property(registry: TypeRegistry, name: str, value: Any,
                  ref: Optional[str] = None) -> DataObject:
    """Create a ``property`` DataObject annotating the object with oid ``ref``."""
    attrs: Dict[str, Any] = {"name": name, "value": value}
    if ref is not None:
        attrs["ref"] = ref
    return DataObject(registry, PROPERTY_TYPE, attrs)


def is_property(obj: Any) -> bool:
    """True if ``obj`` is a property object (of the built-in type or a subtype)."""
    return isinstance(obj, DataObject) and obj.is_a(PROPERTY_TYPE)


class PropertyIndex:
    """Associates received property objects with the objects they reference.

    Consumers (e.g. the News Monitor) feed every incoming object through
    :meth:`add`; properties are indexed by their ``ref`` oid, other objects
    by their own oid, and :meth:`properties_of` answers the join.
    """

    def __init__(self) -> None:
        self._by_ref: Dict[str, List[DataObject]] = {}

    def add(self, obj: DataObject) -> bool:
        """Index ``obj`` if it is a property.  Returns True if it was one."""
        if not is_property(obj):
            return False
        ref = obj.get("ref")
        if ref is not None:
            self._by_ref.setdefault(ref, []).append(obj)
        return True

    def properties_of(self, oid: str) -> List[DataObject]:
        """All properties received so far that annotate object ``oid``."""
        return list(self._by_ref.get(oid, []))

    def property_value(self, oid: str, name: str, default: Any = None) -> Any:
        """The most recent value of property ``name`` on object ``oid``."""
        for prop in reversed(self._by_ref.get(oid, [])):
            if prop.get("name") == name:
                return prop.get("value")
        return default

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_ref.values())
