"""Standard types every Information Bus process starts with.

The paper's architecture assumes a small set of concepts all parties
understand: the root ``object`` type and the OMG-style ``property``
name/value pair (Section 5.2, footnote 5).  :func:`standard_registry`
builds a :class:`~repro.objects.registry.TypeRegistry` preloaded with
them; fundamentals (``int``, ``string``, ...) are built into the type
vocabulary itself rather than registered.
"""

from __future__ import annotations

from .registry import TypeRegistry
from .types import AttributeSpec, TypeDescriptor

__all__ = ["PROPERTY_TYPE", "standard_registry"]

#: Name of the built-in property type.
PROPERTY_TYPE = "property"


def standard_registry() -> TypeRegistry:
    """A fresh registry containing the root type and ``property``."""
    registry = TypeRegistry()
    registry.register(TypeDescriptor(
        PROPERTY_TYPE,
        attributes=[
            AttributeSpec("name", "string",
                          doc="the property's name, e.g. 'keywords'"),
            AttributeSpec("value", "any",
                          doc="the property's value"),
            AttributeSpec("ref", "string", required=False,
                          doc="oid of the object this property annotates"),
        ],
        doc="a dynamically definable name-value pair associated with an "
            "object (OMG Object Services nomenclature)",
    ))
    return registry
