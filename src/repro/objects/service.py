"""Service objects: large-grained objects invoked where they reside.

The paper's model distinguishes *service objects* — which "encapsulate
and control access to resources ... are not easily marshalled ... instead
of migrating to another node, they are invoked where they reside, using a
form of remote procedure call" (Section 3) — from data objects.

A :class:`ServiceObject` binds an interface (a :class:`~repro.objects.
types.TypeDescriptor` with operations) to Python callables and enforces
the declared signatures on every invocation, including the ones arriving
over RMI.  Being self-describing (P2), its interface can be browsed by
generic tools such as the application builder.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from .data_object import check_value
from .registry import TypeRegistry
from .types import OperationSpec, TypeError_

__all__ = ["ServiceObject", "ServiceError"]


class ServiceError(TypeError_):
    """Unknown operation, bad arguments, or unimplemented method."""


class ServiceObject:
    """An implementation (a *class*, in the paper's terms) of a service type."""

    def __init__(self, registry: TypeRegistry, interface_name: str):
        self.registry = registry
        self.interface = registry.get(interface_name)
        self._methods: Dict[str, Callable[..., Any]] = {}

    # ------------------------------------------------------------------
    # wiring implementations
    # ------------------------------------------------------------------
    def implement(self, op_name: str,
                  method: Callable[..., Any]) -> "ServiceObject":
        """Bind ``method`` as the implementation of operation ``op_name``."""
        if self.registry.operation(self.interface.name, op_name) is None:
            raise ServiceError(
                f"interface {self.interface.name!r} declares no operation "
                f"{op_name!r}")
        self._methods[op_name] = method
        return self

    def missing_operations(self) -> List[str]:
        """Declared operations with no bound implementation."""
        declared = {op.name
                    for op in self.registry.all_operations(self.interface.name)}
        return sorted(declared - set(self._methods))

    # ------------------------------------------------------------------
    # meta-object protocol
    # ------------------------------------------------------------------
    def describe(self) -> Dict:
        return self.interface.describe()

    def operations(self) -> List[OperationSpec]:
        return self.registry.all_operations(self.interface.name)

    def operation(self, name: str) -> OperationSpec:
        op = self.registry.operation(self.interface.name, name)
        if op is None:
            raise ServiceError(
                f"interface {self.interface.name!r} declares no operation "
                f"{name!r}")
        return op

    # ------------------------------------------------------------------
    # invocation
    # ------------------------------------------------------------------
    def invoke(self, op_name: str, args: Dict[str, Any]) -> Any:
        """Type-check ``args`` against the signature and call the method.

        The result is checked against the declared result type too, so a
        buggy implementation cannot leak malformed data onto the bus.
        """
        op = self.operation(op_name)
        method = self._methods.get(op_name)
        if method is None:
            raise ServiceError(
                f"operation {op_name!r} is declared but not implemented")
        declared = {p.name for p in op.params}
        unknown = set(args) - declared
        if unknown:
            raise ServiceError(
                f"{op.signature()}: unknown arguments {sorted(unknown)}")
        missing = declared - set(args)
        if missing:
            raise ServiceError(
                f"{op.signature()}: missing arguments {sorted(missing)}")
        for param in op.params:
            check_value(self.registry, param.type_name, args[param.name])
        result = method(**args)
        if op.result_type == "void":
            return None
        check_value(self.registry, op.result_type, result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ServiceObject {self.interface.name}>"
