"""Type descriptors: the vocabulary of the meta-object protocol (P2).

A *type* is "an abstraction whose behavior is defined by an interface that
is completely specified by a set of operations"; types form a supertype/
subtype hierarchy (paper, footnote 2).  Data types additionally declare
attributes.  Everything here is plain metadata — instances live in
:mod:`repro.objects.data_object`, implementations of service operations in
:mod:`repro.objects.service`.

Type names are strings.  Attribute/parameter types may be:

* a fundamental type: ``int``, ``float``, ``bool``, ``string``, ``bytes``,
  ``any``, ``void`` (operations only);
* a registered object type name (e.g. ``story``), meaning a nested
  :class:`~repro.objects.data_object.DataObject` of that type or a subtype;
* a parameterized container: ``list<T>`` or ``map<T>`` (string-keyed).
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FUNDAMENTAL_TYPES", "ROOT_TYPE", "AttributeSpec", "OperationSpec",
    "ParamSpec", "TypeDescriptor", "TypeError_", "parse_type_name",
]

#: The root of the object hierarchy; every object type descends from it.
ROOT_TYPE = "object"

#: Fundamental (non-object) types the generic tools must understand.
FUNDAMENTAL_TYPES = ("int", "float", "bool", "string", "bytes", "any")

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.\-]*$")


class TypeError_(Exception):
    """Raised for malformed descriptors or type-check failures.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


def parse_type_name(type_name: str) -> Tuple[str, Optional[str]]:
    """Split ``"list<story>"`` into ``("list", "story")``.

    Plain names return ``(name, None)``.  Raises :class:`TypeError_` on
    malformed parameterizations like ``"list<"`` or ``"map<a><b>"``.
    """
    if "<" not in type_name:
        if not _NAME_RE.match(type_name):
            raise TypeError_(f"malformed type name: {type_name!r}")
        return type_name, None
    match = re.match(r"^(list|map)<(.+)>$", type_name)
    if not match:
        raise TypeError_(f"malformed parameterized type: {type_name!r}")
    outer, inner = match.group(1), match.group(2)
    # validate the inner type recursively (supports list<list<int>>)
    parse_type_name(inner)
    return outer, inner


@dataclass(frozen=True)
class AttributeSpec:
    """One named, typed attribute of a data type."""

    name: str
    type_name: str
    required: bool = True
    doc: str = ""

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise TypeError_(f"malformed attribute name: {self.name!r}")
        parse_type_name(self.type_name)


@dataclass(frozen=True)
class ParamSpec:
    """One named, typed operation parameter."""

    name: str
    type_name: str

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise TypeError_(f"malformed parameter name: {self.name!r}")
        parse_type_name(self.type_name)


@dataclass(frozen=True)
class OperationSpec:
    """One operation in a type's interface.

    The signature — parameter names/types and result type — is part of the
    meta-object protocol: generic tools (the application builder, Section
    5.1) build interaction dialogs from it without compiled stubs.
    """

    name: str
    params: Tuple[ParamSpec, ...] = ()
    result_type: str = "void"
    doc: str = ""

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise TypeError_(f"malformed operation name: {self.name!r}")
        if self.result_type != "void":
            parse_type_name(self.result_type)
        object.__setattr__(self, "params", tuple(self.params))
        seen = set()
        for param in self.params:
            if param.name in seen:
                raise TypeError_(
                    f"operation {self.name!r}: duplicate parameter "
                    f"{param.name!r}")
            seen.add(param.name)

    def signature(self) -> str:
        """Human-readable signature, e.g. ``lookup(category: string) -> list<string>``."""
        params = ", ".join(f"{p.name}: {p.type_name}" for p in self.params)
        return f"{self.name}({params}) -> {self.result_type}"


class TypeDescriptor:
    """The self-description of one type: supertype, attributes, operations.

    Descriptors are immutable after construction; evolution happens by
    registering *new* types (P3), never by mutating existing ones —
    matching the paper's model where old software keeps working because
    descriptors it already holds never change underneath it.
    """

    def __init__(self, name: str, supertype: Optional[str] = ROOT_TYPE,
                 attributes: Optional[List[AttributeSpec]] = None,
                 operations: Optional[List[OperationSpec]] = None,
                 doc: str = ""):
        if not _NAME_RE.match(name):
            raise TypeError_(f"malformed type name: {name!r}")
        if name in FUNDAMENTAL_TYPES:
            raise TypeError_(f"cannot redefine fundamental type {name!r}")
        self.name = name
        self.supertype = supertype if name != ROOT_TYPE else None
        self.doc = doc
        self._attributes: Dict[str, AttributeSpec] = {}
        for attr in attributes or []:
            if attr.name in self._attributes:
                raise TypeError_(
                    f"type {name!r}: duplicate attribute {attr.name!r}")
            self._attributes[attr.name] = attr
        self._operations: Dict[str, OperationSpec] = {}
        for op in operations or []:
            if op.name in self._operations:
                raise TypeError_(
                    f"type {name!r}: duplicate operation {op.name!r}")
            self._operations[op.name] = op
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # meta-object protocol (own declarations only; see TypeRegistry for
    # the inherited view)
    # ------------------------------------------------------------------
    def own_attributes(self) -> List[AttributeSpec]:
        return list(self._attributes.values())

    def own_attribute(self, name: str) -> Optional[AttributeSpec]:
        return self._attributes.get(name)

    def own_operations(self) -> List[OperationSpec]:
        return list(self._operations.values())

    def own_operation(self, name: str) -> Optional[OperationSpec]:
        return self._operations.get(name)

    def describe(self) -> Dict:
        """Plain-data self-description (what travels in inline metadata)."""
        return {
            "name": self.name,
            "supertype": self.supertype,
            "doc": self.doc,
            "attributes": [
                {"name": a.name, "type": a.type_name,
                 "required": a.required, "doc": a.doc}
                for a in self._attributes.values()
            ],
            "operations": [
                {"name": o.name, "result": o.result_type, "doc": o.doc,
                 "params": [{"name": p.name, "type": p.type_name}
                            for p in o.params]}
                for o in self._operations.values()
            ],
        }

    @classmethod
    def from_description(cls, desc: Dict) -> "TypeDescriptor":
        """Inverse of :meth:`describe` — rebuild a descriptor from the wire."""
        return cls(
            name=desc["name"],
            supertype=desc.get("supertype"),
            attributes=[
                AttributeSpec(a["name"], a["type"],
                              required=a.get("required", True),
                              doc=a.get("doc", ""))
                for a in desc.get("attributes", [])
            ],
            operations=[
                OperationSpec(
                    o["name"],
                    params=tuple(ParamSpec(p["name"], p["type"])
                                 for p in o.get("params", [])),
                    result_type=o.get("result", "void"),
                    doc=o.get("doc", ""))
                for o in desc.get("operations", [])
            ],
            doc=desc.get("doc", ""),
        )

    def fingerprint(self) -> str:
        """Stable content hash of :meth:`describe`.

        Two descriptors share a fingerprint iff they declare the same
        interface; the hash is over a canonical (sorted-key) JSON
        rendering, so attribute/operation *declaration order* matters —
        it is part of the wire format — while dict iteration quirks do
        not.  The session type plane (:mod:`repro.core.typeplane`) keys
        its dense wire ids on this value, which is how a TDL
        ``defclass`` that changes a type's shape mid-session propagates:
        the new shape hashes differently, gets a fresh id, and is
        re-defined in-band on next use.  Memoized — descriptors are
        immutable after construction.
        """
        if self._fingerprint is None:
            canonical = json.dumps(
                self.describe(), sort_keys=True, separators=(",", ":"))
            self._fingerprint = hashlib.sha256(
                canonical.encode("utf-8")).hexdigest()
        return self._fingerprint

    def same_shape(self, other: "TypeDescriptor") -> bool:
        """True if ``other`` declares an identical interface (idempotent
        re-registration check for dynamically distributed types)."""
        return self.fingerprint() == other.fingerprint()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<TypeDescriptor {self.name} : {self.supertype} "
                f"attrs={len(self._attributes)} ops={len(self._operations)}>")
