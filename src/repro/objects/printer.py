"""The generic print utility from Section 3 of the paper.

    "Our implementation of this utility can accept any object of any type
    and produce a text description of the object.  It examines the object
    to determine its type, and then generates appropriate output.  In the
    case of a complex object, the utility will recursively descend into
    the components of the object.  The print utility only needs to
    understand the fundamental types."

:func:`render` does exactly that: it never special-cases any application
type — everything is driven by the meta-object protocol.
"""

from __future__ import annotations

from typing import Any, List

from .data_object import DataObject

__all__ = ["render", "render_lines"]

_INDENT = "  "


def render(value: Any, max_depth: int = 12) -> str:
    """A text description of any value, driven purely by introspection."""
    return "\n".join(render_lines(value, max_depth=max_depth))


def render_lines(value: Any, depth: int = 0, max_depth: int = 12,
                 label: str = "") -> List[str]:
    """Recursive worker for :func:`render`; one output line per list item."""
    prefix = _INDENT * depth + (f"{label}: " if label else "")
    if depth > max_depth:
        return [prefix + "..."]
    if isinstance(value, DataObject):
        lines = [prefix + f"<{value.type_name}> (oid {value.oid})"]
        for name in value.attribute_names():
            if not value.has(name):
                lines.append(_INDENT * (depth + 1)
                             + f"{name}: <unset {value.attribute_type(name)}>")
                continue
            lines.extend(render_lines(value.get(name), depth + 1,
                                      max_depth, label=name))
        return lines
    if isinstance(value, list):
        if not value:
            return [prefix + "[]"]
        lines = [prefix + f"list of {len(value)}"]
        for index, item in enumerate(value):
            lines.extend(render_lines(item, depth + 1, max_depth,
                                      label=f"[{index}]"))
        return lines
    if isinstance(value, dict):
        if not value:
            return [prefix + "{}"]
        lines = [prefix + f"map of {len(value)}"]
        for key in sorted(value):
            lines.extend(render_lines(value[key], depth + 1, max_depth,
                                      label=key))
        return lines
    if isinstance(value, str):
        return [prefix + f"\"{value}\""]
    if isinstance(value, bytes):
        return [prefix + f"<{len(value)} bytes>"]
    if value is None:
        return [prefix + "nil"]
    return [prefix + repr(value)]
