"""The type registry: dynamic classing support (P3).

A :class:`TypeRegistry` holds every :class:`~repro.objects.types.
TypeDescriptor` known to one process.  New types may be registered at any
time — by TDL ``defclass`` forms, by the marshalling layer when a message
arrives carrying inline metadata (or references session type-plane
typedefs, see :mod:`~repro.core.typeplane`) for a type this process has
never seen, or directly through the API.  Listeners fire on each
registration, which is how the Object Repository extends its database
schema on the fly (Section 5.2).

Idempotent re-registration is decided by descriptor *fingerprint*
(:meth:`~repro.objects.types.TypeDescriptor.same_shape`): two processes
that independently learn the same type off the wire converge, while a
conflicting shape for an already-registered name raises — whether the
conflict arrives inline or through the type plane.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from .types import (FUNDAMENTAL_TYPES, ROOT_TYPE, TypeDescriptor, TypeError_,
                    parse_type_name)

__all__ = ["TypeRegistry"]


class TypeRegistry:
    """All types known to one process, with hierarchy-aware queries."""

    def __init__(self) -> None:
        self._types: Dict[str, TypeDescriptor] = {}
        self._subtypes: Dict[str, List[str]] = {}
        self._listeners: List[Callable[[TypeDescriptor], None]] = []
        self.register(TypeDescriptor(ROOT_TYPE, supertype=None,
                                     doc="root of the object hierarchy"))

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, descriptor: TypeDescriptor) -> TypeDescriptor:
        """Register a new type.

        Re-registering a type with an *identical* interface is a no-op
        (two processes can independently learn the same type off the
        wire); re-registering with a different interface raises.
        """
        existing = self._types.get(descriptor.name)
        if existing is not None:
            if existing.same_shape(descriptor):
                return existing
            raise TypeError_(
                f"type {descriptor.name!r} already registered with a "
                f"different interface")
        if descriptor.supertype is not None:
            if descriptor.supertype not in self._types:
                raise TypeError_(
                    f"type {descriptor.name!r}: unknown supertype "
                    f"{descriptor.supertype!r}")
        for attr in descriptor.own_attributes():
            self._check_type_ref(descriptor.name, attr.type_name)
        for op in descriptor.own_operations():
            if op.result_type != "void":
                self._check_type_ref(descriptor.name, op.result_type)
            for param in op.params:
                self._check_type_ref(descriptor.name, param.type_name)
        self._check_attribute_conflicts(descriptor)
        self._types[descriptor.name] = descriptor
        if descriptor.supertype is not None:
            self._subtypes.setdefault(descriptor.supertype, []).append(
                descriptor.name)
        for listener in list(self._listeners):
            listener(descriptor)
        return descriptor

    def _check_type_ref(self, owner: str, type_name: str) -> None:
        outer, inner = parse_type_name(type_name)
        if inner is not None:
            self._check_type_ref(owner, inner)
            return
        if outer in FUNDAMENTAL_TYPES or outer == owner:
            return
        if outer not in self._types:
            raise TypeError_(
                f"type {owner!r} references unknown type {outer!r}")

    def _check_attribute_conflicts(self, descriptor: TypeDescriptor) -> None:
        """A subtype may not redeclare an inherited attribute name."""
        if descriptor.supertype is None:
            return
        inherited = {a.name for a in self.all_attributes(descriptor.supertype)}
        for attr in descriptor.own_attributes():
            if attr.name in inherited:
                raise TypeError_(
                    f"type {descriptor.name!r} redeclares inherited "
                    f"attribute {attr.name!r}")

    def on_register(self, listener: Callable[[TypeDescriptor], None]) -> None:
        """Call ``listener(descriptor)`` for every future registration."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> TypeDescriptor:
        try:
            return self._types[name]
        except KeyError:
            raise TypeError_(f"unknown type: {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._types

    def names(self) -> List[str]:
        return sorted(self._types)

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[TypeDescriptor]:
        return iter(self._types.values())

    # ------------------------------------------------------------------
    # hierarchy queries
    # ------------------------------------------------------------------
    def supertype_chain(self, name: str) -> List[str]:
        """``name`` and its ancestors, most-derived first, ending at root."""
        chain = []
        current: Optional[str] = name
        while current is not None:
            descriptor = self.get(current)
            chain.append(current)
            current = descriptor.supertype
        return chain

    def is_subtype(self, name: str, ancestor: str) -> bool:
        """True if ``name`` equals or descends from ``ancestor``."""
        return ancestor in self.supertype_chain(name)

    def subtypes_of(self, name: str, transitive: bool = True) -> List[str]:
        """Direct (or all transitive) subtypes of ``name``, sorted."""
        self.get(name)   # raise on unknown
        direct = self._subtypes.get(name, [])
        if not transitive:
            return sorted(direct)
        out = []
        stack = list(direct)
        while stack:
            child = stack.pop()
            out.append(child)
            stack.extend(self._subtypes.get(child, []))
        return sorted(out)

    # ------------------------------------------------------------------
    # inherited views (the MOP answers merged declarations)
    # ------------------------------------------------------------------
    def all_attributes(self, name: str) -> List:
        """Every attribute of ``name`` including inherited ones.

        Supertype attributes come first, matching the paper's repository
        mapping where supertype columns are shared across subtypes.
        """
        out = []
        for type_name in reversed(self.supertype_chain(name)):
            out.extend(self.get(type_name).own_attributes())
        return out

    def attribute(self, name: str, attr_name: str):
        for type_name in self.supertype_chain(name):
            attr = self.get(type_name).own_attribute(attr_name)
            if attr is not None:
                return attr
        return None

    def all_operations(self, name: str) -> List:
        """Every operation of ``name``; subtype declarations override."""
        merged: Dict[str, object] = {}
        for type_name in reversed(self.supertype_chain(name)):
            for op in self.get(type_name).own_operations():
                merged[op.name] = op
        return list(merged.values())

    def operation(self, name: str, op_name: str):
        for type_name in self.supertype_chain(name):
            op = self.get(type_name).own_operation(op_name)
            if op is not None:
                return op
        return None
