"""Metadata-driven marshalling: objects to bytes and back.

Data objects "can be easily copied, marshalled, and transmitted" (Section
3); crucially, the wire format can carry the *type metadata itself* inline
(``inline_types=True``), so a receiver that has never seen a type can
decode the object, register the type dynamically, and operate on it through
the meta-object protocol — the mechanism behind the paper's dynamic system
evolution scenarios (Section 5.2).

The format is a compact tagged binary encoding:

=====  =============================================================
tag    meaning
=====  =============================================================
``N``  None
``T``  / ``F``  booleans
``i``  64-bit signed integer
``d``  64-bit float
``s``  UTF-8 string (varint length prefix)
``b``  raw bytes (varint length prefix)
``l``  list (varint count, then items)
``m``  map (varint count, then string-key/value pairs)
``o``  object: type name, oid, set-attribute count, name/value pairs
``O``  object by session type id: varint id into the publisher's
       :class:`~repro.core.typeplane.TypeTable`, oid, set-attribute
       count, name/value pairs (:func:`encode_typed`)
``M``  metadata block: varint count of inline type descriptions,
       each encoded with the generic value encoder, then the value
=====  =============================================================

``M``-block payloads (``inline_types=True``) are *self-contained*:
anyone holding the bytes can decode them.  ``O``-tag payloads
(:func:`encode_typed`) instead reference the publishing session's type
table and need a ``type_resolver`` at decode time — the definitions
ride once per session on the wire frames themselves (see
``docs/PROTOCOLS.md``, "The session type plane").
"""

from __future__ import annotations

import struct
from io import BytesIO
from typing import Any, Dict, List, Optional, Set, Tuple

from .data_object import DataObject
from .registry import TypeRegistry
from .types import FUNDAMENTAL_TYPES, TypeDescriptor, TypeError_, parse_type_name

__all__ = ["encode", "encode_typed", "decode", "encoded_size",
           "MarshalError", "UnknownTypeError", "type_closure"]

_MAGIC = b"IB\x01"


class MarshalError(TypeError_):
    """Malformed wire data or unencodable value."""


class UnknownTypeError(MarshalError):
    """Decoded an object of a type this process does not know.

    Publish with ``inline_types=True`` (the default for bus messages) to
    let receivers learn types dynamically.
    """


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------

def _write_varint(out: BytesIO, value: int) -> None:
    if value < 0:
        raise MarshalError(f"varint must be non-negative: {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes([byte | 0x80]))
        else:
            out.write(bytes([byte]))
            return


def _read_varint(data: memoryview, pos: int):
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise MarshalError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise MarshalError("varint too long")


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------

def _write_str(out: BytesIO, text: str) -> None:
    raw = text.encode("utf-8")
    _write_varint(out, len(raw))
    out.write(raw)


def _encode_value(out, value: Any,
                  type_ids: Optional[Dict[str, int]] = None) -> None:
    if value is None:
        out.write(b"N")
    elif value is True:
        out.write(b"T")
    elif value is False:
        out.write(b"F")
    elif isinstance(value, int):
        out.write(b"i")
        out.write(struct.pack(">q", value))
    elif isinstance(value, float):
        out.write(b"d")
        out.write(struct.pack(">d", value))
    elif isinstance(value, str):
        out.write(b"s")
        _write_str(out, value)
    elif isinstance(value, bytes):
        out.write(b"b")
        _write_varint(out, len(value))
        out.write(value)
    elif isinstance(value, list):
        out.write(b"l")
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item, type_ids)
    elif isinstance(value, dict):
        out.write(b"m")
        _write_varint(out, len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise MarshalError(f"map keys must be strings: {key!r}")
            _write_str(out, key)
            _encode_value(out, item, type_ids)
    elif isinstance(value, DataObject):
        if type_ids is not None:
            out.write(b"O")
            _write_varint(out, type_ids[value.type_name])
        else:
            out.write(b"o")
            _write_str(out, value.type_name)
        _write_str(out, value.oid)
        attrs = value.as_dict()
        _write_varint(out, len(attrs))
        for name, item in attrs.items():
            _write_str(out, name)
            _encode_value(out, item, type_ids)
    else:
        raise MarshalError(f"cannot marshal value of type {type(value)!r}")


def type_closure(registry: TypeRegistry, type_names: Set[str]) -> List[str]:
    """Every non-fundamental type reachable from ``type_names``.

    Reachability covers supertype chains plus every type referenced by an
    attribute or operation signature — the full set a receiver needs to
    register the types without dangling references.  Returned in
    dependency order (supertypes before subtypes).
    """
    needed: Set[str] = set()
    stack = [n for n in type_names if n not in FUNDAMENTAL_TYPES]
    while stack:
        name = stack.pop()
        if name in needed or name in FUNDAMENTAL_TYPES:
            continue
        needed.add(name)
        descriptor = registry.get(name)
        refs: List[str] = []
        if descriptor.supertype is not None:
            refs.append(descriptor.supertype)
        for attr in descriptor.own_attributes():
            refs.append(attr.type_name)
        for op in descriptor.own_operations():
            refs.append(op.result_type)
            refs.extend(p.type_name for p in op.params)
        for ref in refs:
            outer, inner = parse_type_name(ref)
            for piece in filter(None, (outer if outer not in ("list", "map", "void") else None, inner)):
                # unwrap nested parameterizations like list<list<story>>
                while True:
                    o, i = parse_type_name(piece)
                    if i is None:
                        if o not in FUNDAMENTAL_TYPES and o != "void":
                            stack.append(o)
                        break
                    piece = i
    # dependency order: every type a descriptor references (supertype,
    # attribute types, operation signature types) precedes it
    ordered: List[str] = []
    seen: Set[str] = set()

    def base_names(type_name: str) -> List[str]:
        outer, inner = parse_type_name(type_name)
        if inner is not None:
            return base_names(inner)
        if outer in FUNDAMENTAL_TYPES or outer == "void":
            return []
        return [outer]

    def visit(name: str) -> None:
        if name in seen or name not in needed:
            return
        seen.add(name)
        descriptor = registry.get(name)
        deps: List[str] = []
        if descriptor.supertype is not None:
            deps.append(descriptor.supertype)
        for attr in descriptor.own_attributes():
            deps.extend(base_names(attr.type_name))
        for op in descriptor.own_operations():
            if op.result_type != "void":
                deps.extend(base_names(op.result_type))
            for param in op.params:
                deps.extend(base_names(param.type_name))
        for dep in deps:
            if dep != name:   # self-referential types are fine
                visit(dep)
        ordered.append(name)

    for name in sorted(needed):
        visit(name)
    return ordered


def _collect_instance_types(value: Any, acc: Set[str]) -> None:
    if isinstance(value, DataObject):
        acc.add(value.type_name)
        for item in value.as_dict().values():
            _collect_instance_types(item, acc)
    elif isinstance(value, list):
        for item in value:
            _collect_instance_types(item, acc)
    elif isinstance(value, dict):
        for item in value.values():
            _collect_instance_types(item, acc)


def _encode_payload(out, value: Any, registry: TypeRegistry,
                    inline_types: bool) -> None:
    out.write(_MAGIC)
    if inline_types:
        if registry is None:
            raise MarshalError("inline_types requires a registry")
        used: Set[str] = set()
        _collect_instance_types(value, used)
        closure = type_closure(registry, used)
        out.write(b"M")
        _write_varint(out, len(closure))
        for name in closure:
            _encode_value(out, registry.get(name).describe())
    _encode_value(out, value)


def encode(value: Any, registry: TypeRegistry = None,
           inline_types: bool = False) -> bytes:
    """Marshal ``value`` to bytes.

    With ``inline_types=True`` (requires ``registry``), full descriptions
    of every type used by the value are prepended so any receiver can
    decode it (P2: objects are self-describing on the wire).
    """
    out = BytesIO()
    _encode_payload(out, value, registry, inline_types)
    return out.getvalue()


def encode_typed(value: Any, registry: TypeRegistry,
                 type_table) -> Tuple[bytes, Tuple[int, ...]]:
    """Marshal ``value`` against a session :class:`TypeTable`.

    DataObjects are written with the ``O`` tag — a dense varint id
    assigned by ``type_table`` (:class:`repro.core.typeplane.TypeTable`)
    in place of the type-name string — and *no* ``M`` metadata block.
    Returns ``(payload, type_refs)`` where ``type_refs`` is the id of
    every type in the dependency closure of the value's instance types;
    the caller stamps the refs onto the envelope so the wire layer can
    ride the matching typedef definitions in-band (first use on DATA,
    all of them on RETRANS).

    A value with no DataObjects encodes byte-identically to
    ``encode(value)`` and returns empty refs — untyped traffic pays
    nothing for the type plane.
    """
    if registry is None:
        raise MarshalError("encode_typed requires a registry")
    used: Set[str] = set()
    _collect_instance_types(value, used)
    type_ids: Optional[Dict[str, int]] = None
    refs: Tuple[int, ...] = ()
    if used:
        closure = type_closure(registry, used)
        type_ids = {}
        for name in closure:
            type_ids[name] = type_table.intern(registry.get(name))
        refs = tuple(type_ids[name] for name in closure)
    out = BytesIO()
    out.write(_MAGIC)
    _encode_value(out, value, type_ids)
    return out.getvalue(), refs


class _CountingSink:
    """Write-counting stand-in for BytesIO: measures without materializing."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def write(self, data: bytes) -> None:
        self.count += len(data)


def encoded_size(value: Any, registry: TypeRegistry = None,
                 inline_types: bool = False) -> int:
    """Size in bytes of the encoding (what the bus charges to the wire).

    Runs the encoder against a counting sink, so the answer costs the
    traversal but never builds the byte string.
    """
    sink = _CountingSink()
    _encode_payload(sink, value, registry, inline_types)
    return sink.count


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------

def _read_str(data: memoryview, pos: int):
    length, pos = _read_varint(data, pos)
    if pos + length > len(data):
        raise MarshalError("truncated string")
    return bytes(data[pos:pos + length]).decode("utf-8"), pos + length


def _description_deps(desc: Dict) -> List[str]:
    """Non-fundamental type names a description references directly."""

    def base_names(type_name: str) -> List[str]:
        outer, inner = parse_type_name(type_name)
        if inner is not None:
            return base_names(inner)
        if outer in FUNDAMENTAL_TYPES or outer == "void":
            return []
        return [outer]

    deps: List[str] = []
    if desc.get("supertype") is not None:
        deps.append(desc["supertype"])
    for attr in desc.get("attributes", []):
        deps.extend(base_names(attr["type"]))
    for op in desc.get("operations", []):
        if op.get("result", "void") != "void":
            deps.extend(base_names(op["result"]))
        for param in op.get("params", []):
            deps.extend(base_names(param["type"]))
    return deps


def _register_learned(registry: TypeRegistry, desc: Dict, resolver,
                      pending: Set[str]) -> None:
    """Register a type learned from the session type plane, dependencies
    first (the typedef region carries descriptions individually, not in
    closure order, so the receiver re-derives the order here)."""
    name = desc["name"]
    if name in pending:
        return   # self/mutually-referential types; registry validates
    pending.add(name)
    for dep in _description_deps(desc):
        if dep == name or registry.has(dep):
            continue
        dep_desc = resolver.named(dep)
        if dep_desc is None:
            raise UnknownTypeError(
                f"type {name!r} references {dep!r}, which this session's "
                f"type table has not defined")
        _register_learned(registry, dep_desc, resolver, pending)
    registry.register(TypeDescriptor.from_description(desc))


def _resolve_typed(registry: TypeRegistry, tid: int, resolver) -> str:
    """Map a session type id to a registered type name, learning it (and
    its dependencies) from the resolver on first sight.  A conflicting
    shape for an already-registered name raises the registry's
    ``TypeError_`` — the same failure inline metadata produces."""
    if resolver is None:
        raise UnknownTypeError(
            f"typed payload references session type id {tid} but no "
            f"type_resolver was supplied")
    desc = resolver.description(tid)
    if desc is None:
        raise UnknownTypeError(
            f"session type id {tid} is not defined in this session's "
            f"type table")
    name = desc["name"]
    if registry is not None and registry.has(name):
        # idempotent when shapes match; conflicting shape raises
        registry.register(TypeDescriptor.from_description(desc))
    elif registry is not None:
        _register_learned(registry, desc, resolver, set())
    else:
        raise UnknownTypeError(
            f"received object of unknown type {name!r}; "
            f"publish with inline_types=True")
    return name


def _decode_value(data: memoryview, pos: int, registry: TypeRegistry,
                  resolver=None):
    if pos >= len(data):
        raise MarshalError("truncated value")
    tag = chr(data[pos])
    pos += 1
    if tag == "N":
        return None, pos
    if tag == "T":
        return True, pos
    if tag == "F":
        return False, pos
    if tag == "i":
        if pos + 8 > len(data):
            raise MarshalError("truncated int")
        return struct.unpack(">q", data[pos:pos + 8])[0], pos + 8
    if tag == "d":
        if pos + 8 > len(data):
            raise MarshalError("truncated float")
        return struct.unpack(">d", data[pos:pos + 8])[0], pos + 8
    if tag == "s":
        return _read_str(data, pos)
    if tag == "b":
        length, pos = _read_varint(data, pos)
        if pos + length > len(data):
            raise MarshalError("truncated bytes")
        return bytes(data[pos:pos + length]), pos + length
    if tag == "l":
        count, pos = _read_varint(data, pos)
        items = []
        for _ in range(count):
            item, pos = _decode_value(data, pos, registry, resolver)
            items.append(item)
        return items, pos
    if tag == "m":
        count, pos = _read_varint(data, pos)
        mapping = {}
        for _ in range(count):
            key, pos = _read_str(data, pos)
            item, pos = _decode_value(data, pos, registry, resolver)
            mapping[key] = item
        return mapping, pos
    if tag == "o" or tag == "O":
        if tag == "O":
            tid, pos = _read_varint(data, pos)
            type_name = _resolve_typed(registry, tid, resolver)
        else:
            type_name, pos = _read_str(data, pos)
            # fail fast before decoding attributes: a bad frame should
            # not pay for (or allocate) a value tree it cannot use
            if registry is None or not registry.has(type_name):
                raise UnknownTypeError(
                    f"received object of unknown type {type_name!r}; "
                    f"publish with inline_types=True")
        oid, pos = _read_str(data, pos)
        count, pos = _read_varint(data, pos)
        attrs = {}
        for _ in range(count):
            name, pos = _read_str(data, pos)
            item, pos = _decode_value(data, pos, registry, resolver)
            attrs[name] = item
        return DataObject(registry, type_name, attrs, oid=oid), pos
    raise MarshalError(f"unknown tag {tag!r} at offset {pos - 1}")


def decode(data: bytes, registry: TypeRegistry, type_resolver=None) -> Any:
    """Unmarshal bytes produced by :func:`encode` or :func:`encode_typed`.

    Inline type metadata, if present, is registered into ``registry``
    before the value is decoded (idempotently — identical re-registration
    is a no-op).  ``O``-tagged objects resolve their session type ids
    through ``type_resolver`` (``description(tid)`` / ``named(name)``,
    see :mod:`repro.core.typeplane`), registering learned types the same
    way; without a resolver they raise :class:`UnknownTypeError`.
    """
    view = memoryview(data)
    if bytes(view[:3]) != _MAGIC:
        raise MarshalError("bad magic: not an Information Bus encoding")
    pos = 3
    if pos < len(view) and chr(view[pos]) == "M":
        pos += 1
        count, pos = _read_varint(view, pos)
        for _ in range(count):
            desc, pos = _decode_value(view, pos, registry)
            registry.register(TypeDescriptor.from_description(desc))
    value, pos = _decode_value(view, pos, registry, type_resolver)
    if pos != len(view):
        raise MarshalError(f"{len(view) - pos} trailing bytes after value")
    return value
