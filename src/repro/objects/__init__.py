"""Self-describing object model (design principle P2).

Types are metadata (:class:`TypeDescriptor`), organized in a supertype/
subtype hierarchy inside a :class:`TypeRegistry` that supports dynamic
registration (P3).  :class:`DataObject` instances validate against their
descriptors and answer the meta-object protocol; :mod:`~repro.objects.
marshal` moves them (and, optionally, their type metadata) across the
wire; :class:`ServiceObject` does the same for invocable interfaces.
"""

from .types import (AttributeSpec, FUNDAMENTAL_TYPES, OperationSpec,
                    ParamSpec, ROOT_TYPE, TypeDescriptor, TypeError_,
                    parse_type_name)
from .registry import TypeRegistry
from .data_object import DataObject, ValidationError, check_value
from .builtin_types import PROPERTY_TYPE, standard_registry
from .properties import PropertyIndex, is_property, make_property
from .marshal import (MarshalError, UnknownTypeError, decode, encode,
                      encode_typed, encoded_size, type_closure)
from .printer import render, render_lines
from .service import ServiceError, ServiceObject

__all__ = [
    "AttributeSpec", "DataObject", "FUNDAMENTAL_TYPES", "MarshalError",
    "OperationSpec", "PROPERTY_TYPE", "ParamSpec", "PropertyIndex",
    "ROOT_TYPE", "ServiceError", "ServiceObject", "TypeDescriptor",
    "TypeError_", "TypeRegistry", "UnknownTypeError", "ValidationError",
    "check_value", "decode", "encode", "encode_typed", "encoded_size",
    "is_property",
    "make_property", "parse_type_name", "render", "render_lines",
    "standard_registry", "type_closure",
]
