"""TDL: the dynamic classing language (design principle P3).

A small interpreted CLOS subset.  ``defclass`` registers real bus types in
a :class:`~repro.objects.registry.TypeRegistry`; ``make-instance`` builds
:class:`~repro.objects.data_object.DataObject` values; generic functions
dispatch on the bus type hierarchy.
"""

from .errors import (TdlArityError, TdlDispatchError, TdlError, TdlNameError,
                     TdlSyntaxError)
from .reader import Keyword, Symbol, read, read_all, to_source
from .evaluator import (Environment, GenericFunction, Interpreter, Method,
                        TdlFunction)

__all__ = [
    "Environment", "GenericFunction", "Interpreter", "Keyword", "Method",
    "Symbol", "TdlArityError", "TdlDispatchError", "TdlError", "TdlFunction",
    "TdlNameError", "TdlSyntaxError", "read", "read_all", "to_source",
]
