"""The TDL evaluator: a CLOS-subset interpreter over the bus object model.

The paper (Section 3): "To support dynamic classing, we have implemented
TDL, a small, interpreted language based on CLOS.  We have chosen a subset
of CLOS that supports a full object model, but that could be supported in
a small, efficient run-time environment."

The crucial integration decision mirrors the paper's: TDL classes *are*
Information Bus types.  ``defclass`` registers a
:class:`~repro.objects.types.TypeDescriptor` in the interpreter's
:class:`~repro.objects.registry.TypeRegistry`, and ``make-instance``
produces ordinary :class:`~repro.objects.data_object.DataObject` values —
so a type defined interactively in TDL can immediately be published,
marshalled with inline metadata, stored by the Object Repository, and
rendered by the generic print utility (P3 feeding P2).

Supported special forms: ``quote if progn define setq let let* lambda
defun defclass defmethod defgeneric and or cond when unless while dolist``.
Generic functions dispatch CLOS-style on the classes of all specialized
arguments, most-specific method first, with ``call-next-method``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..objects import (AttributeSpec, DataObject, TypeDescriptor,
                       TypeRegistry, standard_registry)
from .errors import (TdlArityError, TdlDispatchError, TdlError, TdlNameError,
                     TdlSyntaxError)
from .reader import Keyword, Symbol, read_all, to_source

__all__ = ["Environment", "GenericFunction", "Interpreter", "Method",
           "TdlFunction", "is_nil"]


def is_nil(value: Any) -> bool:
    """TDL truthiness: only ``nil`` (None) and false are false.

    Notably ``0`` and ``""`` are *true*, matching CLOS — and identity
    checks avoid Python's ``0 == False`` surprise.
    """
    return value is None or value is False


class Environment:
    """A lexical scope: bindings plus a parent pointer."""

    __slots__ = ("bindings", "parent")

    def __init__(self, parent: Optional["Environment"] = None,
                 bindings: Optional[Dict[str, Any]] = None):
        self.bindings: Dict[str, Any] = bindings or {}
        self.parent = parent

    def lookup(self, name: str) -> Any:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            env = env.parent
        raise TdlNameError(f"unbound symbol: {name}")

    def define(self, name: str, value: Any) -> Any:
        self.bindings[name] = value
        return value

    def set(self, name: str, value: Any) -> Any:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.bindings:
                env.bindings[name] = value
                return value
            env = env.parent
        raise TdlNameError(f"setq of unbound symbol: {name}")


class TdlFunction:
    """A lambda / defun: fixed parameters, optional ``&rest``, a closure."""

    def __init__(self, name: str, params: List[str], rest: Optional[str],
                 body: List[Any], env: Environment, interp: "Interpreter"):
        self.name = name or "<lambda>"
        self.params = params
        self.rest = rest
        self.body = body
        self.env = env
        self.interp = interp

    def __call__(self, *args: Any) -> Any:
        if self.rest is None and len(args) != len(self.params):
            raise TdlArityError(
                f"{self.name}: expected {len(self.params)} arguments, "
                f"got {len(args)}")
        if self.rest is not None and len(args) < len(self.params):
            raise TdlArityError(
                f"{self.name}: expected at least {len(self.params)} "
                f"arguments, got {len(args)}")
        local = Environment(self.env)
        for param, value in zip(self.params, args):
            local.define(param, value)
        if self.rest is not None:
            local.define(self.rest, list(args[len(self.params):]))
        result = None
        for form in self.body:
            result = self.interp.eval(form, local)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TdlFunction {self.name}/{len(self.params)}>"


#: Rank assigned to an unspecialized parameter (matches anything, last).
_UNIVERSAL = "t"


class Method:
    """One defmethod: specializers, an optional qualifier, and a body.

    ``qualifier`` is ``"primary"`` (the default), ``"before"``, or
    ``"after"`` — CLOS standard method combination.
    """

    def __init__(self, specializers: List[Optional[str]], func: TdlFunction,
                 qualifier: str = "primary"):
        self.specializers = specializers
        self.func = func
        self.qualifier = qualifier


class GenericFunction:
    """A named set of methods with CLOS-style class dispatch.

    Standard method combination: all applicable ``:before`` methods run
    most-specific-first, then the most specific primary (which may
    ``call-next-method``), then all ``:after`` methods run
    least-specific-first.  The primary's value is the call's value.
    """

    def __init__(self, name: str, interp: "Interpreter"):
        self.name = name
        self.interp = interp
        self.methods: List[Method] = []

    def add_method(self, method: Method) -> None:
        # a method with identical specializers and qualifier replaces
        for index, existing in enumerate(self.methods):
            if existing.specializers == method.specializers \
                    and existing.qualifier == method.qualifier:
                self.methods[index] = method
                return
        self.methods.append(method)

    def _type_chain(self, value: Any) -> List[str]:
        """The class-precedence list of ``value``, ending at the universal t."""
        if isinstance(value, DataObject):
            return (self.interp.registry.supertype_chain(value.type_name)
                    + [_UNIVERSAL])
        if isinstance(value, bool):      # before int: bool is an int subclass
            return ["boolean", _UNIVERSAL]
        if isinstance(value, int):
            return ["integer", _UNIVERSAL]
        if isinstance(value, float):
            return ["float", _UNIVERSAL]
        if isinstance(value, str):
            return ["string", _UNIVERSAL]
        if isinstance(value, list):
            return ["list", _UNIVERSAL]
        if isinstance(value, dict):
            return ["map", _UNIVERSAL]
        return [_UNIVERSAL]

    def _rank(self, method: Method, args: Tuple[Any, ...]) -> Optional[Tuple[int, ...]]:
        """Per-argument specificity, or None if the method is not applicable."""
        if len(method.specializers) != len(args) and method.func.rest is None:
            return None
        ranks: List[int] = []
        for specializer, arg in zip(method.specializers, args):
            chain = self._type_chain(arg)
            target = specializer or _UNIVERSAL
            if target not in chain:
                return None
            ranks.append(chain.index(target))
        return tuple(ranks)

    def _applicable(self, args: Tuple[Any, ...],
                    qualifier: str) -> List[Method]:
        ranked = []
        for method in self.methods:
            if method.qualifier != qualifier:
                continue
            rank = self._rank(method, args)
            if rank is not None:
                ranked.append((rank, len(ranked), method))
        ranked.sort(key=lambda item: (item[0], item[1]))
        return [method for _, _, method in ranked]

    def __call__(self, *args: Any) -> Any:
        primaries = self._applicable(args, "primary")
        if not primaries:
            types = ", ".join(self._type_chain(a)[0] for a in args)
            raise TdlDispatchError(
                f"no applicable method for ({self.name} {types})")
        for method in self._applicable(args, "before"):
            self._call_one(method, args)           # most specific first
        result = self._call_chain(primaries, args)
        for method in reversed(self._applicable(args, "after")):
            self._call_one(method, args)           # least specific first
        return result

    def _call_one(self, method: Method, args: Tuple[Any, ...]) -> Any:
        local = Environment(method.func.env)
        inner = TdlFunction(method.func.name, method.func.params,
                            method.func.rest, method.func.body, local,
                            method.func.interp)
        return inner(*args)

    def _call_chain(self, chain: List[Method], args: Tuple[Any, ...]) -> Any:
        method, rest = chain[0], chain[1:]

        def call_next_method(*next_args: Any) -> Any:
            if not rest:
                raise TdlDispatchError(
                    f"{self.name}: no next method")
            return self._call_chain(rest, next_args or args)

        local = Environment(method.func.env)
        local.define("call-next-method", call_next_method)
        inner = TdlFunction(method.func.name, method.func.params,
                            method.func.rest, method.func.body, local,
                            method.func.interp)
        return inner(*args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<GenericFunction {self.name} methods={len(self.methods)}>"


# ----------------------------------------------------------------------
# the interpreter
# ----------------------------------------------------------------------

#: TDL surface type names -> bus attribute type names.
_TYPE_ALIASES = {
    "string": "string", "integer": "int", "int": "int", "float": "float",
    "boolean": "bool", "bool": "bool", "bytes": "bytes", "any": "any",
}


class Interpreter:
    """One TDL runtime bound to a type registry.

    Parameters
    ----------
    registry:
        The bus type registry ``defclass`` registers into.  Defaults to a
        fresh :func:`~repro.objects.builtin_types.standard_registry`.
    """

    def __init__(self, registry: Optional[TypeRegistry] = None):
        self.registry = registry if registry is not None else standard_registry()
        self.globals = Environment()
        self.generics: Dict[str, GenericFunction] = {}
        from .stdlib import install_stdlib
        install_stdlib(self)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def eval_text(self, source: str) -> Any:
        """Evaluate every form in ``source``; return the last value."""
        result = None
        for form in read_all(source):
            result = self.eval(form, self.globals)
        return result

    def define(self, name: str, value: Any) -> None:
        """Expose a Python value/callable to TDL code."""
        self.globals.define(name, value)

    # ------------------------------------------------------------------
    # core eval
    # ------------------------------------------------------------------
    def eval(self, form: Any, env: Environment) -> Any:
        if isinstance(form, Symbol):
            return env.lookup(str(form))
        if not isinstance(form, list):
            return form   # numbers, strings, True/None, keywords
        if not form:
            return None   # () is nil
        head = form[0]
        if isinstance(head, Symbol):
            handler = _SPECIAL_FORMS.get(str(head))
            if handler is not None:
                return handler(self, form, env)
        func = self.eval(head, env)
        args = [self.eval(arg, env) for arg in form[1:]]
        if not callable(func):
            raise TdlError(f"not callable: {to_source(head)}")
        return func(*args)

    def eval_body(self, body: List[Any], env: Environment) -> Any:
        result = None
        for form in body:
            result = self.eval(form, env)
        return result

    # ------------------------------------------------------------------
    # class machinery (used by special forms below)
    # ------------------------------------------------------------------
    def tdl_type_to_bus(self, spec: Any) -> str:
        """Map a TDL type spec to a bus type name.

        ``string`` -> ``string``; ``integer`` -> ``int``;
        ``(list string)`` -> ``list<string>``; other symbols name object
        types (which must be registered).
        """
        if isinstance(spec, Symbol):
            name = str(spec)
            if name in _TYPE_ALIASES:
                return _TYPE_ALIASES[name]
            return name
        if isinstance(spec, list) and len(spec) == 2 and \
                isinstance(spec[0], Symbol) and str(spec[0]) in ("list", "map"):
            return f"{spec[0]}<{self.tdl_type_to_bus(spec[1])}>"
        raise TdlSyntaxError(f"malformed type spec: {to_source(spec)}")

    def generic(self, name: str) -> GenericFunction:
        gf = self.generics.get(name)
        if gf is None:
            gf = GenericFunction(name, self)
            self.generics[name] = gf
            self.globals.define(name, gf)
        return gf


# ----------------------------------------------------------------------
# special forms
# ----------------------------------------------------------------------

def _need(form: List[Any], minimum: int, name: str) -> None:
    if len(form) < minimum:
        raise TdlSyntaxError(f"malformed {name}: {to_source(form)}")


def _sf_quote(interp, form, env):
    _need(form, 2, "quote")
    return form[1]


def _sf_if(interp, form, env):
    _need(form, 3, "if")
    if not is_nil(interp.eval(form[1], env)):
        return interp.eval(form[2], env)
    if len(form) > 3:
        return interp.eval(form[3], env)
    return None


def _sf_progn(interp, form, env):
    return interp.eval_body(form[1:], env)


def _sf_define(interp, form, env):
    _need(form, 3, "define")
    name = form[1]
    if not isinstance(name, Symbol):
        raise TdlSyntaxError(f"define needs a symbol: {to_source(form)}")
    return env.define(str(name), interp.eval(form[2], env))


def _sf_setq(interp, form, env):
    _need(form, 3, "setq")
    name = form[1]
    if not isinstance(name, Symbol):
        raise TdlSyntaxError(f"setq needs a symbol: {to_source(form)}")
    return env.set(str(name), interp.eval(form[2], env))


def _parse_params(params: Any) -> Tuple[List[str], Optional[str]]:
    if not isinstance(params, list):
        raise TdlSyntaxError("parameter list must be a list")
    names: List[str] = []
    rest: Optional[str] = None
    iterator = iter(params)
    for param in iterator:
        if isinstance(param, Symbol) and str(param) == "&rest":
            try:
                rest_sym = next(iterator)
            except StopIteration:
                raise TdlSyntaxError("&rest needs a name") from None
            rest = str(rest_sym)
            break
        if not isinstance(param, Symbol):
            raise TdlSyntaxError(f"bad parameter: {to_source(param)}")
        names.append(str(param))
    return names, rest


def _sf_lambda(interp, form, env):
    _need(form, 3, "lambda")
    params, rest = _parse_params(form[1])
    return TdlFunction("<lambda>", params, rest, form[2:], env, interp)


def _sf_defun(interp, form, env):
    _need(form, 4, "defun")
    name = str(form[1])
    params, rest = _parse_params(form[2])
    func = TdlFunction(name, params, rest, form[3:], env, interp)
    interp.globals.define(name, func)
    return func


def _sf_let(interp, form, env, sequential=False):
    _need(form, 3, "let")
    local = Environment(env)
    for binding in form[1]:
        if not (isinstance(binding, list) and len(binding) == 2
                and isinstance(binding[0], Symbol)):
            raise TdlSyntaxError(f"bad let binding: {to_source(binding)}")
        value_env = local if sequential else env
        local.define(str(binding[0]), interp.eval(binding[1], value_env))
    return interp.eval_body(form[2:], local)


def _sf_let_star(interp, form, env):
    return _sf_let(interp, form, env, sequential=True)


def _sf_and(interp, form, env):
    result = True
    for sub in form[1:]:
        result = interp.eval(sub, env)
        if is_nil(result):
            return result
    return result


def _sf_or(interp, form, env):
    for sub in form[1:]:
        result = interp.eval(sub, env)
        if not is_nil(result):
            return result
    return None


def _sf_cond(interp, form, env):
    for clause in form[1:]:
        if not isinstance(clause, list) or not clause:
            raise TdlSyntaxError(f"bad cond clause: {to_source(clause)}")
        test = interp.eval(clause[0], env)
        if not is_nil(test):
            if len(clause) == 1:
                return test
            return interp.eval_body(clause[1:], env)
    return None


def _sf_when(interp, form, env):
    _need(form, 2, "when")
    if not is_nil(interp.eval(form[1], env)):
        return interp.eval_body(form[2:], env)
    return None


def _sf_unless(interp, form, env):
    _need(form, 2, "unless")
    if is_nil(interp.eval(form[1], env)):
        return interp.eval_body(form[2:], env)
    return None


_MAX_ITERATIONS = 1_000_000


def _sf_while(interp, form, env):
    _need(form, 2, "while")
    iterations = 0
    result = None
    while not is_nil(interp.eval(form[1], env)):
        result = interp.eval_body(form[2:], env)
        iterations += 1
        if iterations > _MAX_ITERATIONS:
            raise TdlError("while: iteration limit exceeded")
    return result


def _sf_dolist(interp, form, env):
    _need(form, 3, "dolist")
    spec = form[1]
    if not (isinstance(spec, list) and len(spec) == 2
            and isinstance(spec[0], Symbol)):
        raise TdlSyntaxError(f"bad dolist spec: {to_source(spec)}")
    items = interp.eval(spec[1], env)
    if items is None:
        items = []
    local = Environment(env)
    result = None
    for item in items:
        local.define(str(spec[0]), item)
        result = interp.eval_body(form[2:], local)
    return result


def _sf_defclass(interp, form, env):
    """(defclass name (supertype) ((slot :type T :required nil :doc "d")...)
        :doc "class doc")"""
    _need(form, 4, "defclass")
    name = str(form[1])
    supers = form[2]
    if not isinstance(supers, list) or len(supers) > 1:
        raise TdlSyntaxError(
            f"defclass {name}: exactly one superclass supported "
            f"(got {to_source(supers)})")
    supertype = str(supers[0]) if supers else "object"
    slots: List[AttributeSpec] = []
    if not isinstance(form[3], list):
        raise TdlSyntaxError(f"defclass {name}: bad slot list")
    for slot in form[3]:
        if isinstance(slot, Symbol):
            slots.append(AttributeSpec(str(slot), "any"))
            continue
        if not (isinstance(slot, list) and slot
                and isinstance(slot[0], Symbol)):
            raise TdlSyntaxError(f"bad slot: {to_source(slot)}")
        slot_name = str(slot[0])
        options = _keyword_options(slot[1:], f"slot {slot_name}")
        type_name = "any"
        if "type" in options:
            type_name = interp.tdl_type_to_bus(options["type"])
        required = options.get("required", True)
        doc = options.get("doc", "") or ""
        slots.append(AttributeSpec(slot_name, type_name,
                                   required=bool(required), doc=doc))
    class_options = _keyword_options(form[4:], f"defclass {name}")
    descriptor = TypeDescriptor(name, supertype=supertype, attributes=slots,
                                doc=class_options.get("doc", "") or "")
    interp.registry.register(descriptor)
    return Symbol(name)


def _keyword_options(items: List[Any], context: str) -> Dict[str, Any]:
    if len(items) % 2 != 0:
        raise TdlSyntaxError(f"{context}: odd keyword/value pairing")
    options: Dict[str, Any] = {}
    for key, value in zip(items[0::2], items[1::2]):
        if not isinstance(key, Keyword):
            raise TdlSyntaxError(f"{context}: expected keyword, got "
                                 f"{to_source(key)}")
        options[str(key)] = value
    return options


def _sf_defgeneric(interp, form, env):
    _need(form, 2, "defgeneric")
    return interp.generic(str(form[1]))


def _sf_defmethod(interp, form, env):
    """(defmethod name [:before|:after] ((x class) y ...) body...)"""
    _need(form, 4, "defmethod")
    name = str(form[1])
    qualifier = "primary"
    rest = form[2:]
    if isinstance(rest[0], Keyword):
        qualifier = str(rest[0])
        if qualifier not in ("before", "after"):
            raise TdlSyntaxError(
                f"defmethod {name}: unknown qualifier :{qualifier}")
        rest = rest[1:]
        if len(rest) < 2:
            raise TdlSyntaxError(f"defmethod {name}: missing body")
    param_list, body = rest[0], rest[1:]
    params: List[str] = []
    specializers: List[Optional[str]] = []
    if not isinstance(param_list, list):
        raise TdlSyntaxError(f"defmethod {name}: bad parameter list")
    for param in param_list:
        if isinstance(param, Symbol):
            params.append(str(param))
            specializers.append(None)
        elif (isinstance(param, list) and len(param) == 2
              and isinstance(param[0], Symbol)
              and isinstance(param[1], Symbol)):
            params.append(str(param[0]))
            specializer = str(param[1])
            # normalize fundamentals to dispatch names
            specializers.append({"int": "integer", "bool": "boolean"}
                                .get(specializer, specializer))
        else:
            raise TdlSyntaxError(
                f"defmethod {name}: bad parameter {to_source(param)}")
    func = TdlFunction(name, params, None, body, env, interp)
    gf = interp.generic(name)
    gf.add_method(Method(specializers, func, qualifier))
    return gf


_SPECIAL_FORMS: Dict[str, Callable] = {
    "quote": _sf_quote,
    "if": _sf_if,
    "progn": _sf_progn,
    "define": _sf_define,
    "setq": _sf_setq,
    "lambda": _sf_lambda,
    "defun": _sf_defun,
    "let": _sf_let,
    "let*": _sf_let_star,
    "and": _sf_and,
    "or": _sf_or,
    "cond": _sf_cond,
    "when": _sf_when,
    "unless": _sf_unless,
    "while": _sf_while,
    "dolist": _sf_dolist,
    "defclass": _sf_defclass,
    "defgeneric": _sf_defgeneric,
    "defmethod": _sf_defmethod,
}
