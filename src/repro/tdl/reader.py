"""The TDL reader: source text to s-expressions.

TDL is "a small, interpreted language based on CLOS" (Section 3), so its
surface syntax is s-expressions:

* lists: ``( ... )``
* integers, floats, double-quoted strings with ``\\"`` and ``\\n`` escapes
* symbols (``defclass``, ``slot-value``, ``+``) and keywords (``:type``)
* ``t`` / ``nil`` read as Python ``True`` / ``None``
* ``'x`` quotes, reading as ``(quote x)``
* ``;`` starts a comment running to end of line
"""

from __future__ import annotations

from typing import Any, List, Tuple

from .errors import TdlSyntaxError

__all__ = ["Symbol", "Keyword", "read", "read_all", "to_source"]


class Symbol(str):
    """An interned-ish identifier.  Subclassing str keeps dict keys cheap."""

    __slots__ = ()

    def __repr__(self) -> str:
        return str(self)


class Keyword(str):
    """A self-evaluating ``:name`` token (CLOS keyword arguments)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return ":" + str(self)


_DELIMITERS = "()'; \t\n\r"
_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}


def _tokenize(text: str) -> List[Tuple[str, Any, int]]:
    """Produce (kind, value, line) tokens. Kinds: ( ) ' atom string."""
    tokens: List[Tuple[str, Any, int]] = []
    pos, line = 0, 1
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch == "\n":
            line += 1
            pos += 1
        elif ch in " \t\r":
            pos += 1
        elif ch == ";":
            while pos < n and text[pos] != "\n":
                pos += 1
        elif ch in "()'":
            tokens.append((ch, ch, line))
            pos += 1
        elif ch == '"':
            pos += 1
            chunks: List[str] = []
            start_line = line
            while True:
                if pos >= n:
                    raise TdlSyntaxError(
                        f"line {start_line}: unterminated string")
                ch = text[pos]
                if ch == '"':
                    pos += 1
                    break
                if ch == "\\":
                    if pos + 1 >= n:
                        raise TdlSyntaxError(
                            f"line {line}: dangling escape in string")
                    escape = text[pos + 1]
                    chunks.append(_ESCAPES.get(escape, escape))
                    pos += 2
                else:
                    if ch == "\n":
                        line += 1
                    chunks.append(ch)
                    pos += 1
            tokens.append(("string", "".join(chunks), start_line))
        else:
            start = pos
            while pos < n and text[pos] not in _DELIMITERS and text[pos] != '"':
                pos += 1
            tokens.append(("atom", text[start:pos], line))
    return tokens


def _parse_atom(token: str):
    if token == "t":
        return True
    if token == "nil":
        return None
    if token.startswith(":") and len(token) > 1:
        return Keyword(token[1:])
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return Symbol(token)


def _parse(tokens: List[Tuple[str, Any, int]], pos: int):
    if pos >= len(tokens):
        raise TdlSyntaxError("unexpected end of input")
    kind, value, line = tokens[pos]
    if kind == "(":
        items: List[Any] = []
        pos += 1
        while True:
            if pos >= len(tokens):
                raise TdlSyntaxError(f"line {line}: unclosed '('")
            if tokens[pos][0] == ")":
                return items, pos + 1
            item, pos = _parse(tokens, pos)
            items.append(item)
    if kind == ")":
        raise TdlSyntaxError(f"line {line}: unexpected ')'")
    if kind == "'":
        quoted, pos = _parse(tokens, pos + 1)
        return [Symbol("quote"), quoted], pos
    if kind == "string":
        return value, pos + 1
    return _parse_atom(value), pos + 1


def read_all(text: str) -> List[Any]:
    """Read every top-level form in ``text``."""
    tokens = _tokenize(text)
    forms: List[Any] = []
    pos = 0
    while pos < len(tokens):
        form, pos = _parse(tokens, pos)
        forms.append(form)
    return forms


def read(text: str) -> Any:
    """Read exactly one form; raise if there are zero or several."""
    forms = read_all(text)
    if len(forms) != 1:
        raise TdlSyntaxError(f"expected exactly one form, got {len(forms)}")
    return forms[0]


def to_source(form: Any) -> str:
    """Render a form back to (canonical) source text."""
    if form is True:
        return "t"
    if form is None:
        return "nil"
    if isinstance(form, Keyword):
        return ":" + str(form)
    if isinstance(form, Symbol):
        return str(form)
    if isinstance(form, str):
        escaped = form.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(form, list):
        return "(" + " ".join(to_source(f) for f in form) + ")"
    return repr(form)
