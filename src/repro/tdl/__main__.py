"""``python -m repro.tdl`` — the interactive TDL REPL."""

from .repl import main

raise SystemExit(main())
