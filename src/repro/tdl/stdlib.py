"""TDL built-in functions.

Everything here is an ordinary first-class value in the global
environment, callable from TDL code.  The object-model builtins
(``make-instance``, ``slot-value``, ``attribute-names`` ...) surface the
meta-object protocol so TDL scripts — e.g. application-builder views —
can introspect and manipulate objects of types they have never seen.
"""

from __future__ import annotations

import functools
import operator
from typing import Any, List

from ..objects import (DataObject, make_property, render)
from .errors import TdlArityError, TdlError
from .evaluator import is_nil
from .reader import Keyword, Symbol, to_source

__all__ = ["install_stdlib"]


def _sym_or_str(value: Any, what: str) -> str:
    if isinstance(value, (Symbol, str)):
        return str(value)
    raise TdlError(f"{what}: expected a symbol or string, got {value!r}")


def _numeric_fold(op, identity=None, name="?"):
    def fold(*args):
        if not args:
            if identity is None:
                raise TdlArityError(f"{name}: needs at least one argument")
            return identity
        return functools.reduce(op, args)
    return fold


def _sub(*args):
    if not args:
        raise TdlArityError("-: needs at least one argument")
    if len(args) == 1:
        return -args[0]
    return functools.reduce(operator.sub, args)


def _div(*args):
    if not args:
        raise TdlArityError("/: needs at least one argument")
    if len(args) == 1:
        return 1 / args[0]
    try:
        return functools.reduce(operator.truediv, args)
    except ZeroDivisionError:
        raise TdlError("/: division by zero") from None


def _chain_compare(op):
    def compare(*args):
        if len(args) < 2:
            raise TdlArityError("comparison needs at least two arguments")
        return all(op(a, b) for a, b in zip(args, args[1:]))
    return compare


def _equal(*args):
    if len(args) < 2:
        raise TdlArityError("=: needs at least two arguments")
    first = args[0]
    return all(a == first for a in args[1:])


def install_stdlib(interp) -> None:
    """Install the standard library into ``interp``'s global environment."""
    env = interp.globals
    registry = interp.registry

    # ------------------------------------------------------------------
    # arithmetic & comparison
    # ------------------------------------------------------------------
    env.define("+", _numeric_fold(operator.add, 0, "+"))
    env.define("-", _sub)
    env.define("*", _numeric_fold(operator.mul, 1, "*"))
    env.define("/", _div)
    env.define("mod", lambda a, b: a % b)
    env.define("min", lambda *a: min(a))
    env.define("max", lambda *a: max(a))
    env.define("abs", abs)
    env.define("<", _chain_compare(operator.lt))
    env.define(">", _chain_compare(operator.gt))
    env.define("<=", _chain_compare(operator.le))
    env.define(">=", _chain_compare(operator.ge))
    env.define("=", _equal)
    env.define("/=", lambda a, b: a != b)
    env.define("not", lambda x: is_nil(x))

    # ------------------------------------------------------------------
    # lists
    # ------------------------------------------------------------------
    env.define("list", lambda *items: list(items))
    env.define("length", len)
    env.define("nth", lambda n, seq: seq[n] if 0 <= n < len(seq) else None)
    env.define("first", lambda seq: seq[0] if seq else None)
    env.define("rest", lambda seq: list(seq[1:]) if seq else [])
    env.define("last", lambda seq: seq[-1] if seq else None)
    env.define("append", lambda *seqs: [x for s in seqs for x in (s or [])])
    env.define("cons", lambda x, seq: [x] + list(seq or []))
    env.define("reverse", lambda seq: list(reversed(seq)))
    env.define("member", lambda x, seq: x in (seq or []))
    env.define("mapcar", lambda f, seq: [f(x) for x in (seq or [])])
    env.define("filter", lambda f, seq: [x for x in (seq or [])
                                         if not is_nil(f(x))])
    env.define("reduce", lambda f, seq, init=0:
               functools.reduce(f, seq or [], init))
    env.define("sort", lambda seq, key=None:
               sorted(seq, key=key) if key else sorted(seq))
    env.define("range", lambda *a: list(range(*a)))

    # ------------------------------------------------------------------
    # maps
    # ------------------------------------------------------------------
    env.define("make-map", lambda: {})
    env.define("map-get", lambda m, k, default=None: m.get(str(k), default))
    env.define("map-set!", lambda m, k, v: (m.__setitem__(str(k), v), v)[1])
    env.define("map-keys", lambda m: sorted(m))
    env.define("map-has", lambda m, k: str(k) in m)

    # ------------------------------------------------------------------
    # strings
    # ------------------------------------------------------------------
    env.define("concat", lambda *parts: "".join(_to_display(p) for p in parts))
    env.define("string-upcase", lambda s: s.upper())
    env.define("string-downcase", lambda s: s.lower())
    env.define("substring", lambda s, start, end=None:
               s[start:end] if end is not None else s[start:])
    env.define("string-search", lambda needle, hay: hay.find(needle))
    env.define("string-split", lambda s, sep=" ": s.split(sep))
    env.define("string-join", lambda sep, parts: sep.join(parts))
    env.define("string-trim", lambda s: s.strip())
    env.define("format-number", lambda n, digits=2: f"{n:.{digits}f}")
    env.define("symbol-name", lambda s: str(s))

    # ------------------------------------------------------------------
    # the object model / meta-object protocol
    # ------------------------------------------------------------------
    def make_instance(type_name, *rest):
        name = _sym_or_str(type_name, "make-instance")
        if len(rest) % 2 != 0:
            raise TdlError("make-instance: odd keyword/value pairing")
        attrs = {}
        for key, value in zip(rest[0::2], rest[1::2]):
            if not isinstance(key, Keyword):
                raise TdlError(
                    f"make-instance: expected keyword, got {key!r}")
            attrs[str(key)] = value
        return DataObject(registry, name, attrs)

    def slot_value(obj, slot):
        if not isinstance(obj, DataObject):
            raise TdlError(f"slot-value: not an object: {obj!r}")
        return obj.get(_sym_or_str(slot, "slot-value"))

    def set_slot_value(obj, slot, value):
        if not isinstance(obj, DataObject):
            raise TdlError(f"set-slot-value!: not an object: {obj!r}")
        obj.set(_sym_or_str(slot, "set-slot-value!"), value)
        return value

    def type_of(obj):
        if isinstance(obj, DataObject):
            return Symbol(obj.type_name)
        if isinstance(obj, bool):
            return Symbol("boolean")
        if isinstance(obj, int):
            return Symbol("integer")
        if isinstance(obj, float):
            return Symbol("float")
        if isinstance(obj, str):
            return Symbol("string")
        if isinstance(obj, list):
            return Symbol("list")
        if isinstance(obj, dict):
            return Symbol("map")
        return Symbol("t")

    def is_a(obj, type_name):
        return (isinstance(obj, DataObject)
                and obj.is_a(_sym_or_str(type_name, "is-a")))

    def attribute_names(obj):
        if isinstance(obj, DataObject):
            return obj.attribute_names()
        return [a.name for a in
                registry.all_attributes(_sym_or_str(obj, "attribute-names"))]

    def attribute_type(obj, name):
        if isinstance(obj, DataObject):
            return obj.attribute_type(_sym_or_str(name, "attribute-type"))
        spec = registry.attribute(_sym_or_str(obj, "attribute-type"),
                                  _sym_or_str(name, "attribute-type"))
        return spec.type_name if spec else None

    env.define("make-instance", make_instance)
    env.define("slot-value", slot_value)
    env.define("set-slot-value!", set_slot_value)
    env.define("type-of", type_of)
    env.define("is-a", is_a)
    env.define("attribute-names", attribute_names)
    env.define("attribute-type", attribute_type)
    env.define("object-oid", lambda obj: obj.oid)
    env.define("known-types", lambda: registry.names())
    env.define("subtypes-of", lambda name:
               registry.subtypes_of(_sym_or_str(name, "subtypes-of")))
    env.define("describe-type", lambda name:
               registry.get(_sym_or_str(name, "describe-type")).describe())
    env.define("make-property", lambda name, value, ref=None:
               make_property(registry, _sym_or_str(name, "make-property"),
                             value, ref))
    env.define("render-object", render)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    output: List[str] = []
    env.define("print", lambda *parts: _print(output, parts))
    env.define("tdl-output", lambda: list(output))
    env.define("clear-output", lambda: (output.clear(), None)[1])


def _to_display(value: Any) -> str:
    if value is None:
        return "nil"
    if value is True:
        return "t"
    if value is False:
        return "nil"
    if isinstance(value, str):
        return value
    if isinstance(value, DataObject):
        return repr(value)
    if isinstance(value, (list, dict)):
        return to_source(value) if isinstance(value, list) else repr(value)
    return str(value)


def _print(output: List[str], parts) -> None:
    line = " ".join(_to_display(p) for p in parts)
    output.append(line)
    return None
