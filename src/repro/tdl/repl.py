"""An interactive TDL read-eval-print loop.

Run it with ``python -m repro.tdl``.  The paper's development experience
— defining classes and methods interactively, inspecting types through
the meta-object protocol — is exactly what a REPL is for.

Multi-line input is supported: a line with unbalanced parentheses keeps
reading until the form closes.
"""

from __future__ import annotations

import sys
from typing import IO, Optional

from ..objects import DataObject, render
from .errors import TdlError
from .evaluator import Interpreter
from .reader import to_source

__all__ = ["repl", "format_result"]

_BANNER = """TDL — the Information Bus dynamic classing language
type forms at the prompt; (exit) or EOF to leave; ,types lists types
"""


def _balanced(text: str) -> bool:
    """True when every '(' is closed (strings respected)."""
    depth = 0
    in_string = False
    escaped = False
    for ch in text:
        if in_string:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
        elif ch == ";":
            # comment runs to end of line; cheap approximation: stop
            # scanning this line at the semicolon
            newline = text.find("\n", text.index(ch))
            if newline == -1:
                break
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
    return depth <= 0 and not in_string


def format_result(value) -> str:
    """Render an evaluation result the way the REPL prints it."""
    if value is None:
        return "nil"
    if value is True:
        return "t"
    if isinstance(value, DataObject):
        return render(value)
    if isinstance(value, list):
        return to_source(value)
    if isinstance(value, str):
        return f'"{value}"'
    return str(value)


def repl(stdin: Optional[IO] = None, stdout: Optional[IO] = None,
         interp: Optional[Interpreter] = None) -> Interpreter:
    """Run the loop until EOF or ``(exit)``.  Returns the interpreter."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    interp = interp if interp is not None else Interpreter()
    exiting = {"flag": False}
    interp.define("exit", lambda: exiting.__setitem__("flag", True))

    def out(text: str = "") -> None:
        stdout.write(text + "\n")

    out(_BANNER.rstrip())
    buffer = ""
    while not exiting["flag"]:
        stdout.write("tdl> " if not buffer else "...> ")
        stdout.flush()
        line = stdin.readline()
        if not line:
            break
        if not buffer and line.strip() == ",types":
            for name in interp.registry.names():
                out(f"  {name}")
            continue
        buffer += line
        if not buffer.strip() or not _balanced(buffer):
            continue
        try:
            result = interp.eval_text(buffer)
            # surface anything the script printed
            for printed in interp.eval_text("(tdl-output)"):
                out(printed)
            interp.eval_text("(clear-output)")
            if not exiting["flag"]:
                out(format_result(result))
        except TdlError as error:
            out(f"error: {error}")
        except Exception as error:   # object-model errors etc.
            out(f"error: {type(error).__name__}: {error}")
        buffer = ""
    out("bye")
    return interp


def main() -> int:   # pragma: no cover - terminal entry point
    repl()
    return 0
