"""TDL error hierarchy."""

from __future__ import annotations

__all__ = ["TdlError", "TdlSyntaxError", "TdlNameError", "TdlDispatchError",
           "TdlArityError"]


class TdlError(Exception):
    """Base class for all TDL errors."""


class TdlSyntaxError(TdlError):
    """Malformed source text or special form."""


class TdlNameError(TdlError):
    """Reference to an unbound symbol."""


class TdlDispatchError(TdlError):
    """No applicable method for a generic function call."""


class TdlArityError(TdlError):
    """Wrong number of arguments to a function or form."""
