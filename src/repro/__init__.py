"""repro — a from-scratch reproduction of *The Information Bus: An
Architecture for Extensible Distributed Systems* (Oki, Pfluegl, Siegel,
Skeen; SOSP 1993).

Quick tour
----------

>>> from repro import InformationBus, DataObject, standard_registry
>>> from repro.objects import TypeDescriptor, AttributeSpec
>>> bus = InformationBus(seed=1)
>>> bus.add_hosts(3)                                    # doctest: +ELLIPSIS
[...]
>>> reg = standard_registry()
>>> _ = reg.register(TypeDescriptor("story",
...     attributes=[AttributeSpec("headline", "string")]))
>>> feed = bus.client("node00", "feed", registry=reg)
>>> monitor = bus.client("node01", "monitor")
>>> inbox = []
>>> _ = monitor.subscribe("news.>", lambda s, o, i: inbox.append(o))
>>> _ = feed.publish("news.equity.gmc",
...                  DataObject(reg, "story", headline="Chips up"))
>>> bus.settle()
>>> inbox[0].get("headline")
'Chips up'

Subpackages
-----------

- :mod:`repro.sim` — discrete-event substrate (kernel, Ethernet, hosts,
  transports, stable storage).
- :mod:`repro.objects` — self-describing object model (P2) with dynamic
  type registration (P3).
- :mod:`repro.tdl` — the TDL interpreted language (CLOS subset).
- :mod:`repro.core` — the bus: subject-based addressing (P4), reliable and
  guaranteed delivery, discovery, RMI, WAN routers.
- :mod:`repro.repository` — the Object Repository over a built-in
  relational engine.
- :mod:`repro.adapters` — legacy integration (news feeds, the Cobol WIP
  terminal).
- :mod:`repro.apps` — News Monitor, Keyword Generator, application
  builder, factory configuration system.
- :mod:`repro.bench` — workload generators and measurement harness for
  the Appendix figures.
"""

from .core import (BusClient, BusConfig, BusDaemon, InformationBus, QoS,
                   RmiClient, RmiServer, Router, SubjectTrie, WanLink,
                   subject_matches)
from .objects import (AttributeSpec, DataObject, OperationSpec, ParamSpec,
                      ServiceObject, TypeDescriptor, TypeRegistry, decode,
                      encode, render, standard_registry)
from .sim import CostModel, Simulator
from .tdl import Interpreter as TdlInterpreter

__version__ = "1.0.0"

__all__ = [
    "AttributeSpec", "BusClient", "BusConfig", "BusDaemon", "CostModel",
    "DataObject", "InformationBus", "OperationSpec", "ParamSpec", "QoS",
    "RmiClient", "RmiServer", "Router", "ServiceObject", "Simulator",
    "SubjectTrie", "TdlInterpreter", "TypeDescriptor", "TypeRegistry",
    "WanLink", "decode", "encode", "render", "standard_registry",
    "subject_matches", "__version__",
]
