"""The Object Repository: a sophisticated adapter mapping bus objects to
relations (Section 4), over a built-in relational engine."""

from .relational import (BLOB, BOOLEAN, Column, Database, DatabaseError,
                         INTEGER, REAL, TEXT, Table)
from .query import (And, Contains, Eq, Ge, Gt, In, Le, Lt, Ne, Not, Or,
                    Predicate, TRUE, predicate_from_wire,
                    predicate_to_wire)
from .schema_mapper import (DIRECTORY_TABLE, AttributeMapping, SchemaMapper,
                            TypeSchema, child_table_name, main_table_name)
from .object_store import ObjectStore, StoreError
from .capture import CaptureServer
from .query_server import QUERY_SERVICE_TYPE, QueryServer, register_query_interface

__all__ = [
    "And", "AttributeMapping", "BLOB", "BOOLEAN", "CaptureServer", "Column",
    "Contains", "DIRECTORY_TABLE", "Database", "DatabaseError", "Eq", "Ge",
    "Gt", "In", "INTEGER", "Le", "Lt", "Ne", "Not", "ObjectStore", "Or",
    "Predicate", "QUERY_SERVICE_TYPE", "QueryServer", "REAL", "SchemaMapper",
    "StoreError", "TEXT", "TRUE", "Table", "TypeSchema", "child_table_name",
    "main_table_name", "predicate_from_wire", "predicate_to_wire",
    "register_query_interface",
]
