"""Object ↔ relational schema mapping, driven entirely by type metadata.

Section 4: "The repository behaves as a kind of schema converter from
objects to database tables, and vice versa. ... our conversion algorithm
decomposes a complex object into one or more database tables and
reconstructs a complex object from one or more database tables ... This
operation can be fully automated; only the type information is necessary
to do the transformation."

The mapping, per concrete type ``T``:

* a main table ``obj_T`` — ``oid`` primary key plus one column per
  declared attribute (inherited attributes included, so supertype columns
  repeat across subtype tables);
* scalar attributes map to typed columns (``a_<name>``);
* a nested object attribute maps to a ``a_<name>__oid`` reference column,
  the child object being stored in *its* type's tables;
* ``list<X>`` / ``map<X>`` attributes map to child tables
  ``obj_T__<name>`` keyed by parent oid (+ index or key column);
* ``any`` attributes and nested containers map to marshalled blobs.

Subtype queries ("queries ... return all objects that satisfy a
constraint, including objects that are instances of a subtype") work by
unioning over the tables of the type and its registered subtypes — see
:mod:`repro.repository.object_store`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..objects import TypeRegistry, parse_type_name
from .relational import (BLOB, BOOLEAN, Column, Database, INTEGER, REAL,
                         TEXT)

__all__ = ["AttributeMapping", "SchemaMapper", "TypeSchema",
           "DIRECTORY_TABLE", "main_table_name", "child_table_name"]

#: Table mapping every stored oid to its concrete type.
DIRECTORY_TABLE = "obj_directory"

_SCALAR_COLUMNS = {
    "int": INTEGER,
    "float": REAL,
    "bool": BOOLEAN,
    "string": TEXT,
    "bytes": BLOB,
}


def main_table_name(type_name: str) -> str:
    return f"obj_{type_name}"


def child_table_name(type_name: str, attr_name: str) -> str:
    return f"obj_{type_name}__{attr_name}"


@dataclass
class AttributeMapping:
    """How one attribute is represented relationally."""

    attr_name: str
    attr_type: str
    kind: str                 # scalar | blob | ref | list | map
    column: Optional[str] = None        # main-table column (if any)
    child_table: Optional[str] = None   # child table (list/map)
    element_kind: Optional[str] = None  # scalar | blob | ref (containers)
    element_column_type: Optional[str] = None


@dataclass
class TypeSchema:
    """The full relational layout of one concrete type."""

    type_name: str
    main_table: str
    attributes: List[AttributeMapping] = field(default_factory=list)

    def mapping(self, attr_name: str) -> Optional[AttributeMapping]:
        for mapping in self.attributes:
            if mapping.attr_name == attr_name:
                return mapping
        return None

    def column_for(self, attr_name: str) -> Optional[str]:
        mapping = self.mapping(attr_name)
        return mapping.column if mapping else None


class SchemaMapper:
    """Computes and materializes :class:`TypeSchema` objects in a database."""

    def __init__(self, db: Database, registry: TypeRegistry):
        self.db = db
        self.registry = registry
        self._schemas: Dict[str, TypeSchema] = {}
        self.tables_created = 0
        if not db.has_table(DIRECTORY_TABLE):
            db.create_table(DIRECTORY_TABLE,
                            [Column("oid", TEXT, nullable=False),
                             Column("type_name", TEXT, nullable=False)],
                            primary_key="oid")
            db.table(DIRECTORY_TABLE).create_index("type_name")

    # ------------------------------------------------------------------
    def schema_for(self, type_name: str) -> TypeSchema:
        """The layout for ``type_name``, computing it on first use.

        This is the dynamic-evolution entry point: storing an instance of
        a previously unknown type generates its tables on the fly.
        """
        schema = self._schemas.get(type_name)
        if schema is None:
            schema = self._compute(type_name)
            self._materialize(schema)
            self._schemas[type_name] = schema
        return schema

    def known_schemas(self) -> List[str]:
        return sorted(self._schemas)

    # ------------------------------------------------------------------
    def _compute(self, type_name: str) -> TypeSchema:
        self.registry.get(type_name)   # raise early on unknown types
        schema = TypeSchema(type_name, main_table_name(type_name))
        for attr in self.registry.all_attributes(type_name):
            schema.attributes.append(self._map_attribute(type_name, attr))
        return schema

    def _map_attribute(self, type_name: str, attr) -> AttributeMapping:
        outer, inner = parse_type_name(attr.type_name)
        if outer in _SCALAR_COLUMNS:
            return AttributeMapping(attr.name, attr.type_name, "scalar",
                                    column=f"a_{attr.name}")
        if outer == "any":
            return AttributeMapping(attr.name, attr.type_name, "blob",
                                    column=f"a_{attr.name}")
        if outer in ("list", "map"):
            element_kind, element_type = self._element_layout(inner)
            # the main table carries an element count so an *empty*
            # container is distinguishable from an unset attribute
            return AttributeMapping(
                attr.name, attr.type_name, outer,
                column=f"a_{attr.name}__n",
                child_table=child_table_name(type_name, attr.name),
                element_kind=element_kind,
                element_column_type=element_type)
        # a nested object type: store the child's oid as a reference
        return AttributeMapping(attr.name, attr.type_name, "ref",
                                column=f"a_{attr.name}__oid")

    def _element_layout(self, element_type: str) -> Tuple[str, str]:
        outer, inner = parse_type_name(element_type)
        if outer in _SCALAR_COLUMNS:
            return "scalar", _SCALAR_COLUMNS[outer]
        if outer in ("list", "map", "any"):
            return "blob", BLOB   # nested containers: marshalled blob
        return "ref", TEXT        # element objects stored by reference

    # ------------------------------------------------------------------
    def _materialize(self, schema: TypeSchema) -> None:
        if not self.db.has_table(schema.main_table):
            columns = [Column("oid", TEXT, nullable=False)]
            for mapping in schema.attributes:
                if mapping.column is None:
                    continue
                if mapping.kind in ("list", "map"):
                    column_type = INTEGER        # element count
                elif mapping.kind == "blob":
                    column_type = BLOB
                else:
                    column_type = _SCALAR_COLUMNS.get(mapping.attr_type,
                                                      TEXT)
                columns.append(Column(mapping.column, column_type))
            self.db.create_table(schema.main_table, columns,
                                 primary_key="oid")
            self.tables_created += 1
        for mapping in schema.attributes:
            if mapping.child_table and not self.db.has_table(
                    mapping.child_table):
                key_column = (Column("idx", INTEGER, nullable=False)
                              if mapping.kind == "list"
                              else Column("k", TEXT, nullable=False))
                self.db.create_table(mapping.child_table, [
                    Column("parent_oid", TEXT, nullable=False),
                    key_column,
                    Column("v", mapping.element_column_type),
                ])
                self.db.table(mapping.child_table).create_index("parent_oid")
                self.tables_created += 1
