"""A small in-memory relational engine.

The paper's Object Repository sits on "a commercially available
relational database system"; this module is our substitute substrate
(see DESIGN.md).  It is deliberately relational in the Codd sense the
paper leans on: "a database table is a flat structure composed of simple
data types" — typed columns, primary keys, hash indexes, and predicate
queries.  No SQL surface; the mapping layer drives it programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .query import Predicate, TRUE

__all__ = ["Column", "Database", "DatabaseError", "Table",
           "INTEGER", "REAL", "TEXT", "BOOLEAN", "BLOB"]

# column types (a flat structure of simple data types)
INTEGER = "integer"
REAL = "real"
TEXT = "text"
BOOLEAN = "boolean"
BLOB = "blob"

_PYTHON_TYPES = {
    INTEGER: int,
    REAL: (int, float),
    TEXT: str,
    BOOLEAN: bool,
    BLOB: bytes,
}


class DatabaseError(RuntimeError):
    """Schema violations, duplicate keys, unknown tables/columns."""


@dataclass(frozen=True)
class Column:
    """One typed column.  ``nullable`` columns accept None."""

    name: str
    type: str
    nullable: bool = True

    def __post_init__(self) -> None:
        if self.type not in _PYTHON_TYPES:
            raise DatabaseError(f"unknown column type {self.type!r}")

    def check(self, value: Any) -> None:
        if value is None:
            if not self.nullable:
                raise DatabaseError(f"column {self.name!r} is not nullable")
            return
        expected = _PYTHON_TYPES[self.type]
        if self.type == INTEGER and isinstance(value, bool):
            raise DatabaseError(
                f"column {self.name!r}: got bool for integer")
        if self.type == REAL and isinstance(value, bool):
            raise DatabaseError(f"column {self.name!r}: got bool for real")
        if not isinstance(value, expected):
            raise DatabaseError(
                f"column {self.name!r} ({self.type}): bad value {value!r}")


class Table:
    """Rows are dicts keyed by column name; missing columns read as None."""

    def __init__(self, name: str, columns: Sequence[Column],
                 primary_key: Optional[str] = None):
        if not columns:
            raise DatabaseError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns: Dict[str, Column] = {}
        for column in columns:
            if column.name in self.columns:
                raise DatabaseError(
                    f"table {name!r}: duplicate column {column.name!r}")
            self.columns[column.name] = column
        if primary_key is not None and primary_key not in self.columns:
            raise DatabaseError(
                f"table {name!r}: unknown primary key {primary_key!r}")
        self.primary_key = primary_key
        self._rows: List[Dict[str, Any]] = []
        self._indexes: Dict[str, Dict[Any, List[int]]] = {}
        if primary_key is not None:
            self.create_index(primary_key)
        # statistics for benches / planner verification
        self.scans = 0
        self.index_lookups = 0

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def add_column(self, column: Column) -> None:
        """Online schema extension (dynamic system evolution support)."""
        if column.name in self.columns:
            raise DatabaseError(
                f"table {self.name!r}: column {column.name!r} exists")
        self.columns[column.name] = column

    def column_names(self) -> List[str]:
        return list(self.columns)

    def create_index(self, column: str) -> None:
        if column not in self.columns:
            raise DatabaseError(
                f"table {self.name!r}: cannot index unknown column "
                f"{column!r}")
        if column in self._indexes:
            return
        index: Dict[Any, List[int]] = {}
        for position, row in enumerate(self._rows):
            index.setdefault(row.get(column), []).append(position)
        self._indexes[column] = index

    def indexed_columns(self) -> List[str]:
        return sorted(self._indexes)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Dict[str, Any]) -> None:
        checked = self._check_row(row)
        if self.primary_key is not None:
            key = checked.get(self.primary_key)
            if key is None:
                raise DatabaseError(
                    f"table {self.name!r}: missing primary key")
            if self._indexes[self.primary_key].get(key):
                raise DatabaseError(
                    f"table {self.name!r}: duplicate key {key!r}")
        position = len(self._rows)
        self._rows.append(checked)
        for column, index in self._indexes.items():
            index.setdefault(checked.get(column), []).append(position)

    def upsert(self, row: Dict[str, Any]) -> None:
        """Insert, replacing any row with the same primary key."""
        if self.primary_key is None:
            raise DatabaseError(
                f"table {self.name!r}: upsert needs a primary key")
        key = row.get(self.primary_key)
        self.delete(self._pk_predicate(key))
        self.insert(row)

    def delete(self, predicate: Predicate = TRUE) -> int:
        """Delete matching rows; returns how many went away."""
        doomed = [row for row in self._iter_candidates(predicate)
                  if predicate.matches(row)]
        if not doomed:
            return 0
        removed_ids = {id(row) for row in doomed}
        self._rows = [row for row in self._rows
                      if id(row) not in removed_ids]
        self._rebuild_indexes()
        return len(removed_ids)

    def update(self, predicate: Predicate, changes: Dict[str, Any]) -> int:
        """Apply ``changes`` to matching rows; returns how many changed."""
        for name, value in changes.items():
            column = self.columns.get(name)
            if column is None:
                raise DatabaseError(
                    f"table {self.name!r}: unknown column {name!r}")
            column.check(value)
        touched = 0
        for row in self._rows:
            if predicate.matches(row):
                row.update(changes)
                touched += 1
        if touched:
            self._rebuild_indexes()
        return touched

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def select(self, predicate: Predicate = TRUE) -> List[Dict[str, Any]]:
        """Matching rows (copies — callers cannot corrupt the table)."""
        return [dict(row) for row in self._iter_candidates(predicate)
                if predicate.matches(row)]

    def get(self, key: Any) -> Optional[Dict[str, Any]]:
        """Primary-key point lookup."""
        if self.primary_key is None:
            raise DatabaseError(f"table {self.name!r} has no primary key")
        rows = self.select(self._pk_predicate(key))
        return rows[0] if rows else None

    def count(self, predicate: Predicate = TRUE) -> int:
        if predicate is TRUE:
            return len(self._rows)
        return sum(1 for row in self._iter_candidates(predicate)
                   if predicate.matches(row))

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pk_predicate(self, key: Any) -> Predicate:
        from .query import Eq
        return Eq(self.primary_key, key)

    def _check_row(self, row: Dict[str, Any]) -> Dict[str, Any]:
        checked: Dict[str, Any] = {}
        for name, value in row.items():
            column = self.columns.get(name)
            if column is None:
                raise DatabaseError(
                    f"table {self.name!r}: unknown column {name!r}")
            column.check(value)
            checked[name] = value
        return checked

    def _iter_candidates(self, predicate: Predicate) -> Iterable[Dict[str, Any]]:
        """Use a hash index when the predicate pins an indexed column."""
        hint = predicate.index_hint()
        if hint is not None:
            column, value = hint
            index = self._indexes.get(column)
            if index is not None:
                self.index_lookups += 1
                return [self._rows[pos] for pos in index.get(value, [])]
        self.scans += 1
        return list(self._rows)

    def _rebuild_indexes(self) -> None:
        for column in self._indexes:
            index: Dict[Any, List[int]] = {}
            for position, row in enumerate(self._rows):
                index.setdefault(row.get(column), []).append(position)
            self._indexes[column] = index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Table {self.name} rows={len(self._rows)}>"


class Database:
    """A named collection of tables."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[Column],
                     primary_key: Optional[str] = None) -> Table:
        if name in self._tables:
            raise DatabaseError(f"table {name!r} already exists")
        table = Table(name, columns, primary_key)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise DatabaseError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise DatabaseError(f"no such table: {name!r}")
        del self._tables[name]

    def tables(self) -> List[str]:
        return sorted(self._tables)

    def total_rows(self) -> int:
        return sum(len(t) for t in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Database {self.name} tables={len(self._tables)}>"
