"""The Object Repository as a bus application.

Section 4: "it may be configured as a capture server that captures all
objects for a given set of subjects and inserts those objects
automatically into the repository under those subjects; it may also be
configured as a query server to receive requests from clients and return
replies."  This module is the capture configuration; see
:mod:`repro.repository.query_server` for the other.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core import BusClient, MessageInfo
from ..objects import DataObject, decode, encode
from .object_store import ObjectStore
from .relational import Database

__all__ = ["CaptureServer"]

#: Stable-storage log holding the capture server's write-ahead records.
_WAL_LOG = "repo.wal"


class CaptureServer:
    """Subscribes to subjects and inserts every received object.

    The subscription is *durable* by default, so publishers using
    guaranteed delivery get their "sending data to a database over an
    unreliable network" semantics: the capture server acknowledges each
    message only after it is stored.

    Thanks to P2 and dynamic schema generation, the capture server needs
    no per-type code: "when the repository needs to store an instance of
    a previously unknown type, it is capable of generating one or more
    new database tables to represent the new type."

    Durability: the paper's repository sits on a commercial RDBMS whose
    storage survives crashes; our in-memory relational engine does not.
    ``persistent=True`` (the default) closes that gap with a write-ahead
    log in the host's stable storage — each object's wire encoding is
    logged before the store is updated, and :meth:`recover` (invoked
    automatically when the host comes back up) replays it.  Without
    this, acknowledging a guaranteed message and then crashing would
    lose data the publisher believes is safely in the database.
    """

    def __init__(self, client: BusClient, subjects: List[str],
                 db: Optional[Database] = None, durable: bool = True,
                 store_subject: bool = True, persistent: bool = True):
        self.client = client
        self.db = db or Database(f"{client.id}.capture")
        self.store = ObjectStore(self.db, client.registry)
        self.store_subject = store_subject
        self.persistent = persistent
        self.captured = 0
        self.skipped = 0
        self.replayed = 0
        #: subject each oid arrived under (the "under those subjects" part)
        self._subjects_by_oid: Dict[str, str] = {}
        self._subscriptions = [
            client.subscribe(pattern, self._on_message, durable=durable)
            for pattern in subjects]
        if persistent:
            client.host.on_recover(self.recover)
            if client.host.stable.log_length(_WAL_LOG):
                self.recover()   # a previous incarnation left data

    def _on_message(self, subject: str, obj: Any, info: MessageInfo) -> None:
        if not isinstance(obj, DataObject):
            self.skipped += 1   # scalar payloads are not repository food
            return
        if self.persistent:
            # log before store: the guaranteed-delivery ack (sent by the
            # daemon after this callback) must imply durability
            self.client.host.stable.append(_WAL_LOG, {
                "subject": subject,
                # self-contained on purpose: WAL entries are decoded
                # during recovery, long after the publishing session
                # (and its type-plane ids) are gone
                "wire": encode(obj, self.client.registry,
                               inline_types=True)})
        oid = self.store.store(obj)
        if self.store_subject:
            self._subjects_by_oid[oid] = subject
        self.captured += 1

    def recover(self) -> None:
        """Rebuild the in-memory database from the write-ahead log.

        Resets the existing :class:`ObjectStore` *in place*, so query
        servers and other holders of the store reference read the
        recovered state, not a stale snapshot.
        """
        if not self.persistent:
            return
        self.store.reset(Database(f"{self.client.id}.capture"))
        self.db = self.store.db
        self._subjects_by_oid.clear()
        self.replayed = 0
        for record in self.client.host.stable.iter_log(_WAL_LOG):
            obj = decode(record["wire"], self.client.registry)
            oid = self.store.store(obj)
            if self.store_subject:
                self._subjects_by_oid[oid] = record["subject"]
            self.replayed += 1

    def subject_of(self, oid: str) -> Optional[str]:
        return self._subjects_by_oid.get(oid)

    def stop(self) -> None:
        for subscription in self._subscriptions:
            self.client.unsubscribe(subscription)
        self._subscriptions = []
