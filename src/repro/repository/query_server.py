"""The Object Repository's query-server configuration.

Exposes the store over RMI as a self-describing service: clients discover
it by subject, browse its interface through the meta-object protocol, and
query objects back — including instances of subtypes introduced after the
server started (Section 5.2's evolution scenario).
"""

from __future__ import annotations

from ..core import BusClient, RmiServer
from ..objects import (OperationSpec, ParamSpec, ServiceObject,
                       TypeDescriptor)
from .object_store import ObjectStore

__all__ = ["QUERY_SERVICE_TYPE", "QueryServer", "register_query_interface"]

#: The service type name under which query servers describe themselves.
QUERY_SERVICE_TYPE = "repository_query_service"


def register_query_interface(registry) -> None:
    """Register the query service's interface type (idempotent)."""
    if registry.has(QUERY_SERVICE_TYPE):
        return
    registry.register(TypeDescriptor(
        QUERY_SERVICE_TYPE,
        operations=[
            OperationSpec(
                "find",
                params=(ParamSpec("type_name", "string"),
                        ParamSpec("attribute", "string"),
                        ParamSpec("value", "any")),
                result_type="list<object>",
                doc="objects of type_name (or subtypes) whose attribute "
                    "equals value"),
            OperationSpec(
                "find_all",
                params=(ParamSpec("type_name", "string"),),
                result_type="list<object>",
                doc="every stored object of type_name (or subtypes)"),
            OperationSpec(
                "find_where",
                params=(ParamSpec("type_name", "string"),
                        ParamSpec("predicate", "map<any>"),
                        ParamSpec("order_by", "string"),
                        ParamSpec("limit", "int")),
                result_type="list<object>",
                doc="objects matching a serialized predicate tree "
                    "(see repro.repository.predicate_to_wire); "
                    "order_by '' for unordered, limit 0 for no limit"),
            OperationSpec(
                "fetch",
                params=(ParamSpec("oid", "string"),),
                result_type="object",
                doc="the object stored under oid"),
            OperationSpec(
                "tally",
                params=(ParamSpec("type_name", "string"),),
                result_type="int",
                doc="how many objects of type_name (or subtypes) exist"),
            OperationSpec(
                "stored_types",
                result_type="list<string>",
                doc="type names with at least one materialized schema"),
        ],
        doc="query access to the Object Repository"))


class QueryServer:
    """Wraps an :class:`ObjectStore` in an RMI service on a subject."""

    def __init__(self, client: BusClient, store: ObjectStore,
                 service_subject: str = "svc.repository",
                 rank: int = 0, exclusive: bool = False):
        self.client = client
        self.store = store
        register_query_interface(client.registry)
        service = ServiceObject(client.registry, QUERY_SERVICE_TYPE)
        service.implement("find", self._find)
        service.implement("find_all", self._find_all)
        service.implement("find_where", self._find_where)
        service.implement("fetch", self._fetch)
        service.implement("tally", self._tally)
        service.implement("stored_types", self._stored_types)
        self.rmi = RmiServer(client, service_subject, service, rank=rank,
                             exclusive=exclusive)

    def _find(self, type_name: str, attribute: str, value):
        return self.store.query(type_name, **{attribute: value})

    def _find_all(self, type_name: str):
        return self.store.query(type_name)

    def _find_where(self, type_name: str, predicate: dict,
                    order_by: str, limit: int):
        from .query import predicate_from_wire
        return self.store.query(
            type_name, predicate=predicate_from_wire(predicate),
            order_by=order_by or None,
            limit=limit if limit > 0 else None)

    def _fetch(self, oid: str):
        return self.store.load(oid)

    def _tally(self, type_name: str) -> int:
        return self.store.count(type_name)

    def _stored_types(self):
        return self.store.mapper.known_schemas()

    def stop(self) -> None:
        self.rmi.stop()
