"""Predicate combinators for the relational engine.

The engine has no SQL parser — queries are programmatic predicate trees,
which is all the Object Repository's mapping layer needs.  Predicates
evaluate against a row (a plain dict) and can report an equality
constraint on a column so the planner can use a hash index.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["And", "Contains", "Eq", "Ge", "Gt", "In", "Le", "Lt", "Ne",
           "Not", "Or", "Predicate", "TRUE", "predicate_from_wire",
           "predicate_to_wire"]

Row = Dict[str, Any]


class Predicate:
    """Base class; subclasses implement :meth:`matches`."""

    def matches(self, row: Row) -> bool:
        raise NotImplementedError

    def index_hint(self) -> Optional[Tuple[str, Any]]:
        """``(column, value)`` if this predicate pins a column to one
        value (used by the planner); None otherwise."""
        return None

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


class _True(Predicate):
    def matches(self, row: Row) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


#: The match-everything predicate.
TRUE = _True()


class _Comparison(Predicate):
    op = "?"

    def __init__(self, column: str, value: Any):
        self.column = column
        self.value = value

    def __repr__(self) -> str:
        return f"({self.column} {self.op} {self.value!r})"


class Eq(_Comparison):
    op = "="

    def matches(self, row: Row) -> bool:
        return row.get(self.column) == self.value

    def index_hint(self) -> Optional[Tuple[str, Any]]:
        return (self.column, self.value)


class Ne(_Comparison):
    op = "!="

    def matches(self, row: Row) -> bool:
        return row.get(self.column) != self.value


class _Ordered(_Comparison):
    def _cmp(self, row: Row) -> Optional[int]:
        value = row.get(self.column)
        if value is None:
            return None
        try:
            if value < self.value:
                return -1
            if value > self.value:
                return 1
            return 0
        except TypeError:
            return None


class Lt(_Ordered):
    op = "<"

    def matches(self, row: Row) -> bool:
        return self._cmp(row) == -1


class Le(_Ordered):
    op = "<="

    def matches(self, row: Row) -> bool:
        return self._cmp(row) in (-1, 0)


class Gt(_Ordered):
    op = ">"

    def matches(self, row: Row) -> bool:
        return self._cmp(row) == 1


class Ge(_Ordered):
    op = ">="

    def matches(self, row: Row) -> bool:
        return self._cmp(row) in (0, 1)


class In(Predicate):
    """Column value is one of a fixed set."""

    def __init__(self, column: str, values: Sequence[Any]):
        self.column = column
        self.values = set(values)

    def matches(self, row: Row) -> bool:
        return row.get(self.column) in self.values

    def __repr__(self) -> str:
        return f"({self.column} in {sorted(map(repr, self.values))})"


class Contains(Predicate):
    """Substring match on a text column (the Keyword Generator's friend)."""

    def __init__(self, column: str, needle: str):
        self.column = column
        self.needle = needle

    def matches(self, row: Row) -> bool:
        value = row.get(self.column)
        return isinstance(value, str) and self.needle in value

    def __repr__(self) -> str:
        return f"({self.column} contains {self.needle!r})"


class And(Predicate):
    def __init__(self, *parts: Predicate):
        self.parts: List[Predicate] = list(parts)

    def matches(self, row: Row) -> bool:
        return all(p.matches(row) for p in self.parts)

    def index_hint(self) -> Optional[Tuple[str, Any]]:
        for part in self.parts:
            hint = part.index_hint()
            if hint is not None:
                return hint
        return None

    def __repr__(self) -> str:
        return "(" + " and ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    def __init__(self, *parts: Predicate):
        self.parts: List[Predicate] = list(parts)

    def matches(self, row: Row) -> bool:
        return any(p.matches(row) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " or ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    def __init__(self, part: Predicate):
        self.part = part

    def matches(self, row: Row) -> bool:
        return not self.part.matches(row)

    def __repr__(self) -> str:
        return f"(not {self.part!r})"


# ----------------------------------------------------------------------
# wire form (predicates over RMI)
# ----------------------------------------------------------------------

def predicate_to_wire(predicate: "Predicate") -> dict:
    """A marshallable dict form of a predicate tree.

    Lets clients ship rich query conditions to a repository query server
    over RMI (see :meth:`repro.repository.query_server.QueryServer`).
    """
    if predicate is TRUE:
        return {"op": "true"}
    if isinstance(predicate, (And, Or)):
        return {"op": "and" if isinstance(predicate, And) else "or",
                "parts": [predicate_to_wire(p) for p in predicate.parts]}
    if isinstance(predicate, Not):
        return {"op": "not", "part": predicate_to_wire(predicate.part)}
    if isinstance(predicate, In):
        return {"op": "in", "column": predicate.column,
                "values": sorted(predicate.values, key=repr)}
    if isinstance(predicate, Contains):
        return {"op": "contains", "column": predicate.column,
                "value": predicate.needle}
    if isinstance(predicate, _Comparison):
        ops = {Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge"}
        return {"op": ops[type(predicate)], "column": predicate.column,
                "value": predicate.value}
    raise ValueError(f"cannot serialize predicate {predicate!r}")


def predicate_from_wire(data: dict) -> "Predicate":
    """Inverse of :func:`predicate_to_wire`.  Raises on malformed input."""
    if not isinstance(data, dict) or "op" not in data:
        raise ValueError(f"malformed predicate wire form: {data!r}")
    op = data["op"]
    if op == "true":
        return TRUE
    if op in ("and", "or"):
        parts = [predicate_from_wire(p) for p in data.get("parts", [])]
        return And(*parts) if op == "and" else Or(*parts)
    if op == "not":
        return Not(predicate_from_wire(data["part"]))
    if op == "in":
        return In(data["column"], data["values"])
    if op == "contains":
        return Contains(data["column"], data["value"])
    simple = {"eq": Eq, "ne": Ne, "lt": Lt, "le": Le, "gt": Gt, "ge": Ge}
    if op in simple:
        return simple[op](data["column"], data["value"])
    raise ValueError(f"unknown predicate op {op!r}")
