"""The Object Repository's storage engine: store, load, and query
DataObjects over the relational substrate.

Users "work freely in the object model without concerning themselves with
the relational data model" (Section 4): :meth:`ObjectStore.store` takes a
:class:`~repro.objects.data_object.DataObject`, decomposes it per the
:class:`~repro.repository.schema_mapper.SchemaMapper`, and
:meth:`ObjectStore.query` reconstructs full objects — including
instances of subtypes, so "old queries will still work even as new
subtypes are introduced".
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..objects import DataObject, TypeRegistry, decode, encode
from .query import And, Eq, Predicate, TRUE
from .relational import Database
from .schema_mapper import DIRECTORY_TABLE, AttributeMapping, SchemaMapper, TypeSchema

__all__ = ["ObjectStore", "StoreError"]


class StoreError(RuntimeError):
    """Bad store/load/query request."""


class ObjectStore:
    """Object persistence over :class:`~repro.repository.relational.Database`."""

    def __init__(self, db: Database, registry: TypeRegistry,
                 eager_schema: bool = False):
        self.db = db
        self.registry = registry
        self.mapper = SchemaMapper(db, registry)
        self.objects_stored = 0
        if eager_schema:
            # generate schema immediately whenever a new type appears
            registry.on_register(
                lambda descriptor: self.mapper.schema_for(descriptor.name))

    def reset(self, db: Optional[Database] = None) -> None:
        """Discard all stored data, swapping in a fresh database.

        In place, so every component holding a reference to this store
        (e.g. a query server) sees the new state — used by the capture
        server's crash recovery before replaying its write-ahead log.
        """
        self.db = db if db is not None else Database(self.db.name)
        self.mapper = SchemaMapper(self.db, self.registry)
        self.objects_stored = 0

    # ------------------------------------------------------------------
    # store
    # ------------------------------------------------------------------
    def store(self, obj: DataObject) -> str:
        """Persist ``obj`` (and, recursively, nested objects); returns oid.

        Storing an object whose oid already exists replaces it.
        """
        if not isinstance(obj, DataObject):
            raise StoreError(f"can only store DataObjects, got {obj!r}")
        schema = self.mapper.schema_for(obj.type_name)
        self._delete_rows(obj.oid, schema)
        row: Dict[str, Any] = {"oid": obj.oid}
        for mapping in schema.attributes:
            value = obj.get(mapping.attr_name) if obj.has(mapping.attr_name) \
                else None
            self._store_attribute(obj, mapping, value, row)
        self.db.table(schema.main_table).insert(row)
        directory = self.db.table(DIRECTORY_TABLE)
        directory.upsert({"oid": obj.oid, "type_name": obj.type_name})
        self.objects_stored += 1
        return obj.oid

    def _store_attribute(self, obj: DataObject, mapping: AttributeMapping,
                         value: Any, row: Dict[str, Any]) -> None:
        if mapping.kind == "scalar":
            row[mapping.column] = value
        elif mapping.kind == "blob":
            # blobs are self-contained on purpose: stored rows outlive
            # every bus session, so they never use type-plane ids
            row[mapping.column] = None if value is None else \
                encode(value, self.registry, inline_types=True)
        elif mapping.kind == "ref":
            if value is None:
                row[mapping.column] = None
            else:
                self.store(value)   # recursive decomposition
                row[mapping.column] = value.oid
        elif mapping.kind in ("list", "map"):
            row[mapping.column] = None if value is None else len(value)
            table = self.db.table(mapping.child_table)
            items = [] if value is None else (
                list(enumerate(value)) if mapping.kind == "list"
                else sorted(value.items()))
            for key, item in items:
                child_row = {"parent_oid": obj.oid,
                             ("idx" if mapping.kind == "list" else "k"): key}
                child_row["v"] = self._store_element(mapping, item)
                table.insert(child_row)

    def _store_element(self, mapping: AttributeMapping, item: Any) -> Any:
        if mapping.element_kind == "scalar":
            return item
        if mapping.element_kind == "blob":
            # self-contained, same as _store_attribute blob columns
            return encode(item, self.registry, inline_types=True)
        self.store(item)   # element objects stored by reference
        return item.oid

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load(self, oid: str) -> DataObject:
        """Reconstruct the object stored under ``oid``."""
        entry = self.db.table(DIRECTORY_TABLE).get(oid)
        if entry is None:
            raise StoreError(f"no object with oid {oid!r}")
        return self._load_as(entry["type_name"], oid)

    def exists(self, oid: str) -> bool:
        return self.db.table(DIRECTORY_TABLE).get(oid) is not None

    def _load_as(self, type_name: str, oid: str) -> DataObject:
        schema = self.mapper.schema_for(type_name)
        row = self.db.table(schema.main_table).get(oid)
        if row is None:
            raise StoreError(
                f"directory names {oid!r} as {type_name!r} but its row "
                f"is missing")
        return self._reconstruct(schema, row)

    def _reconstruct(self, schema: TypeSchema,
                     row: Dict[str, Any]) -> DataObject:
        attrs: Dict[str, Any] = {}
        for mapping in schema.attributes:
            value = self._load_attribute(row, mapping)
            if value is not None:
                attrs[mapping.attr_name] = value
        return DataObject(self.registry, schema.type_name, attrs,
                          oid=row["oid"])

    def _load_attribute(self, row: Dict[str, Any],
                        mapping: AttributeMapping) -> Any:
        if mapping.kind == "scalar":
            return row.get(mapping.column)
        if mapping.kind == "blob":
            blob = row.get(mapping.column)
            return None if blob is None else decode(blob, self.registry)
        if mapping.kind == "ref":
            child_oid = row.get(mapping.column)
            return None if child_oid is None else self.load(child_oid)
        if row.get(mapping.column) is None:
            return None                      # attribute was never set
        table = self.db.table(mapping.child_table)
        children = table.select(Eq("parent_oid", row["oid"]))
        if mapping.kind == "list":
            children.sort(key=lambda c: c["idx"])
            return [self._load_element(mapping, c["v"]) for c in children]
        return {c["k"]: self._load_element(mapping, c["v"])
                for c in children}

    def _load_element(self, mapping: AttributeMapping, value: Any) -> Any:
        if mapping.element_kind == "scalar":
            return value
        if mapping.element_kind == "blob":
            return decode(value, self.registry)
        return self.load(value)

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def query(self, type_name: str, predicate: Optional[Predicate] = None,
              include_subtypes: bool = True,
              order_by: Optional[str] = None, descending: bool = False,
              limit: Optional[int] = None,
              **attr_equals: Any) -> List[DataObject]:
        """All stored objects of ``type_name`` matching the constraints.

        ``attr_equals`` are equality constraints on attribute names;
        ``predicate`` (over attribute names) allows richer conditions.
        With ``include_subtypes`` (the default, matching the paper),
        instances of registered subtypes are returned too.  ``order_by``
        sorts on a directly-queryable attribute (unset values last);
        ``limit`` truncates after ordering.
        """
        self.registry.get(type_name)
        type_names = [type_name]
        if include_subtypes:
            type_names += self.registry.subtypes_of(type_name)
        out: List[DataObject] = []
        for concrete in type_names:
            schema = self.mapper.schema_for(concrete)
            table = self.db.table(schema.main_table)
            translated = self._translate(schema, predicate, attr_equals)
            if order_by is not None:
                self._queryable_column(schema, order_by)  # validate early
            for row in table.select(translated):
                out.append(self._reconstruct(schema, row))
        if order_by is not None:
            # unset values go last regardless of direction (NULLS LAST)
            have = [o for o in out if o.get(order_by) is not None]
            lack = [o for o in out if o.get(order_by) is None]
            have.sort(key=lambda o: o.get(order_by), reverse=descending)
            out = have + lack
        if limit is not None:
            out = out[:max(0, limit)]
        return out

    def create_attribute_index(self, type_name: str, attr: str,
                               include_subtypes: bool = True) -> None:
        """Hash-index equality queries on ``attr`` for ``type_name`` (and
        its subtypes' tables)."""
        type_names = [type_name]
        if include_subtypes:
            type_names += self.registry.subtypes_of(type_name)
        for concrete in type_names:
            schema = self.mapper.schema_for(concrete)
            column = self._queryable_column(schema, attr)
            self.db.table(schema.main_table).create_index(column)

    def count(self, type_name: str, include_subtypes: bool = True) -> int:
        self.registry.get(type_name)
        type_names = [type_name]
        if include_subtypes:
            type_names += self.registry.subtypes_of(type_name)
        total = 0
        for concrete in type_names:
            schema = self.mapper.schema_for(concrete)
            total += self.db.table(schema.main_table).count()
        return total

    def delete(self, oid: str) -> bool:
        """Remove the object's own rows (nested objects are left alone —
        they may be shared)."""
        entry = self.db.table(DIRECTORY_TABLE).get(oid)
        if entry is None:
            return False
        schema = self.mapper.schema_for(entry["type_name"])
        self._delete_rows(oid, schema)
        self.db.table(DIRECTORY_TABLE).delete(Eq("oid", oid))
        return True

    def _delete_rows(self, oid: str, schema: TypeSchema) -> None:
        self.db.table(schema.main_table).delete(Eq("oid", oid))
        for mapping in schema.attributes:
            if mapping.child_table:
                self.db.table(mapping.child_table).delete(
                    Eq("parent_oid", oid))

    # ------------------------------------------------------------------
    def _translate(self, schema: TypeSchema,
                   predicate: Optional[Predicate],
                   attr_equals: Dict[str, Any]) -> Predicate:
        """Rewrite attribute-level predicates into column-level ones."""
        parts: List[Predicate] = []
        for attr, value in attr_equals.items():
            column = self._queryable_column(schema, attr)
            if isinstance(value, DataObject):
                value = value.oid   # reference equality by oid
            parts.append(Eq(column, value))
        if predicate is not None:
            parts.append(self._rewrite(schema, predicate))
        if not parts:
            return TRUE
        if len(parts) == 1:
            return parts[0]
        return And(*parts)

    def _rewrite(self, schema: TypeSchema,
                 predicate: Predicate) -> Predicate:
        from .query import And as AndP, Not as NotP, Or as OrP
        if isinstance(predicate, AndP):
            return AndP(*[self._rewrite(schema, p) for p in predicate.parts])
        if isinstance(predicate, OrP):
            return OrP(*[self._rewrite(schema, p) for p in predicate.parts])
        if isinstance(predicate, NotP):
            return NotP(self._rewrite(schema, predicate.part))
        column_attr = getattr(predicate, "column", None)
        if column_attr is None:
            return predicate
        column = self._queryable_column(schema, column_attr)
        clone = predicate.__class__.__new__(predicate.__class__)
        clone.__dict__.update(predicate.__dict__)
        clone.column = column
        return clone

    def _queryable_column(self, schema: TypeSchema, attr: str) -> str:
        """The main-table column for ``attr``; containers live in child
        tables and are not directly queryable."""
        mapping = schema.mapping(attr)
        if mapping is None or mapping.kind in ("list", "map"):
            raise StoreError(
                f"type {schema.type_name!r}: attribute {attr!r} is "
                f"not directly queryable")
        return mapping.column
