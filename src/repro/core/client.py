"""The application-facing bus API.

A :class:`BusClient` is one application registered with its host's
daemon.  It owns a :class:`~repro.objects.registry.TypeRegistry` — *its
own* view of the type universe, which grows as messages carrying inline
type metadata arrive (P2/P3 in action) — and exposes the two calls the
paper's model revolves around: :meth:`publish` and :meth:`subscribe`.

Consumers "need not know who produces the objects, and producers need
not know who consumes" (P4): nothing in this API names a peer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import itertools

from ..objects import (TypeRegistry, decode, encode, encode_typed,
                       standard_registry)
from .daemon import BusDaemon
from .flow import PublishReceipt
from .message import Envelope, MessageInfo, QoS
from .subjects import SubjectTrie, validate_pattern

__all__ = ["BusClient", "Subscription"]

#: Callback signature: (subject, decoded object, delivery metadata).
MessageHandler = Callable[[str, Any, MessageInfo], None]

_subscription_seq = itertools.count(1)


@dataclass(eq=False)
class Subscription:
    """A live subscription; pass back to :meth:`BusClient.unsubscribe`.

    Identity semantics (``eq=False``): two subscriptions with the same
    pattern are distinct registrations, and each keeps its callback.
    """

    pattern: str
    callback: MessageHandler
    durable: bool = False
    active: bool = True
    seq: int = 0

    def __post_init__(self) -> None:
        self.seq = next(_subscription_seq)


class BusClient:
    """One application's handle on the Information Bus."""

    def __init__(self, daemon: BusDaemon, name: str,
                 registry: Optional[TypeRegistry] = None,
                 service_time: float = 0.0):
        self.daemon = daemon
        self.name = name
        self.registry = registry if registry is not None else standard_registry()
        self.id = f"{daemon.host.address}.{name}"
        #: simulated seconds this application takes to consume one
        #: message (read by the daemon when it builds the delivery lane;
        #: 0 = instant, the synchronous fast path)
        self.service_time = max(0.0, service_time)
        self._subscriptions: List[Subscription] = []
        # client-side dispatch trie: pattern -> Subscription objects.
        # Matching a delivery costs O(subject depth), not O(#subs) —
        # essential when an app subscribes to thousands of subjects
        # (the Figure 8 workload).
        self._dispatch: SubjectTrie = SubjectTrie(
            memo_capacity=daemon.config.match_memo_capacity)
        # refcount of daemon-level registrations per (pattern, durable)
        self._registered: Dict[tuple, int] = {}
        self.messages_published = 0
        self.messages_received = 0
        self.decode_errors = 0
        self.last_error: Optional[Exception] = None
        #: publish-to-callback latency histogram, owned by the daemon's
        #: registry (``client.<name>.latency``); attach_client wires it
        self._latency = None
        daemon.attach_client(self)

    @property
    def sim(self):
        return self.daemon.sim

    @property
    def host(self):
        return self.daemon.host

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(self, subject: str, obj: Any, qos: QoS = QoS.RELIABLE,
                inline_types: Optional[bool] = None,
                via: tuple = ()) -> PublishReceipt:
        """Marshal ``obj`` and publish it under ``subject``.

        Returns a :class:`~repro.core.flow.PublishReceipt` — truthy when
        the message was admitted, with ``receipt.size`` the payload
        bytes.  A falsy receipt means the outbound pipeline deferred or
        dropped the publish (see :meth:`on_flow_credit` to learn when to
        retry).  ``inline_types`` defaults to the bus config (normally
        True, so receivers can learn new types); with the session type
        plane on (``BusConfig.type_plane``) that default is served by
        :func:`~repro.objects.marshal.encode_typed` instead — receivers
        still learn types, from typedefs riding the wire frames once per
        session rather than inline in every payload.  An explicit
        ``inline_types=`` argument always gets the requested
        self-contained (or bare) encoding.  Guaranteed publishes stay
        inline regardless: their ledgered payloads are retransmitted
        across daemon restarts, outliving the session the type ids are
        scoped to.  ``via`` is for information routers re-publishing
        forwarded traffic; ordinary applications leave it empty.
        """
        if inline_types is None:
            inline_types = self.daemon.config.inline_types
            if inline_types and qos is not QoS.GUARANTEED:
                # ask by subject: on a sharded daemon each plane owns
                # its own session type table, and the payload must
                # reference ids defined on the plane that carries it
                table = self.daemon.type_table_for(subject)
                if table is not None:
                    payload, type_refs = encode_typed(
                        obj, self.registry, table)
                    receipt = self.daemon.publish(
                        self.id, subject, payload, qos, via=via,
                        type_refs=type_refs)
                    if receipt.accepted:
                        self.messages_published += 1
                    return receipt
        payload = encode(obj, self.registry, inline_types=inline_types)
        receipt = self.daemon.publish(self.id, subject, payload, qos,
                                      via=via)
        if receipt.accepted:
            self.messages_published += 1
        return receipt

    def publish_bytes(self, subject: str, payload: bytes,
                      qos: QoS = QoS.RELIABLE) -> PublishReceipt:
        """Publish a pre-marshalled payload (benchmark hot path)."""
        receipt = self.daemon.publish(self.id, subject, payload, qos)
        if receipt.accepted:
            self.messages_published += 1
        return receipt

    # ------------------------------------------------------------------
    # subscribing
    # ------------------------------------------------------------------
    def subscribe(self, pattern: str, callback: MessageHandler,
                  durable: bool = False) -> Subscription:
        """Receive every message whose subject matches ``pattern``.

        ``durable=True`` marks this a guaranteed-delivery consumer: the
        daemon acknowledges matching guaranteed messages after logging
        them, and dedupes redeliveries across crashes.
        """
        validate_pattern(pattern)
        subscription = Subscription(pattern, callback, durable)
        self._subscriptions.append(subscription)
        self._dispatch.insert(pattern, subscription)
        key = (pattern, durable)
        if self._registered.get(key, 0) == 0:
            self.daemon.add_subscription(pattern, self, durable)
        self._registered[key] = self._registered.get(key, 0) + 1
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        if not subscription.active:
            return
        subscription.active = False
        self._subscriptions.remove(subscription)
        self._dispatch.remove(subscription.pattern, subscription)
        key = (subscription.pattern, subscription.durable)
        remaining = self._registered.get(key, 0) - 1
        if remaining <= 0:
            self._registered.pop(key, None)
            self.daemon.remove_subscription(subscription.pattern, self,
                                            subscription.durable)
        else:
            self._registered[key] = remaining

    def subscriptions(self) -> List[Subscription]:
        return list(self._subscriptions)

    # ------------------------------------------------------------------
    # flow control
    # ------------------------------------------------------------------
    def set_service_time(self, service_time: float) -> None:
        """Model this application's consume rate (seconds per message)."""
        self.service_time = max(0.0, service_time)
        self.daemon.set_client_service_time(self.name, self.service_time)

    def on_flow_credit(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the daemon's outbound queue drains after
        pushing back — the signal to retry a deferred publish."""
        self.daemon.on_publish_credit(callback)

    def delivery_stats(self) -> Dict[str, Any]:
        """This application's delivery-lane flow stats snapshot."""
        return self.daemon.flow_stats()[f"deliver[{self.name}]"]

    def close(self) -> None:
        """Unsubscribe everything and detach from the daemon."""
        for subscription in list(self._subscriptions):
            self.unsubscribe(subscription)
        self.daemon.detach_client(self)

    # ------------------------------------------------------------------
    # delivery (called by the daemon)
    # ------------------------------------------------------------------
    def _deliver(self, envelope: Envelope, retransmitted: bool) -> None:
        try:
            obj = decode(envelope.payload, self.registry,
                         type_resolver=self.daemon.type_resolver(
                             envelope.session))
        except Exception as error:   # unknown type, corrupt payload
            self.decode_errors += 1
            self.last_error = error
            return
        info = MessageInfo(
            subject=envelope.subject, sender=envelope.sender,
            session=envelope.session, seq=envelope.seq, qos=envelope.qos,
            publish_time=envelope.publish_time, deliver_time=self.sim.now,
            size=len(envelope.payload), retransmitted=retransmitted,
            via=envelope.via)
        matching = sorted(self._dispatch.match(envelope.subject),
                          key=lambda s: s.seq)
        delivered = False
        for subscription in matching:
            if subscription.active:
                delivered = True
                subscription.callback(envelope.subject, obj, info)
        if delivered:
            self.messages_received += 1
            # seq-0 envelopes are telemetry-plane self-traffic: they are
            # delivered but never measured (the no-echo invariant)
            if envelope.seq and self._latency is not None:
                self._latency.observe(self.sim.now - envelope.publish_time)

    def _reattach(self) -> None:
        """Re-register all subscriptions after the host recovered."""
        for (pattern, durable) in self._registered:
            self.daemon.add_subscription(pattern, self, durable)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BusClient {self.id} subs={len(self._subscriptions)}>"
