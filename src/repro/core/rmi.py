"""Remote method invocation (Section 3.3, Figure 2).

    "There are two parts to RMI: discovering the server object for a
    client, and establishing a connection to that server over which
    requests and replies will flow."

Discovery is the pub/sub protocol of Section 3.2 (see
:mod:`repro.core.discovery`); the connection is a point-to-point stream
(:class:`~repro.sim.transport.StreamManager`).  Servers are named with
subjects; "more than one server can respond to requests on a subject":

* ``policy="first"`` — use the first responder (lowest latency wins);
* ``policy="all"`` — "the client can receive every response from all of
  the servers and then decide" via a chooser function (default: least
  loaded);
* exclusive server groups — "the servers can decide among themselves
  which one will respond": group members exchange presence on a bus
  subject and only the current leader answers discovery.

Semantics: exactly-once under normal operation; at-most-once under
failures.  Servers dedupe by request id (a retried request is answered
from the reply cache, never re-executed); a client whose connection dies
mid-call reports the error instead of silently retrying.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..objects import ServiceObject, decode, encode
from ..objects.marshal import MarshalError
from ..sim.kernel import Event, PeriodicTimer
from ..sim.transport import StreamConnection, StreamManager
from .client import BusClient
from .discovery import DiscoveredService, Inquiry, Responder

__all__ = ["ExactlyOnceRmiClient", "RmiClient", "RmiError",
           "RmiServer", "ServerGroup"]

_ports = itertools.count(20000)
_request_ids = itertools.count(1)

#: Reserved subject on which servers announce their existence, so
#: directory tools can "examine the list of available services on the
#: Information Bus" (Section 5.1) without probing every subject.
SERVICE_ADVERT_SUBJECT = "_svc.advert"


class RmiError(Exception):
    """Remote invocation failure (timeout, no servers, remote exception)."""


class ServerGroup:
    """Server-side coordination: members elect who answers discovery.

    Each member publishes presence on ``_rmi.group.<subject>`` every
    ``presence_interval``; the live member with the lowest (rank, id)
    considers itself leader.  Membership expires after three missed
    presence periods, so leadership fails over when the leader crashes.
    """

    def __init__(self, client: BusClient, service_subject: str,
                 member_id: str, rank: int = 0,
                 presence_interval: float = 0.2):
        self.client = client
        self.member_id = member_id
        self.rank = rank
        self.presence_interval = presence_interval
        self._subject = f"_rmi.group.{service_subject}"
        self._peers: Dict[str, Tuple[int, float]] = {}   # id -> (rank, seen)
        self._subscription = client.subscribe(self._subject, self._on_presence)
        self._timer = PeriodicTimer(client.sim, presence_interval,
                                    self._announce, initial_delay=0.0,
                                    name="rmi.presence")

    def _announce(self) -> None:
        if not self.client.daemon.up:
            return   # fail-stop host: a dead member simply goes silent
        self.client.publish(self._subject,
                            {"member": self.member_id, "rank": self.rank})

    def _on_presence(self, subject: str, payload: Any, _info) -> None:
        if isinstance(payload, dict) and "member" in payload:
            self._peers[payload["member"]] = (payload.get("rank", 0),
                                              self.client.sim.now)

    def is_leader(self) -> bool:
        horizon = self.client.sim.now - 3 * self.presence_interval
        live = [(rank, member) for member, (rank, seen)
                in self._peers.items() if seen >= horizon]
        live.append((self.rank, self.member_id))
        return min(live) == (self.rank, self.member_id)

    def stop(self) -> None:
        self._timer.stop()
        self.client.unsubscribe(self._subscription)


class RmiServer:
    """Serves a :class:`~repro.objects.service.ServiceObject` on a subject."""

    def __init__(self, client: BusClient, service_subject: str,
                 service: ServiceObject, rank: int = 0,
                 exclusive: bool = False,
                 load: Optional[Callable[[], float]] = None,
                 durable_replies: bool = False):
        self.client = client
        self.service_subject = service_subject
        self.service = service
        self.rank = rank
        self.port = next(_ports)
        self.calls_served = 0
        #: with durable_replies, the dedupe cache survives crashes, so a
        #: retried request is never re-executed even across a server
        #: restart — the substrate for exactly-once RMI.
        self.durable_replies = durable_replies
        self._stable_key = f"rmi.replies.{service_subject}.{self.port}"
        self._load = load or (lambda: float(self.calls_served))
        self._streams = StreamManager(client.sim, client.host, self.port)
        self._streams.listen(self._on_accept)
        #: request id -> encoded reply bytes (marshalled once, replayed
        #: verbatim for duplicate requests)
        self._reply_cache: Dict[str, bytes] = {}
        if durable_replies:
            self._reply_cache = client.host.stable.get(self._stable_key, {})
        self._group: Optional[ServerGroup] = None
        if exclusive:
            self._group = ServerGroup(client, service_subject, client.id,
                                      rank)
        self._responder = Responder(
            client, service_subject, self._info,
            should_answer=lambda: (self._group is None
                                   or self._group.is_leader()))
        client.host.on_recover(self._on_host_recover)
        self._stopped = False
        self._announce("up")
        self._presence = PeriodicTimer(
            client.sim, 1.0, lambda: self._announce("presence"),
            name="rmi.svc-advert")

    def _announce(self, action: str) -> None:
        if not self.client.daemon.up:
            return
        self.client.publish(SERVICE_ADVERT_SUBJECT, {
            "action": action,
            "service": self.service_subject,
            "server": self.client.id,
            "interface_name": self.service.interface.name,
            "operations": sorted(op.name for op in
                                 self.service.operations()),
        })

    def _on_host_recover(self) -> None:
        """Rebind the point-to-point port and reload the durable cache."""
        if self._stopped:
            return
        self._streams = StreamManager(self.client.sim, self.client.host,
                                      self.port)
        self._streams.listen(self._on_accept)
        if self.durable_replies:
            self._reply_cache = self.client.host.stable.get(
                self._stable_key, {})

    @property
    def endpoint(self) -> Tuple[str, int]:
        return (self.client.host.address, self.port)

    def _info(self) -> Dict[str, Any]:
        return {
            "endpoint": list(self.endpoint),
            "rank": self.rank,
            "load": self._load(),
            "interface": self.service.describe(),
        }

    def stop(self) -> None:
        self._stopped = True
        self._presence.stop()
        if self.client.daemon.up:
            self._announce("down")
        self._responder.stop()
        if self._group is not None:
            self._group.stop()
        self._streams.close()

    # ------------------------------------------------------------------
    def _on_accept(self, conn: StreamConnection) -> None:
        conn.on_message = lambda data, size: self._on_request(conn, data)

    def _on_request(self, conn: StreamConnection, data: bytes) -> None:
        try:
            msg = decode(data, self.service.registry)
        except MarshalError:
            return
        if not isinstance(msg, dict) or msg.get("kind") != "call":
            return
        request_id = msg["request_id"]
        cached = self._reply_cache.get(request_id)
        if cached is not None:
            # duplicate request: at-most-once execution, answer from cache
            conn.send(cached)
            return
        try:
            args = decode(msg["args"], self.service.registry)
            result = self.service.invoke(msg["op"], args)
            # self-contained on purpose: replies are cached and replayed
            # to duplicate requests from *later* sessions, so they must
            # not reference session-scoped type-plane ids
            value = encode(result, self.service.registry, inline_types=True)
            reply = {"kind": "reply", "request_id": request_id,
                     "ok": True, "value": value}
        except Exception as error:
            reply = {"kind": "reply", "request_id": request_id,
                     "ok": False, "error": f"{type(error).__name__}: {error}"}
        encoded = encode(reply)
        tracer = self.client.daemon.tracer
        if tracer:
            tracer.emit(self.client.sim.now, "rmi.call",
                        service=self.service_subject, op=msg["op"],
                        request_id=request_id, ok=reply["ok"])
        self._reply_cache[request_id] = encoded
        if self.durable_replies:
            # logged before the reply leaves: a crash after execution
            # cannot cause re-execution on retry
            self.client.host.stable.put(self._stable_key,
                                        self._reply_cache)
        self.calls_served += 1
        conn.send(encoded)


#: chooser signature: List[DiscoveredService] -> DiscoveredService
Chooser = Callable[[List[DiscoveredService]], DiscoveredService]


def _least_loaded(responses: List[DiscoveredService]) -> DiscoveredService:
    return min(responses,
               key=lambda r: (r.info.get("load", 0.0), r.responder))


@dataclass
class _PendingCall:
    request_id: str
    op: str
    data: bytes          # the encoded request, ready for (re)transmission
    on_result: Callable[[Any, Optional[str]], None]
    timeout_event: Optional[Event] = None
    done: bool = False


class RmiClient:
    """Invokes operations on whichever server serves ``service_subject``.

    ``policy``:

    * ``"first"`` — complete discovery on the first "I am" (fastest);
    * ``"all"`` — wait the full discovery window, then apply ``chooser``
      (default: least reported load).
    """

    def __init__(self, client: BusClient, service_subject: str,
                 policy: str = "first", chooser: Optional[Chooser] = None,
                 discovery_window: float = 0.25, call_timeout: float = 5.0):
        if policy not in ("first", "all"):
            raise ValueError(f"unknown policy {policy!r}")
        self.client = client
        self.service_subject = service_subject
        self.policy = policy
        self.chooser = chooser or _least_loaded
        self.discovery_window = discovery_window
        self.call_timeout = call_timeout
        self.port = next(_ports)
        self._streams = StreamManager(client.sim, client.host, self.port)
        self._conn: Optional[StreamConnection] = None
        self._server: Optional[DiscoveredService] = None
        self._pending: Dict[str, _PendingCall] = {}
        self._queue: List[_PendingCall] = []
        self._discovering = False
        self.server_interface: Optional[dict] = None
        self._closed = False
        client.host.on_recover(self._on_host_recover)

    def _on_host_recover(self) -> None:
        """Our own host restarted: the stream port binding is gone, and
        any connection with it.  Rebind so the next call works."""
        if self._closed:
            return
        self._streams = StreamManager(self.client.sim, self.client.host,
                                      self.port)
        self._conn = None
        self._server = None
        self._discovering = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def call(self, op: str, args: Dict[str, Any],
             on_result: Callable[[Any, Optional[str]], None],
             request_id: Optional[str] = None) -> str:
        """Invoke ``op(**args)`` remotely.

        ``on_result(value, error)`` fires exactly once: with the decoded
        result and ``error=None``, or with ``value=None`` and an error
        string (remote exception, timeout, no servers, connection lost).
        Returns the request id.

        Passing an explicit ``request_id`` re-issues a previous request:
        servers answer duplicates from their reply cache without
        re-executing (the hook exactly-once layers build on).
        """
        if request_id is None:
            request_id = f"{self.client.id}#{next(_request_ids)}"
        # self-contained on purpose: the request bytes are retained for
        # re-issue (exactly-once retries may cross daemon restarts), so
        # they must not reference session-scoped type-plane ids
        args_bytes = encode(args, self.client.registry, inline_types=True)
        data = encode({"kind": "call", "request_id": request_id, "op": op,
                       "args": args_bytes})
        pending = _PendingCall(request_id, op, data, on_result)
        self._pending[request_id] = pending
        pending.timeout_event = self.client.sim.schedule(
            self.call_timeout, self._fail, pending, "timeout",
            name="rmi.timeout")
        if self._conn is not None and self._conn.established:
            self._conn.send(pending.data)
        else:
            self._queue.append(pending)
            self._ensure_connection()
        return request_id

    def close(self) -> None:
        self._closed = True
        for pending in list(self._pending.values()):
            self._fail(pending, "client closed")
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        self._streams.close()

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _ensure_connection(self) -> None:
        if self._discovering or (self._conn is not None):
            return
        self._discovering = True
        enough = 1 if self.policy == "first" else None
        Inquiry(self.client, self.service_subject, self._on_discovered,
                window=self.discovery_window, enough=enough)

    def _on_discovered(self, responses: List[DiscoveredService]) -> None:
        self._discovering = False
        candidates = [r for r in responses if "endpoint" in r.info]
        if not candidates:
            for pending in list(self._queue):
                self._fail(pending, "no servers discovered")
            self._queue.clear()
            return
        chosen = candidates[0] if self.policy == "first" \
            else self.chooser(candidates)
        self._server = chosen
        self.server_interface = chosen.info.get("interface")
        host, port = chosen.info["endpoint"]
        conn = self._streams.connect(host, port)
        conn.on_established = self._on_connected
        conn.on_message = lambda data, size: self._on_reply(data)
        conn.on_close = self._on_conn_closed
        self._conn = conn

    def _on_connected(self) -> None:
        queued, self._queue = self._queue, []
        for pending in queued:
            if not pending.done:
                self._conn.send(pending.data)

    def _on_conn_closed(self, error: Optional[str]) -> None:
        self._conn = None
        self._server = None
        if error is None:
            return
        # fail everything in flight: at-most-once, no silent retry
        for pending in list(self._pending.values()):
            self._fail(pending, f"connection lost: {error}")
        self._queue.clear()

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _on_reply(self, data: bytes) -> None:
        try:
            msg = decode(data, self.client.registry)
        except MarshalError:
            return
        if not isinstance(msg, dict) or msg.get("kind") != "reply":
            return
        pending = self._pending.pop(msg.get("request_id", ""), None)
        if pending is None or pending.done:
            return
        pending.done = True
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
        tracer = self.client.daemon.tracer
        if tracer:
            tracer.emit(self.client.sim.now, "rmi.reply", op=pending.op,
                        request_id=pending.request_id, ok=msg["ok"])
        if msg["ok"]:
            value = decode(msg["value"], self.client.registry)
            pending.on_result(value, None)
        else:
            pending.on_result(None, msg["error"])

    def _fail(self, pending: _PendingCall, error: str) -> None:
        if pending.done:
            return
        pending.done = True
        if pending.timeout_event is not None:
            pending.timeout_event.cancel()
        self._pending.pop(pending.request_id, None)
        if pending in self._queue:
            self._queue.remove(pending)
        pending.on_result(None, error)


class ExactlyOnceRmiClient:
    """Exactly-once invocation, "built on a layer above standard RMI"
    (Section 3.3).

    Each logical call keeps one request id for its whole lifetime and
    retries (with backoff and fresh discovery) through timeouts, crashes,
    and partitions.  Because servers answer duplicate ids from their
    reply cache without re-executing — durably so with
    ``RmiServer(durable_replies=True)`` — the operation executes exactly
    once no matter how many times the request is transmitted, provided a
    server that saw it (or its stable cache) eventually answers.
    """

    RETRYABLE = ("timeout", "no servers discovered", "connection lost",
                 "client closed")

    def __init__(self, client: BusClient, service_subject: str,
                 attempts: int = 8, retry_delay: float = 0.5,
                 call_timeout: float = 2.0, **rmi_kwargs):
        self.client = client
        self.attempts = attempts
        self.retry_delay = retry_delay
        self.rmi = RmiClient(client, service_subject,
                             call_timeout=call_timeout, **rmi_kwargs)
        self.retries = 0

    def call(self, op: str, args: Dict[str, Any],
             on_result: Callable[[Any, Optional[str]], None]) -> str:
        request_id = f"{self.client.id}!eo{next(_request_ids)}"
        self._attempt(request_id, op, args, on_result, remaining=self.attempts)
        return request_id

    def _attempt(self, request_id: str, op: str, args: Dict[str, Any],
                 on_result: Callable[[Any, Optional[str]], None],
                 remaining: int) -> None:
        def complete(value: Any, error: Optional[str]) -> None:
            if error is None or remaining <= 1 \
                    or not self._retryable(error):
                on_result(value, error)
                return
            self.retries += 1
            # drop any half-dead connection so the retry rediscovers
            if self.rmi._conn is not None:
                self.rmi._conn.close()
                self.rmi._conn = None
            self.client.sim.schedule(
                self.retry_delay, self._attempt, request_id, op, args,
                on_result, remaining - 1, name="rmi.retry")

        self.rmi.call(op, args, complete, request_id=request_id)

    def _retryable(self, error: str) -> bool:
        return any(error.startswith(kind) for kind in self.RETRYABLE)

    def close(self) -> None:
        self.rmi.close()
