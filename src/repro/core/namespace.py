"""Subject naming conventions.

    "The Information Bus itself enforces no policy on the interpretation
    of subjects.  Instead, the system designers and developers have the
    freedom and responsibility to establish conventions on the use of
    subjects."  (Section 3.1)

A :class:`SubjectScheme` is such a convention, made executable: a
template of named fields (``plant.cc.{station}.{metric}``) that builds
concrete subjects, parses received ones back into fields, and produces
subscription patterns for any subset of bindings.  The factory apps use
the scheme the paper's own example subject implies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .subjects import BadSubjectError, validate_pattern, validate_subject

__all__ = ["SubjectScheme", "FAB_SENSOR_SCHEME", "NEWS_SCHEME"]


class SubjectScheme:
    """A dot-template with ``{named}`` fields.

    >>> scheme = SubjectScheme("fab.cc.{station}.{metric}")
    >>> scheme.subject(station="litho8", metric="thick")
    'fab.cc.litho8.thick'
    >>> scheme.parse("fab.cc.litho8.thick")
    {'station': 'litho8', 'metric': 'thick'}
    >>> scheme.pattern(metric="thick")
    'fab.cc.*.thick'
    """

    def __init__(self, template: str):
        self.template = template
        self._elements: List[str] = template.split(".")
        self.fields: List[str] = []
        for element in self._elements:
            if element.startswith("{") and element.endswith("}"):
                name = element[1:-1]
                if (not name or name in self.fields
                        or "{" in name or "}" in name
                        or not name.replace("_", "").isalnum()):
                    raise BadSubjectError(
                        f"bad template field {element!r} in {template!r}")
                self.fields.append(name)
            elif "{" in element or "}" in element:
                raise BadSubjectError(
                    f"braces must span a whole element: {element!r}")
        # validate the fixed skeleton by substituting a placeholder
        validate_subject(".".join(
            "x" if e.startswith("{") else e for e in self._elements))

    # ------------------------------------------------------------------
    def subject(self, **bindings: str) -> str:
        """A concrete subject; every field must be bound."""
        missing = set(self.fields) - set(bindings)
        if missing:
            raise BadSubjectError(
                f"unbound fields {sorted(missing)} for {self.template!r}")
        return self._fill(bindings, wildcard=None)

    def pattern(self, tail: bool = False, **bindings: str) -> str:
        """A subscription pattern; unbound fields become ``*``.

        ``tail=True`` appends ``>`` to also match deeper subjects.
        """
        pattern = self._fill(bindings, wildcard="*")
        if tail:
            pattern += ".>"
        validate_pattern(pattern)
        return pattern

    def _fill(self, bindings: Dict[str, str],
              wildcard: Optional[str]) -> str:
        unknown = set(bindings) - set(self.fields)
        if unknown:
            raise BadSubjectError(
                f"unknown fields {sorted(unknown)} for {self.template!r}")
        out: List[str] = []
        for element in self._elements:
            if element.startswith("{"):
                name = element[1:-1]
                if name in bindings:
                    value = bindings[name]
                    validate_subject(value)   # a single element, no dots
                    if "." in value:
                        raise BadSubjectError(
                            f"field {name!r} value may not contain dots: "
                            f"{value!r}")
                    out.append(value)
                elif wildcard is not None:
                    out.append(wildcard)
                else:
                    raise BadSubjectError(f"field {name!r} unbound")
            else:
                out.append(element)
        subject = ".".join(out)
        if wildcard is None:
            validate_subject(subject)
        return subject

    # ------------------------------------------------------------------
    def matches(self, subject: str) -> bool:
        try:
            return self.parse(subject) is not None
        except BadSubjectError:
            return False

    def parse(self, subject: str) -> Optional[Dict[str, str]]:
        """Field bindings if ``subject`` fits the template, else None."""
        elements = validate_subject(subject)
        if len(elements) != len(self._elements):
            return None
        bindings: Dict[str, str] = {}
        for template_element, element in zip(self._elements, elements):
            if template_element.startswith("{"):
                bindings[template_element[1:-1]] = element
            elif template_element != element:
                return None
        return bindings

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SubjectScheme {self.template!r}>"


#: The paper's own example: "fab5.cc.litho8.thick" — plant, cell
#: controller, station, metric.
FAB_SENSOR_SCHEME = SubjectScheme("{plant}.cc.{station}.{metric}")

#: The trading-floor example: "news.equity.gmc".
NEWS_SCHEME = SubjectScheme("news.{category}.{topic}")
