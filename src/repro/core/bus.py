"""The :class:`InformationBus` facade: one simulated bus instance.

Wires together the substrate (simulator, Ethernet segment, hosts) and the
bus layer (daemons, clients) so applications, examples, and benchmarks
can say::

    bus = InformationBus(seed=1)
    bus.add_hosts(15)
    publisher = bus.client("node00", "feed")
    consumer = bus.client("node01", "monitor")
    consumer.subscribe("news.>", on_story)
    publisher.publish("news.equity.gmc", story)
    bus.run_for(1.0)

Multiple instances can share one :class:`~repro.sim.kernel.Simulator`
(pass it in) — that is how WAN topologies with
:class:`~repro.core.router.InformationRouter` bridges are built.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..objects import TypeRegistry
from ..sim.ethernet import EthernetSegment
from ..sim.kernel import Simulator
from ..sim.network import CostModel
from ..sim.node import Host
from ..sim.trace import NULL_TRACER, Tracer
from .client import BusClient
from .daemon import BusConfig, BusDaemon
from .sharding import ShardedDaemon

__all__ = ["InformationBus"]


class InformationBus:
    """A LAN-scale Information Bus: one broadcast segment of daemons."""

    def __init__(self, seed: int = 0, cost: Optional[CostModel] = None,
                 config: Optional[BusConfig] = None, name: str = "bus",
                 sim: Optional[Simulator] = None,
                 tracer: Optional[Tracer] = None):
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.name = name
        self.config = config or BusConfig()
        # NULL_TRACER fallback, not `or`: a disabled Tracer is falsy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.lan = EthernetSegment(self.sim, name=name, cost=cost)
        self.daemons: Dict[str, BusDaemon] = {}
        self._client_counter = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_host(self, address: str) -> Host:
        """Attach a host and start its bus daemon.

        With ``config.subject_shards > 1`` the host gets a
        :class:`~repro.core.sharding.ShardedDaemon` — one daemon per
        shard plane behind the same interface.  The default (1) is the
        classic single daemon, bit-for-bit.
        """
        host = self.lan.add_host(address)
        if self.config.subject_shards > 1:
            self.daemons[address] = ShardedDaemon(self.sim, host,
                                                  self.config, self.tracer)
        else:
            self.daemons[address] = BusDaemon(self.sim, host, self.config,
                                              self.tracer)
        return host

    def add_hosts(self, count: int, prefix: str = "node") -> List[Host]:
        return [self.add_host(f"{prefix}{i:02d}") for i in range(count)]

    def host(self, address: str) -> Host:
        return self.lan.host(address)

    def daemon(self, address: str) -> BusDaemon:
        return self.daemons[address]

    def hosts(self) -> List[Host]:
        return self.lan.hosts()

    # ------------------------------------------------------------------
    # applications
    # ------------------------------------------------------------------
    def client(self, address: str, name: Optional[str] = None,
               registry: Optional[TypeRegistry] = None,
               service_time: float = 0.0) -> BusClient:
        """Create an application on ``address`` registered with its daemon.

        ``service_time`` models the seconds the application takes to
        consume one message (0 = instant); a slow consumer backlogs its
        own bounded delivery lane without stalling co-hosted siblings.
        """
        if name is None:
            self._client_counter += 1
            name = f"app{self._client_counter}"
        return BusClient(self.daemons[address], name, registry,
                         service_time=service_time)

    def flow_stats(self) -> Dict[str, Dict[str, dict]]:
        """Per-daemon snapshots of every flow-control queue on the bus."""
        return {address: daemon.flow_stats()
                for address, daemon in self.daemons.items()}

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def crash_host(self, address: str) -> None:
        self.lan.host(address).crash()

    def recover_host(self, address: str) -> None:
        self.lan.host(address).recover()

    def partition(self, *groups) -> None:
        self.lan.partition(*groups)

    def heal(self) -> None:
        self.lan.heal()

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run_for(self, duration: float, max_events: int = 50_000_000) -> None:
        """Advance simulated time by ``duration`` seconds."""
        self.sim.run_until(self.sim.now + duration, max_events=max_events)

    def run_until_idle(self, max_events: int = 50_000_000) -> None:
        """Run until no events remain (periodic timers keep buses alive;
        prefer :meth:`run_for` unless every daemon has been stopped)."""
        self.sim.run(max_events=max_events)

    def settle(self, duration: float = 2.0) -> None:
        """Flush batches everywhere and give protocols time to quiesce."""
        for daemon in self.daemons.values():
            if daemon.up:
                daemon.flush()
        self.run_for(duration)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<InformationBus {self.name} hosts={len(self.daemons)}>"
