"""Information routers: bridging buses across wide-area links (Section 3.1).

    "Our implementation uses application-level 'information routers' ...
    To the Information Bus, these routers look like ordinary applications,
    but they actually integrate multiple instances of the bus.  Messages
    are received by one router using a subscription, transmitted to
    another router, and then re-published on another bus.  The router is
    intelligent about which messages are sent to which routers: messages
    are only re-published on buses for which there exists a subscription
    on that subject; the router can also perform other functions, such as
    transforming subjects or logging messages to non-volatile storage."

A :class:`Router` has one :class:`RouterLeg` per bus.  Each leg is an
ordinary bus client.  Legs learn their bus's subscription table from the
daemons' ``_sub.advert`` broadcasts and ship pattern updates to the other
legs over the WAN; a leg subscribes locally to exactly the patterns the
*other* sides want, and forwards matching traffic across the
:class:`WanLink` to be re-published — creating "the illusion of a single,
large bus".

Because a leg is an ordinary client, its forwarding patterns live in its
host daemon's subscription trie — so the interest gate (the "Receive
path" in docs/PROTOCOLS.md) consults the forwarding table for free:
frames carrying only subjects no local application *and no remote bus*
wants are skipped from their digests without decoding a body.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..objects import decode, encode, standard_registry
from ..sim.kernel import PeriodicTimer, Simulator
from ..sim.trace import Tracer
from .bus import InformationBus
from .client import BusClient, Subscription
from .daemon import ADVERT_SUBJECT, STAT_SUBJECT_PREFIX
from .flow import Admission, BoundedQueue, POLICY_BLOCK
from .message import MessageInfo, QoS
from .metrics import Counter, MetricsPublisher, MetricsRegistry
from .subjects import subject_matches

__all__ = ["Router", "RouterLeg", "WanLink"]

#: Router clients are named so legs can recognize (and not re-forward)
#: each other's re-publications.
ROUTER_CLIENT_NAME = "_router"

#: Link-layer overhead the WAN pipe adds per transfer (headers, framing)
#: on top of the measured payload bytes — the wide-area analogue of
#: :attr:`~repro.sim.network.CostModel.frame_overhead`.
_WAN_OVERHEAD = 32


@dataclass
class WanLink:
    """A point-to-point wide-area link between two router legs.

    Models latency plus serialization through a bounded-bandwidth pipe,
    with independent capacity per direction.  Each direction is a bounded
    store-and-forward queue from the shared flow-control layer
    (:mod:`repro.core.flow`): a saturated pipe fills its queue and
    :meth:`send` starts returning a non-accepted admission — backpressure
    on the router leg — instead of queueing unboundedly or dropping
    invisibly.
    """

    latency: float = 0.03                      # 30 ms coast-to-coast
    bandwidth_bytes_per_sec: float = 1_500_000 / 8   # a T1-and-a-bit
    #: per-direction store-and-forward queue bound (messages)
    queue_capacity: int = 512
    #: what happens to reliable traffic at a full queue; guaranteed and
    #: control-plane traffic is always ``no_shed`` (deferred, retried)
    overflow_policy: str = POLICY_BLOCK

    def __post_init__(self) -> None:
        self._busy_until: Dict[Tuple[str, str], float] = {}
        self._queues: Dict[Tuple[str, str], BoundedQueue] = {}
        self._transferring: set = set()
        self._sim: Optional[Simulator] = None
        self._down = False
        #: messages lost to a down link (plus any caught mid-transfer) —
        #: a detached instrument until a router adopts it (attach_metrics)
        self._messages_dropped = Counter("wan.messages_dropped")
        self._metrics: Optional[MetricsRegistry] = None
        #: set by the router when it learns a bus's tracer, so queue
        #: sheds surface as ``flow.drop`` events
        self.tracer: Optional[Tracer] = None

    @property
    def messages_dropped(self) -> int:
        return self._messages_dropped.value

    def attach_metrics(self, registry) -> None:
        """Adopt this link's instruments into ``registry`` (a
        :class:`~repro.core.metrics.MetricsRegistry` or a scope view).

        A :class:`WanLink` can be built standalone (before any router
        exists), so its counter starts detached; the owning router
        registers it — and future per-direction queues pick up the same
        registry for their flow instruments (``flow.wan[a->b].*``).
        """
        registry.register("wan.messages_dropped", self._messages_dropped)
        self._metrics = registry

    @property
    def down(self) -> bool:
        return self._down

    def fail(self) -> None:
        """Take the link down: traffic handed to it is lost (it is a
        datagram pipe — durability is the store-and-forward layer's job).
        Queued transfers are lost with it, counted as drops."""
        self._down = True
        for key, queue in self._queues.items():
            lost = queue.clear()
            if lost:
                self._messages_dropped.value += lost
                if self.tracer and self._sim is not None:
                    self.tracer.emit(self._sim.now, "flow.drop",
                                     queue=f"wan[{key[0]}->{key[1]}]",
                                     reason="link-down", count=lost)

    def restore(self) -> None:
        self._down = False

    def transfer_time(self, size: int) -> float:
        return (size + _WAN_OVERHEAD) / self.bandwidth_bytes_per_sec

    def _queue(self, sim: Simulator, key: Tuple[str, str]) -> BoundedQueue:
        self._sim = sim
        queue = self._queues.get(key)
        if queue is None:
            queue = BoundedQueue(
                f"wan[{key[0]}->{key[1]}]", self.queue_capacity,
                self.overflow_policy, tracer=self.tracer,
                now=lambda: sim.now, metrics=self._metrics)
            self._queues[key] = queue
        return queue

    def send(self, sim: Simulator, from_leg: str, to_leg: str, size: int,
             deliver: Callable[[], None], *,
             no_shed: bool = False) -> Admission:
        """Queue one transfer; ``deliver`` fires after store-and-forward
        queueing + serialization + latency.

        A down link drops (counted and traced; callers needing
        reliability retry — see the store-and-forward machinery in
        :class:`RouterLeg`).  A full direction sheds per
        :attr:`overflow_policy` — except ``no_shed`` traffic, which is
        deferred back to the caller to retry.
        """
        if self._down:
            self._messages_dropped.value += 1
            if self.tracer:
                self.tracer.emit(sim.now, "flow.drop",
                                 queue=f"wan[{from_leg}->{to_leg}]",
                                 reason="link-down", size=size)
            return Admission.DROPPED
        key = (from_leg, to_leg)
        admission = self._queue(sim, key).offer((size, deliver),
                                                no_shed=no_shed)
        if admission is Admission.ACCEPTED:
            self._pump(sim, key)
        return admission

    def _pump(self, sim: Simulator, key: Tuple[str, str]) -> None:
        """Serialize queued transfers one at a time per direction."""
        if key in self._transferring:
            return
        queue = self._queues[key]
        if not queue:
            return
        size, deliver = queue.take()
        self._transferring.add(key)
        start = max(sim.now, self._busy_until.get(key, 0.0))
        done = start + self.transfer_time(size)
        self._busy_until[key] = done
        sim.schedule(done - sim.now, self._transfer_done, sim, key, deliver,
                     name="wan.transfer")

    def _transfer_done(self, sim: Simulator, key: Tuple[str, str],
                       deliver: Callable[[], None]) -> None:
        self._transferring.discard(key)
        if self._down:
            # the link died mid-transfer: this message is on the floor
            self._messages_dropped.value += 1
            if self.tracer:
                self.tracer.emit(sim.now, "flow.drop",
                                 queue=f"wan[{key[0]}->{key[1]}]",
                                 reason="link-down")
        else:
            sim.schedule(self.latency, deliver, name="wan.deliver")
        self._pump(sim, key)

    def link_stats(self) -> Dict[str, Any]:
        """Per-direction flow stats plus the link-level drop counter.

        (Renamed from the ambiguous ``stats()``, which collided with
        :meth:`Router.leg_stats` in every discussion of "router stats".)
        """
        out: Dict[str, Any] = {"messages_dropped": self.messages_dropped}
        for key, queue in self._queues.items():
            out[f"{key[0]}->{key[1]}"] = queue.stats.snapshot()
        return out


class RouterLeg:
    """One router foot on one bus."""

    def __init__(self, router: "Router", bus: InformationBus,
                 host_address: str,
                 transform: Optional[Callable[[str], str]] = None,
                 log_traffic: bool = False):
        self.router = router
        self.bus = bus
        self.name = f"{bus.name}:{host_address}"
        self.transform = transform
        self.log_traffic = log_traffic
        self.tracer = bus.tracer
        self.host = bus.add_host(host_address)
        # all legs share the router's registry: a type learned from inline
        # metadata on one bus is known when re-publishing on another
        self.client: BusClient = bus.client(host_address, ROUTER_CLIENT_NAME,
                                            registry=router.registry)
        # what each local daemon currently wants, per host
        self._local_wants: Dict[str, Set[str]] = {}
        # forwarding subscriptions installed for remote legs' wants:
        # pattern -> (subscription, set of interested remote leg names)
        self._forwarding: Dict[str, Tuple[Subscription, Set[str]]] = {}
        # dedupe of forwarded messages (a message can match two patterns)
        self._recent: "OrderedDict[Tuple[str, int], None]" = OrderedDict()
        scope = router.metrics.scope(f"router.{router.name}.leg.{self.name}")
        self._messages_forwarded = scope.counter("forwarded")
        self._messages_republished = scope.counter("republished")
        #: forwards pushed back by a full WAN queue (block / no_shed)
        self._forwards_deferred = scope.counter("deferred")
        #: forwards shed by the WAN queue's drop policy or a down link
        self._forwards_shed = scope.counter("shed")
        self._sf_timer = None
        self.host.on_recover(self._on_host_recover)
        self.client.subscribe(ADVERT_SUBJECT, self._on_advert)
        if router.bridge_stats:
            # bridge the telemetry plane too: snapshots published on one
            # segment become visible to browsers on the other
            self.client.subscribe(f"{STAT_SUBJECT_PREFIX}.>", self._on_stat)

    # ------------------------------------------------------------------
    # counter views (ints, the historical attribute surface)
    # ------------------------------------------------------------------
    @property
    def messages_forwarded(self) -> int:
        return self._messages_forwarded.value

    @property
    def messages_republished(self) -> int:
        return self._messages_republished.value

    @property
    def forwards_deferred(self) -> int:
        return self._forwards_deferred.value

    @property
    def forwards_shed(self) -> int:
        return self._forwards_shed.value

    # ------------------------------------------------------------------
    # learning the local subscription table
    # ------------------------------------------------------------------
    def _on_advert(self, subject: str, payload: Any, _info) -> None:
        if not isinstance(payload, dict):
            return
        host = payload.get("host")
        if host == self.host.address:
            return   # our own forwarding subscriptions are not local wants
        action = payload.get("action")
        patterns = payload.get("patterns", [])
        wants = self._local_wants.setdefault(host, set())
        before = self._all_local_wants()
        if action == "snapshot":
            wants.clear()
            wants.update(patterns)
        elif action == "add":
            wants.update(patterns)
        elif action == "remove":
            wants.difference_update(patterns)
        after = self._all_local_wants()
        added = after - before
        removed = before - after
        if added:
            self.router._local_wants_changed(self, "add", sorted(added))
        if removed:
            self.router._local_wants_changed(self, "remove", sorted(removed))

    def _all_local_wants(self) -> Set[str]:
        out: Set[str] = set()
        for wants in self._local_wants.values():
            out |= wants
        return out

    # ------------------------------------------------------------------
    # forwarding subscriptions for remote legs
    # ------------------------------------------------------------------
    def remote_wants(self, leg_name: str, action: str,
                     patterns: List[str]) -> None:
        """A remote leg's bus gained/lost interest in ``patterns``."""
        for pattern in patterns:
            entry = self._forwarding.get(pattern)
            if action == "add":
                if entry is None:
                    # with store-and-forward on, the subscription is
                    # durable: the local daemon's guaranteed-delivery ack
                    # fires only after _forward has stably logged the
                    # message — ack implies it will cross the WAN
                    subscription = self.client.subscribe(
                        pattern, self._forward,
                        durable=self.router.store_and_forward)
                    self._forwarding[pattern] = (subscription, {leg_name})
                else:
                    entry[1].add(leg_name)
            elif entry is not None:
                entry[1].discard(leg_name)
                if not entry[1]:
                    self.client.unsubscribe(entry[0])
                    del self._forwarding[pattern]

    def _forward(self, subject: str, obj: Any, info: MessageInfo) -> None:
        if self.router.name in info.via:
            # this message already traversed THIS router (a sibling leg
            # re-published it, or it looped around a cyclic topology):
            # forwarding again would duplicate or loop.  Messages from
            # *other* routers are forwarded normally — that is what makes
            # multi-hop chains (A -router1- B -router2- C) work.
            return
        key = (info.session, info.seq)
        if key in self._recent:
            return   # already forwarded (matched another pattern too)
        self._recent[key] = None
        while len(self._recent) > 4096:
            self._recent.popitem(last=False)
        targets = self._interested_legs(subject)
        if self.log_traffic:
            self.host.stable.append("router.log", {
                "time": self.bus.sim.now, "subject": subject,
                "size": info.size, "targets": sorted(targets)})
        if not targets:
            return
        if self.router.store_and_forward and info.qos is QoS.GUARANTEED:
            self._sf_enqueue(subject, obj, info, targets)
            return
        # marshal once per fan-out; every target leg gets the same bytes.
        # Self-contained on purpose: the payload crosses a WAN link out
        # of the publishing session's scope, so it must not reference
        # session-local type-plane ids.
        data = encode({
            "subject": subject, "via": list(info.via),
            "payload": encode(obj, self.router.registry, inline_types=True),
        })
        if self.tracer:
            self.tracer.emit(self.bus.sim.now, "router.forward", leg=self.name,
                             subject=subject, targets=sorted(targets),
                             size=len(data))
        for leg_name in targets:
            self._messages_forwarded.value += 1
            admission = self.router._ship(self, leg_name, data)
            if admission is Admission.DEFERRED:
                self._forwards_deferred.value += 1
            elif admission is Admission.DROPPED:
                self._forwards_shed.value += 1

    # ------------------------------------------------------------------
    # store-and-forward (guaranteed QoS across the WAN)
    # ------------------------------------------------------------------
    _SF_PENDING = "router.sf.pending"
    _SF_SEEN = "router.sf.seen"
    _SF_COUNTER = "router.sf.counter"

    def _sf_enqueue(self, subject: str, obj: Any, info: MessageInfo,
                    targets: Set[str]) -> None:
        """Stably log a guaranteed message, then ship with retry.

        Runs inside the daemon's durable-delivery callback, so the ack
        the original publisher receives means "logged at the router".
        """
        counter = self.host.stable.get(self._SF_COUNTER, 0) + 1
        self.host.stable.put(self._SF_COUNTER, counter)
        sf_id = f"{self.name}/{counter}"
        record = {
            "sf_id": sf_id, "subject": subject,
            # self-contained on purpose: the record outlives this router
            # process (replayed after restart), beyond any session scope
            "wire": encode(obj, self.router.registry, inline_types=True),
            "via": list(info.via), "pending": sorted(targets),
        }
        pending = self.host.stable.get(self._SF_PENDING, {})
        pending[sf_id] = record
        self.host.stable.put(self._SF_PENDING, pending)
        self._messages_forwarded.value += len(targets)
        self._sf_ship(record)
        self._sf_arm_timer()

    def _sf_ship(self, record: Dict[str, Any]) -> None:
        # the shipped bytes carry everything the target needs; the
        # "pending" target list is origin-side bookkeeping and stays home
        data = encode({"sf_id": record["sf_id"],
                       "subject": record["subject"],
                       "wire": record["wire"], "via": record["via"]})
        for leg_name in record["pending"]:
            self.router._ship_sf(self, leg_name, data)

    def _sf_receive(self, origin_name: str, data: bytes) -> None:
        """Target side: dedupe durably, republish as guaranteed, ack."""
        if not self.client.daemon.up:
            return   # origin keeps retrying until we are back
        record = decode(data, self.router.registry)
        seen = set(self.host.stable.get(self._SF_SEEN, []))
        if record["sf_id"] not in seen:
            seen.add(record["sf_id"])
            self.host.stable.put(self._SF_SEEN, sorted(seen))
            obj = decode(record["wire"], self.router.registry)
            out_subject = (self.transform(record["subject"])
                           if self.transform else record["subject"])
            self._messages_republished.value += 1
            self.client.publish(
                out_subject, obj, qos=QoS.GUARANTEED,
                via=tuple(record["via"]) + (self.router.name,))
        self.router._ship_sf_ack(self, origin_name, record["sf_id"])

    def _sf_acked(self, target_name: str, sf_id: str) -> None:
        """Origin side: a target confirmed stable receipt."""
        pending = self.host.stable.get(self._SF_PENDING, {})
        record = pending.get(sf_id)
        if record is None:
            return
        if target_name in record["pending"]:
            record["pending"].remove(target_name)
        if record["pending"]:
            pending[sf_id] = record
        else:
            del pending[sf_id]
        self.host.stable.put(self._SF_PENDING, pending)

    def sf_pending(self) -> int:
        """Shipments not yet confirmed by every target (tests/benches)."""
        return len(self.host.stable.get(self._SF_PENDING, {}))

    def _sf_arm_timer(self) -> None:
        if self._sf_timer is None or self._sf_timer.stopped:
            self._sf_timer = PeriodicTimer(
                self.bus.sim, self.router.sf_retry_interval,
                self._sf_retry, name="router.sf.retry")

    def _sf_retry(self) -> None:
        if not self.client.daemon.up:
            return
        pending = self.host.stable.get(self._SF_PENDING, {})
        if not pending:
            self._sf_timer.stop()
            return
        for record in pending.values():
            self._sf_ship(record)

    def _on_host_recover(self) -> None:
        """Resume shipping anything the crash left in the pending log."""
        if self.host.stable.get(self._SF_PENDING, {}):
            self._sf_arm_timer()

    def _interested_legs(self, subject: str) -> Set[str]:
        out: Set[str] = set()
        for pattern, (_sub, legs) in self._forwarding.items():
            if subject_matches(pattern, subject):
                out |= legs
        return out

    def _wan_receive(self, data: bytes) -> None:
        """Final hop: decode the WAN bytes and republish on this bus."""
        msg = decode(data, self.router.registry)
        obj = decode(msg["payload"], self.router.registry)
        self.republish(msg["subject"], obj, tuple(msg["via"]))

    # ------------------------------------------------------------------
    # telemetry bridging (``bridge_stats=True``)
    # ------------------------------------------------------------------
    def _on_stat(self, subject: str, payload: Any, info: MessageInfo) -> None:
        """A ``_bus.stat.*`` snapshot surfaced on this leg's segment."""
        if self.router.name in info.via:
            return   # already traversed this router: never loop telemetry
        self.router._ship_stat(self, subject, payload, info.via)

    def _stat_receive(self, data: bytes) -> None:
        """Target side: re-broadcast a bridged snapshot on this segment.

        Stat traffic stays outside the data plane end to end — it leaves
        through the daemon's unsequenced stat path, not an ordinary
        publish, so bridged telemetry is droppable and uncounted exactly
        like locally produced telemetry.
        """
        if not self.client.daemon.up:
            return
        msg = decode(data, self.router.registry)
        self.client.daemon.publish_stat_bytes(
            msg["subject"], msg["payload"],
            via=tuple(msg["via"]) + (self.router.name,))

    def _wants_receive(self, data: bytes) -> None:
        msg = decode(data, self.router.registry)
        self.remote_wants(msg["origin"], msg["action"], msg["patterns"])

    def republish(self, subject: str, obj: Any,
                  via: tuple = ()) -> None:
        """Put a forwarded message onto this leg's bus.

        The re-publication is stamped with every router it has
        traversed, including this one — the loop/duplicate guard for
        arbitrary topologies.  Because this goes through an ordinary
        ``client.publish``, the egress daemon stamps a fresh envelope
        under its *own* session and re-encodes it against its own wire
        string table (:mod:`repro.core.wire`) — the extended ``via``
        tuple and any transformed subject get their own table ids, so
        forwarded frames never leak another bus's table state.
        """
        if not self.client.daemon.up:
            return
        out_subject = self.transform(subject) if self.transform else subject
        self._messages_republished.value += 1
        if self.tracer:
            self.tracer.emit(self.bus.sim.now, "router.republish",
                             leg=self.name, subject=out_subject)
        self.client.publish(out_subject, obj,
                            via=tuple(via) + (self.router.name,))


class Router:
    """An application-level bridge between two or more buses.

    All buses must share one :class:`~repro.sim.kernel.Simulator` (pass
    ``sim=`` when constructing them).  Legs are fully meshed over
    ``link``.
    """

    def __init__(self, name: str = "router",
                 link: Optional[WanLink] = None,
                 store_and_forward: bool = False,
                 sf_retry_interval: float = 0.5,
                 stat_interval: float = 0.0,
                 bridge_stats: bool = False):
        self.name = name
        self.link = link or WanLink()
        #: with store-and-forward, guaranteed-QoS messages are stably
        #: logged at the ingress leg (whose durable subscription acks the
        #: original publisher) and shipped with retries until the egress
        #: leg durably confirms — guaranteed delivery across the WAN,
        #: surviving link failures and router crashes.  The paper's
        #: "logging messages to non-volatile storage" router function.
        self.store_and_forward = store_and_forward
        self.sf_retry_interval = sf_retry_interval
        #: seconds between router-registry snapshots published on
        #: ``_bus.stat.<router>.router`` (on every leg); 0 disables
        self.stat_interval = stat_interval
        #: forward ``_bus.stat.*`` snapshots between segments so a
        #: browser on one bus aggregates the whole federation
        self.bridge_stats = bridge_stats
        self.legs: Dict[str, RouterLeg] = {}
        self.registry = standard_registry()
        #: per-leg forwarding counters and the WAN link's instruments
        self.metrics = MetricsRegistry()
        self.link.attach_metrics(self.metrics.scope(f"router.{self.name}"))
        self._stat_publisher: Optional[MetricsPublisher] = None
        self._sim: Optional[Simulator] = None

    def add_leg(self, bus: InformationBus, host_address: Optional[str] = None,
                transform: Optional[Callable[[str], str]] = None,
                log_traffic: bool = False) -> RouterLeg:
        if self._sim is None:
            self._sim = bus.sim
        elif bus.sim is not self._sim:
            raise ValueError("all legs must share one Simulator")
        if not self.link.tracer:
            self.link.tracer = bus.tracer
        address = host_address or f"{self.name}-{bus.name}"
        leg = RouterLeg(self, bus, address, transform, log_traffic)
        self.legs[leg.name] = leg
        if self.stat_interval > 0 and self._stat_publisher is None:
            self._stat_publisher = MetricsPublisher(
                self._sim, self.metrics, self._publish_stats,
                self.stat_interval, name="router.stat")
        return leg

    # ------------------------------------------------------------------
    # inter-leg control and data planes (over the WAN link)
    # ------------------------------------------------------------------
    def _local_wants_changed(self, origin: RouterLeg, action: str,
                             patterns: List[str]) -> None:
        data = encode({"origin": origin.name, "action": action,
                       "patterns": patterns})
        for leg in self.legs.values():
            if leg is origin:
                continue
            # control-plane traffic is never shed by a full queue
            self.link.send(self._sim, origin.name, leg.name, len(data),
                           lambda leg=leg: leg._wants_receive(data),
                           no_shed=True)

    def _ship(self, origin: RouterLeg, target_name: str,
              data: bytes) -> Admission:
        target = self.legs.get(target_name)
        if target is None:
            return Admission.DROPPED
        return self.link.send(self._sim, origin.name, target_name,
                              len(data),
                              lambda: target._wan_receive(data))

    def _ship_sf(self, origin: RouterLeg, target_name: str,
                 data: bytes) -> None:
        target = self.legs.get(target_name)
        if target is None:
            return
        # guaranteed traffic: defer at a full queue (the sf retry timer
        # re-ships), never shed
        self.link.send(self._sim, origin.name, target_name, len(data),
                       lambda: target._sf_receive(origin.name, data),
                       no_shed=True)

    def _ship_sf_ack(self, origin: RouterLeg, target_name: str,
                     sf_id: str) -> None:
        target = self.legs.get(target_name)
        if target is None:
            return
        data = encode({"sf_id": sf_id, "target": origin.name})
        self.link.send(self._sim, origin.name, target_name, len(data),
                       lambda: target._sf_acked(origin.name, sf_id),
                       no_shed=True)

    def _publish_stats(self, snapshot: Dict[str, Any]) -> None:
        """Publish the router's registry on every leg's segment.

        Stamped ``via=(self.name,)`` so stat-bridging legs recognize it
        as already-traversed and never re-ship it over the WAN (every
        leg got it directly — bridging would only duplicate).
        """
        payload = encode({"host": self.name, "time": self._sim.now,
                          "interval": self.stat_interval,
                          "metrics": snapshot})
        subject = f"{STAT_SUBJECT_PREFIX}.{self.name}.router"
        for leg in self.legs.values():
            leg.client.daemon.publish_stat_bytes(subject, payload,
                                                 via=(self.name,))

    def _ship_stat(self, origin: RouterLeg, subject: str, payload: Any,
                   via: tuple) -> None:
        """Bridge one snapshot to every other leg, droppable like any
        telemetry: a congested WAN sheds stats, never data."""
        data = encode({"subject": subject, "payload": encode(payload),
                       "via": list(via)})
        for leg in self.legs.values():
            if leg is origin:
                continue
            self.link.send(self._sim, origin.name, leg.name, len(data),
                           lambda leg=leg: leg._stat_receive(data))

    def leg_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-leg forwarding counters (renamed from the ambiguous
        ``stats()``, which collided with :meth:`WanLink.link_stats`)."""
        return {name: {"forwarded": leg.messages_forwarded,
                       "republished": leg.messages_republished,
                       "deferred": leg.forwards_deferred,
                       "shed": leg.forwards_shed}
                for name, leg in self.legs.items()}

    def flow_stats(self) -> Dict[str, Any]:
        """The WAN link's per-direction flow-control queue stats."""
        return self.link.link_stats()

    def wire_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-leg wire-compression state of each leg's egress daemon
        (see :meth:`repro.core.daemon.BusDaemon.wire_stats`)."""
        return {name: leg.client.daemon.wire_stats()
                for name, leg in self.legs.items()}
