"""Subject-space sharding: hash-partitioned daemon planes on one host.

The paper runs one daemon per host, which makes that daemon the fan-out
bottleneck: every publish and every inbound frame serializes on one CPU
pipeline.  This module partitions the *subject space* instead of the
host — a :class:`ShardMap` deterministically assigns each subject's
first element to one of N shard planes, and a :class:`ShardedDaemon`
facade owns N :class:`~repro.core.daemon.BusDaemon` instances behind
the daemon interface clients and routers already speak.  Each plane is
a self-contained bus daemon: its own port pair, CPU lane, reliable
sessions, wire string table, session type table, and telemetry
publisher.  Planes never share wire state, so everything the
wire-efficiency arc built (header compression, interest gating, the
type plane) rides unchanged per plane.

Shard map rules (all deterministic, all derived from the subject's
first element — the paper's own partitioning hint):

* concrete subjects hash ``crc32(first_element) % N`` (crc32, not
  Python's ``hash()``, so placement is stable across interpreter runs
  and ``PYTHONHASHSEED`` values);
* reserved subjects (first element starting with ``_``) pin to shard 0
  — the stat plane, discovery inquiries, and guaranteed-repair control
  traffic stay single-writer on one plane;
* literal-first subscription patterns register on the one shard their
  first element hashes to;
* wildcard-first patterns (``*.foo``, ``>``) fan to every shard — any
  plane could carry a matching subject;
* reserved *patterns* (``_bus.stat.>``, ``_sub.advert``) also fan to
  every shard: the facade publishes reserved subjects on shard 0, but
  each plane's daemon emits its own control traffic (subscription
  adverts, telemetry snapshots) on its own plane, and a subscriber
  must hear all of them.

``BusConfig.subject_shards`` (default 1) selects the plane count;
:class:`~repro.core.bus.InformationBus` builds the facade only when it
is greater than 1, so the default path is bit-for-bit the classic
single daemon.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..sim.kernel import Simulator
from ..sim.node import Host
from ..sim.trace import NULL_TRACER, Tracer
from .daemon import BusConfig, BusDaemon
from .flow import PublishReceipt
from .guaranteed import LedgerEntry
from .message import QoS
from .typeplane import TypeTable

__all__ = ["ShardMap", "ShardedDaemon"]


class ShardMap:
    """Deterministic first-element → shard-plane assignment."""

    __slots__ = ("shards", "_all")

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.shards = shards
        self._all: Tuple[int, ...] = tuple(range(shards))

    def shard_of(self, subject: str) -> int:
        """The plane that carries publishes on concrete ``subject``."""
        if self.shards == 1:
            return 0
        first = subject.split(".", 1)[0]
        if first.startswith("_"):
            return 0   # reserved control/telemetry space is single-writer
        return zlib.crc32(first.encode("utf-8")) % self.shards

    def shards_for_pattern(self, pattern: str) -> Tuple[int, ...]:
        """Every plane a subscription on ``pattern`` must register on."""
        if self.shards == 1:
            return self._all
        first = pattern.split(".", 1)[0]
        if first in ("*", ">"):
            return self._all   # any plane could carry a match
        if first.startswith("_"):
            # facade publishes pin reserved subjects to shard 0, but
            # every plane emits its own adverts/snapshots locally
            return self._all
        return (zlib.crc32(first.encode("utf-8")) % self.shards,)


class ShardedDaemon:
    """N shard-plane daemons on one host behind the daemon interface.

    Everything an application or router calls on a
    :class:`~repro.core.daemon.BusDaemon` works here: publishes route
    to the owning plane, subscriptions register per the shard map,
    stats surfaces aggregate across planes.  Clients are attached to
    every plane (each plane delivers its own matches through its own
    lanes); the facade re-attaches them once after a host recovery,
    when all planes are back up.
    """

    def __init__(self, sim: Simulator, host: Host,
                 config: Optional[BusConfig] = None,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.host = host
        self.config = config or BusConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        count = max(self.config.subject_shards, 1)
        self.map = ShardMap(count)
        self.shards: List[BusDaemon] = [
            BusDaemon(sim, host, self.config, tracer,
                      shard=shard, shard_count=count)
            for shard in range(count)
        ]
        # routing counters live in shard 0's registry (the single-writer
        # telemetry plane), under the same daemon.<host> scope as the
        # rest of the daemon family
        scope = self.shards[0].metrics.scope(f"daemon.{host.address}")
        self._routed = [scope.counter(f"shard.routed[s{shard}]")
                        for shard in range(count)]
        self._fanout_subs = scope.counter("shard.fanout_subscriptions")
        host.on_recover(self._on_recover)

    # ------------------------------------------------------------------
    # identity and liveness
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return self.map.shards

    @property
    def metrics(self):
        """Shard 0's registry (where the facade's own counters live)."""
        return self.shards[0].metrics

    @property
    def clients(self) -> Dict[str, Any]:
        return self.shards[0].clients

    @property
    def session(self) -> str:
        """Shard 0's session — the host's canonical bus identity."""
        return self.shards[0].session

    @property
    def session_started(self) -> float:
        return self.shards[0].session_started

    @property
    def up(self) -> bool:
        return all(daemon.up for daemon in self.shards)

    def _on_recover(self) -> None:
        # runs after every plane's own recovery listener (the facade
        # registered last), so fanned re-subscriptions find all planes up
        if self.config.auto_restart_clients:
            for client in list(self.clients.values()):
                client._reattach()

    # ------------------------------------------------------------------
    # client registration (mirrors BusDaemon's surface)
    # ------------------------------------------------------------------
    def attach_client(self, client) -> None:
        for daemon in self.shards:
            daemon.attach_client(client)
        # every plane wired a latency histogram into its own registry;
        # the client observes into shard 0's (single-writer stat plane)
        client._latency = self.shards[0].metrics.histogram(
            f"client.{client.name}.latency")

    def detach_client(self, client) -> None:
        for daemon in self.shards:
            daemon.detach_client(client)

    def set_client_service_time(self, name: str, service_time: float) -> None:
        for daemon in self.shards:
            daemon.set_client_service_time(name, service_time)

    def on_publish_credit(self, callback) -> None:
        for daemon in self.shards:
            daemon.on_publish_credit(callback)

    def add_subscription(self, pattern: str, client, durable: bool) -> None:
        targets = self.map.shards_for_pattern(pattern)
        if len(targets) > 1:
            self._fanout_subs.value += 1
        for shard in targets:
            self.shards[shard].add_subscription(pattern, client, durable)

    def remove_subscription(self, pattern: str, client,
                            durable: bool) -> None:
        for shard in self.map.shards_for_pattern(pattern):
            self.shards[shard].remove_subscription(pattern, client, durable)

    def subscription_count(self) -> int:
        return sum(d.subscription_count() for d in self.shards)

    # ------------------------------------------------------------------
    # publish path
    # ------------------------------------------------------------------
    def publish(self, client_id: str, subject: str, payload: bytes,
                qos: QoS = QoS.RELIABLE,
                via: tuple = (), type_refs: tuple = ()) -> PublishReceipt:
        shard = self.map.shard_of(subject)
        self._routed[shard].value += 1
        return self.shards[shard].publish(client_id, subject, payload,
                                          qos, via=via, type_refs=type_refs)

    def flush(self) -> None:
        for daemon in self.shards:
            daemon.flush()

    # ------------------------------------------------------------------
    # telemetry plane (reserved subjects pin to shard 0)
    # ------------------------------------------------------------------
    def publish_stat_bytes(self, subject: str, payload: bytes,
                           via: tuple = ()) -> None:
        self.shards[0].publish_stat_bytes(subject, payload, via=via)

    # ------------------------------------------------------------------
    # session type plane
    # ------------------------------------------------------------------
    @property
    def type_table(self) -> Optional[TypeTable]:
        return self.shards[0].type_table

    def type_table_for(self, subject: str) -> Optional[TypeTable]:
        """The owning plane's type table — typed payloads must reference
        ids defined on the plane that carries them."""
        return self.shards[self.map.shard_of(subject)].type_table

    def type_resolver(self, session: str):
        for daemon in self.shards:
            resolver = daemon.type_resolver(session)
            if resolver is not None:
                return resolver
        return None

    # ------------------------------------------------------------------
    # counter views (sums across planes)
    # ------------------------------------------------------------------
    @property
    def published(self) -> int:
        return sum(d.published for d in self.shards)

    @property
    def delivered(self) -> int:
        return sum(d.delivered for d in self.shards)

    @property
    def acks_sent(self) -> int:
        return sum(d.acks_sent for d in self.shards)

    @property
    def guaranteed_deferred(self) -> int:
        return sum(d.guaranteed_deferred for d in self.shards)

    @property
    def corrupt_dropped(self) -> int:
        return sum(d.corrupt_dropped for d in self.shards)

    @property
    def unresolved_dropped(self) -> int:
        return sum(d.unresolved_dropped for d in self.shards)

    @property
    def typedef_unresolved_dropped(self) -> int:
        return sum(d.typedef_unresolved_dropped for d in self.shards)

    @property
    def skipped_frames(self) -> int:
        return sum(d.skipped_frames for d in self.shards)

    @property
    def skipped_envelopes(self) -> int:
        return sum(d.skipped_envelopes for d in self.shards)

    # ------------------------------------------------------------------
    # introspection (aggregated across planes)
    # ------------------------------------------------------------------
    def shard_stats(self) -> List[Dict[str, Any]]:
        """One row per shard plane (see :meth:`BusDaemon.shard_stats`)."""
        rows: List[Dict[str, Any]] = []
        for daemon in self.shards:
            rows.extend(daemon.shard_stats())
        return rows

    def reliable_stats(self, session: str):
        for daemon in self.shards:
            if session in daemon._receiver.sessions():
                return daemon.reliable_stats(session)
        return self.shards[0].reliable_stats(session)

    def flow_stats(self) -> Dict[str, Dict[str, Any]]:
        """Queue snapshots merged across planes.

        Counters sum, depths sum, high watermarks take the max, and the
        name/capacity/policy identity fields come from shard 0 — so
        ``flow_stats()["deliver[app]"]`` keeps working unchanged for
        :meth:`BusClient.delivery_stats`.
        """
        merged: Dict[str, Dict[str, Any]] = {}
        for daemon in self.shards:
            for key, snap in daemon.flow_stats().items():
                seen = merged.get(key)
                merged[key] = snap if seen is None else \
                    _merge_snapshots(seen, snap)
        return merged

    def wire_stats(self) -> Dict[str, Any]:
        """Per-plane wire state summed (booleans are config, shared)."""
        out = dict(self.shards[0].wire_stats())
        for daemon in self.shards[1:]:
            for key, value in daemon.wire_stats().items():
                if isinstance(value, bool):
                    continue
                out[key] = out[key] + value
        return out

    def guaranteed_pending(self) -> List[LedgerEntry]:
        pending: List[LedgerEntry] = []
        for daemon in self.shards:
            pending.extend(daemon.guaranteed_pending())
        return pending

    def sender_retransmissions(self) -> int:
        return sum(d.sender_retransmissions() for d in self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ShardedDaemon {self.host.address} "
                f"shards={self.map.shards} clients={len(self.clients)}>")


#: snapshot fields that identify the queue rather than count traffic
_IDENTITY_KEYS = frozenset({"name", "capacity", "policy"})
_MAX_KEYS = frozenset({"high_watermark"})


def _merge_snapshots(base: Dict[str, Any], snap: Dict[str, Any]) \
        -> Dict[str, Any]:
    out = dict(base)
    for key, value in snap.items():
        if key in _IDENTITY_KEYS or not isinstance(value, (int, float)):
            continue
        if key in _MAX_KEYS:
            out[key] = max(out[key], value)
        else:
            out[key] = out[key] + value
    return out
