"""Subject-Based Addressing (the heart of P4, anonymous communication).

Subjects are hierarchically structured, dot-separated strings — the
paper's example is ``"fab5.cc.litho8.thick"`` (plant, cell controller,
lithography station, wafer thickness).  Consumers may subscribe with
patterns that are "partially specified or 'wildcarded'":

* ``*`` matches exactly one element: ``news.equity.*`` matches
  ``news.equity.gmc`` but not ``news.equity.gmc.update``;
* ``>`` as the final element matches one or more trailing elements:
  ``fab5.>`` matches everything under ``fab5``.

The Information Bus itself "enforces no policy on the interpretation of
subjects" — matching is purely structural.

:class:`SubjectTrie` is the daemon's subscription table: inserting N
patterns and matching a subject costs O(subject depth), independent of N
— which is why Figure 8 (ten thousand subjects) shows no throughput
effect.  On top of that structural bound the trie memoizes concrete
subjects: dispatch workloads repeat the same subjects thousands of times
(Figs 5–8 publish on a handful of subjects), so steady-state matching is
one dict hit.  The memo is generation-stamped — any insert/remove bumps
the generation and lazily discards every memoized result — so a
mid-stream subscribe/unsubscribe is visible on the very next match.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Generic, List, Optional, Set, TypeVar

__all__ = ["BadSubjectError", "SubjectTrie", "is_admin_subject",
           "is_valid_pattern",
           "is_valid_subject", "split_subject", "subject_matches",
           "validate_pattern", "validate_subject"]

_ELEMENT_RE = re.compile(r"^[A-Za-z0-9_\-]+$")

#: Maximum elements in a subject; a sanity bound, not a protocol limit.
MAX_DEPTH = 32

#: Default bound on memoized concrete subjects per trie.  0 disables the
#: memo entirely (the cache-free escape hatch the perf harness uses to
#: prove the memo changes no observable behaviour).
DEFAULT_MEMO_CAPACITY = 1024


class BadSubjectError(ValueError):
    """A malformed subject or subscription pattern."""


def split_subject(subject: str) -> List[str]:
    return subject.split(".")


def validate_subject(subject: str) -> List[str]:
    """Validate a *concrete* subject (no wildcards); return its elements."""
    if not subject:
        raise BadSubjectError("empty subject")
    elements = split_subject(subject)
    if len(elements) > MAX_DEPTH:
        raise BadSubjectError(f"subject too deep ({len(elements)} elements)")
    for element in elements:
        if not _ELEMENT_RE.match(element):
            raise BadSubjectError(
                f"bad subject element {element!r} in {subject!r}")
    return elements


def validate_pattern(pattern: str) -> List[str]:
    """Validate a subscription pattern; return its elements."""
    if not pattern:
        raise BadSubjectError("empty pattern")
    elements = split_subject(pattern)
    if len(elements) > MAX_DEPTH:
        raise BadSubjectError(f"pattern too deep ({len(elements)} elements)")
    for index, element in enumerate(elements):
        if element == "*":
            continue
        if element == ">":
            if index != len(elements) - 1:
                raise BadSubjectError(
                    f"'>' must be the final element: {pattern!r}")
            continue
        if not _ELEMENT_RE.match(element):
            raise BadSubjectError(
                f"bad pattern element {element!r} in {pattern!r}")
    return elements


def is_valid_subject(subject: str) -> bool:
    try:
        validate_subject(subject)
        return True
    except BadSubjectError:
        return False


def is_valid_pattern(pattern: str) -> bool:
    try:
        validate_pattern(pattern)
        return True
    except BadSubjectError:
        return False


def is_admin_subject(subject: str) -> bool:
    """True for reserved/administrative subjects (first element starts
    with ``_``): bus-internal traffic such as ``_discovery.*`` and
    ``_sub.advert``.  Wildcards never match these — a ``>`` subscriber
    should see application data, not protocol chatter — so the first
    pattern element must name them literally."""
    return subject.split(".", 1)[0].startswith("_")


def subject_matches(pattern: str, subject: str) -> bool:
    """True if ``pattern`` matches the concrete ``subject``."""
    p_elements = validate_pattern(pattern)
    s_elements = validate_subject(subject)
    if s_elements[0].startswith("_") and p_elements[0] in ("*", ">"):
        return False   # reserved subjects need a literal first element
    for index, p_element in enumerate(p_elements):
        if p_element == ">":
            return len(s_elements) > index   # one or more remaining
        if index >= len(s_elements):
            return False
        if p_element != "*" and p_element != s_elements[index]:
            return False
    return len(p_elements) == len(s_elements)


T = TypeVar("T")


class _TrieNode(Generic[T]):
    __slots__ = ("children", "star", "tail", "values", "tail_values")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode[T]"] = {}
        self.star: Optional["_TrieNode[T]"] = None
        self.values: Set[T] = set()        # subscriptions ending exactly here
        self.tail_values: Set[T] = set()   # '>' subscriptions rooted here

    def empty(self) -> bool:
        return (not self.children and self.star is None
                and not self.values and not self.tail_values)


class SubjectTrie(Generic[T]):
    """Maps subscription patterns to sets of opaque values.

    Used by daemons (pattern -> local clients), routers (pattern ->
    remote buses), and anywhere else subjects fan out.  ``match`` cost is
    O(depth × branching on wildcards), not O(#subscriptions) — and for a
    concrete subject seen before (and no interleaving insert/remove), one
    dict lookup.  ``memo_capacity=0`` disables memoization.
    """

    def __init__(self, memo_capacity: Optional[int] = None) -> None:
        self._root: _TrieNode[T] = _TrieNode()
        self._count = 0
        if memo_capacity is None:
            memo_capacity = DEFAULT_MEMO_CAPACITY
        self._memo_capacity = memo_capacity
        #: concrete subject -> frozen match result, valid only while
        #: ``_memo_generation`` equals ``_generation``
        self._memo: Dict[str, FrozenSet[T]] = {}
        #: concrete subject -> bool, the :meth:`matches_anything` memo.
        #: Separate from ``_memo`` because the interest gate asks about
        #: subjects this daemon will *never* ``match()`` (that is the
        #: point), so the full-result memo stays cold for them.  Guarded
        #: by the same generation stamp.
        self._bool_memo: Dict[str, bool] = {}
        self._generation = 0
        self._memo_generation = 0

    def _fresh_memos(self) -> None:
        """Discard both memos after a subscription change (lazily, on
        the next lookup that notices the generation moved)."""
        self._memo.clear()
        self._bool_memo.clear()
        self._memo_generation = self._generation

    def insert(self, pattern: str, value: T) -> None:
        """Register ``value`` under ``pattern``.  Duplicate inserts are no-ops."""
        elements = validate_pattern(pattern)
        node = self._root
        for element in elements:
            if element == ">":
                if value not in node.tail_values:
                    node.tail_values.add(value)
                    self._count += 1
                    self._generation += 1
                return
            if element == "*":
                if node.star is None:
                    node.star = _TrieNode()
                node = node.star
            else:
                node = node.children.setdefault(element, _TrieNode())
        if value not in node.values:
            node.values.add(value)
            self._count += 1
            self._generation += 1

    def remove(self, pattern: str, value: T) -> bool:
        """Remove one registration; returns True if it existed.

        Empty trie branches are pruned so long-running daemons with
        churning subscriptions do not leak.
        """
        elements = validate_pattern(pattern)
        removed = self._remove(self._root, elements, 0, value)
        if removed:
            self._generation += 1
        return removed

    def _remove(self, node: _TrieNode[T], elements: List[str], index: int,
                value: T) -> bool:
        if index < len(elements) and elements[index] == ">":
            if value in node.tail_values:
                node.tail_values.discard(value)
                self._count -= 1
                return True
            return False
        if index == len(elements):
            if value in node.values:
                node.values.discard(value)
                self._count -= 1
                return True
            return False
        element = elements[index]
        if element == "*":
            child = node.star
            if child is None:
                return False
            removed = self._remove(child, elements, index + 1, value)
            if removed and child.empty():
                node.star = None
            return removed
        child = node.children.get(element)
        if child is None:
            return False
        removed = self._remove(child, elements, index + 1, value)
        if removed and child.empty():
            del node.children[element]
        return removed

    def match(self, subject: str) -> FrozenSet[T]:
        """Every value whose pattern matches the concrete ``subject``.

        Reserved subjects (leading ``_`` element) are only reached by
        patterns that name the first element literally — see
        :func:`is_admin_subject`.  The returned set is frozen: one result
        object is shared by every repeat of the same subject until the
        trie next changes.
        """
        memo = self._memo
        if self._memo_capacity:
            if self._memo_generation != self._generation:
                self._fresh_memos()
            hit = memo.get(subject)
            if hit is not None:
                return hit
        elements = validate_subject(subject)
        result = frozenset(self._walk(elements,
                                      elements[0].startswith("_")))
        if self._memo_capacity:
            if len(memo) >= self._memo_capacity:
                # epoch eviction: a steady-state working set refills in
                # one pass, and nothing is scanned per match
                memo.clear()
            memo[subject] = result
        return result

    def _walk(self, elements: List[str], admin: bool) -> Set[T]:
        """Iterative trie walk (no per-level Python call frames)."""
        out: Set[T] = set()
        depth = len(elements)
        stack = [(self._root, 0)]
        while stack:
            node, index = stack.pop()
            wildcards_ok = not (admin and index == 0)
            if index == depth:
                out |= node.values
                continue
            if wildcards_ok and node.tail_values:
                out |= node.tail_values   # '>' matches the non-empty rest
            child = node.children.get(elements[index])
            if child is not None:
                stack.append((child, index + 1))
            if node.star is not None and wildcards_ok:
                stack.append((node.star, index + 1))
        return out

    def matches_anything(self, subject: str) -> bool:
        """Cheaper ``bool(match(subject))`` for forwarding decisions.

        Short-circuits on the first registration found instead of
        materializing the full match set (routers call this once per
        envelope heard on a bus, and the interest gate once per digest
        subject).  Results are memoized alongside the full-match memo —
        steady-state disinterest is one dict hit — and invalidated by
        the same generation stamp, so a mid-stream subscribe is visible
        on the very next frame.
        """
        if self._memo_capacity:
            if self._memo_generation != self._generation:
                self._fresh_memos()
            hit = self._memo.get(subject)
            if hit is not None:
                return bool(hit)
            bool_hit = self._bool_memo.get(subject)
            if bool_hit is not None:
                return bool_hit
        elements = validate_subject(subject)
        result = self._walk_any(elements, elements[0].startswith("_"))
        if self._memo_capacity:
            if len(self._bool_memo) >= self._memo_capacity:
                self._bool_memo.clear()   # epoch eviction, like _memo
            self._bool_memo[subject] = result
        return result

    def _walk_any(self, elements: List[str], admin: bool) -> bool:
        depth = len(elements)
        stack = [(self._root, 0)]
        while stack:
            node, index = stack.pop()
            wildcards_ok = not (admin and index == 0)
            if index == depth:
                if node.values:
                    return True
                continue
            if wildcards_ok and node.tail_values:
                return True
            child = node.children.get(elements[index])
            if child is not None:
                stack.append((child, index + 1))
            if node.star is not None and wildcards_ok:
                stack.append((node.star, index + 1))
        return False

    def patterns_for(self, value: T) -> List[str]:
        """Every pattern under which ``value`` is registered (diagnostics)."""
        out: List[str] = []
        self._collect(self._root, [], value, out)
        return sorted(out)

    def _collect(self, node: _TrieNode[T], prefix: List[str], value: T,
                 out: List[str]) -> None:
        if value in node.values and prefix:
            out.append(".".join(prefix))
        if value in node.tail_values:
            out.append(".".join(prefix + [">"]))
        for element, child in node.children.items():
            self._collect(child, prefix + [element], value, out)
        if node.star is not None:
            self._collect(node.star, prefix + ["*"], value, out)

    def __len__(self) -> int:
        """Number of (pattern, value) registrations."""
        return self._count
