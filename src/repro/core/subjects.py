"""Subject-Based Addressing (the heart of P4, anonymous communication).

Subjects are hierarchically structured, dot-separated strings — the
paper's example is ``"fab5.cc.litho8.thick"`` (plant, cell controller,
lithography station, wafer thickness).  Consumers may subscribe with
patterns that are "partially specified or 'wildcarded'":

* ``*`` matches exactly one element: ``news.equity.*`` matches
  ``news.equity.gmc`` but not ``news.equity.gmc.update``;
* ``>`` as the final element matches one or more trailing elements:
  ``fab5.>`` matches everything under ``fab5``.

The Information Bus itself "enforces no policy on the interpretation of
subjects" — matching is purely structural.

:class:`SubjectTrie` is the daemon's subscription table: inserting N
patterns and matching a subject costs O(subject depth), independent of N
— which is why Figure 8 (ten thousand subjects) shows no throughput
effect.
"""

from __future__ import annotations

import re
from typing import Dict, Generic, List, Optional, Set, TypeVar

__all__ = ["BadSubjectError", "SubjectTrie", "is_admin_subject",
           "is_valid_pattern",
           "is_valid_subject", "split_subject", "subject_matches",
           "validate_pattern", "validate_subject"]

_ELEMENT_RE = re.compile(r"^[A-Za-z0-9_\-]+$")

#: Maximum elements in a subject; a sanity bound, not a protocol limit.
MAX_DEPTH = 32


class BadSubjectError(ValueError):
    """A malformed subject or subscription pattern."""


def split_subject(subject: str) -> List[str]:
    return subject.split(".")


def validate_subject(subject: str) -> List[str]:
    """Validate a *concrete* subject (no wildcards); return its elements."""
    if not subject:
        raise BadSubjectError("empty subject")
    elements = split_subject(subject)
    if len(elements) > MAX_DEPTH:
        raise BadSubjectError(f"subject too deep ({len(elements)} elements)")
    for element in elements:
        if not _ELEMENT_RE.match(element):
            raise BadSubjectError(
                f"bad subject element {element!r} in {subject!r}")
    return elements


def validate_pattern(pattern: str) -> List[str]:
    """Validate a subscription pattern; return its elements."""
    if not pattern:
        raise BadSubjectError("empty pattern")
    elements = split_subject(pattern)
    if len(elements) > MAX_DEPTH:
        raise BadSubjectError(f"pattern too deep ({len(elements)} elements)")
    for index, element in enumerate(elements):
        if element == "*":
            continue
        if element == ">":
            if index != len(elements) - 1:
                raise BadSubjectError(
                    f"'>' must be the final element: {pattern!r}")
            continue
        if not _ELEMENT_RE.match(element):
            raise BadSubjectError(
                f"bad pattern element {element!r} in {pattern!r}")
    return elements


def is_valid_subject(subject: str) -> bool:
    try:
        validate_subject(subject)
        return True
    except BadSubjectError:
        return False


def is_valid_pattern(pattern: str) -> bool:
    try:
        validate_pattern(pattern)
        return True
    except BadSubjectError:
        return False


def is_admin_subject(subject: str) -> bool:
    """True for reserved/administrative subjects (first element starts
    with ``_``): bus-internal traffic such as ``_discovery.*`` and
    ``_sub.advert``.  Wildcards never match these — a ``>`` subscriber
    should see application data, not protocol chatter — so the first
    pattern element must name them literally."""
    return subject.split(".", 1)[0].startswith("_")


def subject_matches(pattern: str, subject: str) -> bool:
    """True if ``pattern`` matches the concrete ``subject``."""
    p_elements = validate_pattern(pattern)
    s_elements = validate_subject(subject)
    if s_elements[0].startswith("_") and p_elements[0] in ("*", ">"):
        return False   # reserved subjects need a literal first element
    for index, p_element in enumerate(p_elements):
        if p_element == ">":
            return len(s_elements) > index   # one or more remaining
        if index >= len(s_elements):
            return False
        if p_element != "*" and p_element != s_elements[index]:
            return False
    return len(p_elements) == len(s_elements)


T = TypeVar("T")


class _TrieNode(Generic[T]):
    __slots__ = ("children", "star", "tail", "values", "tail_values")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode[T]"] = {}
        self.star: Optional["_TrieNode[T]"] = None
        self.values: Set[T] = set()        # subscriptions ending exactly here
        self.tail_values: Set[T] = set()   # '>' subscriptions rooted here

    def empty(self) -> bool:
        return (not self.children and self.star is None
                and not self.values and not self.tail_values)


class SubjectTrie(Generic[T]):
    """Maps subscription patterns to sets of opaque values.

    Used by daemons (pattern -> local clients), routers (pattern ->
    remote buses), and anywhere else subjects fan out.  ``match`` cost is
    O(depth × branching on wildcards), not O(#subscriptions).
    """

    def __init__(self) -> None:
        self._root: _TrieNode[T] = _TrieNode()
        self._count = 0

    def insert(self, pattern: str, value: T) -> None:
        """Register ``value`` under ``pattern``.  Duplicate inserts are no-ops."""
        elements = validate_pattern(pattern)
        node = self._root
        for element in elements:
            if element == ">":
                if value not in node.tail_values:
                    node.tail_values.add(value)
                    self._count += 1
                return
            if element == "*":
                if node.star is None:
                    node.star = _TrieNode()
                node = node.star
            else:
                node = node.children.setdefault(element, _TrieNode())
        if value not in node.values:
            node.values.add(value)
            self._count += 1

    def remove(self, pattern: str, value: T) -> bool:
        """Remove one registration; returns True if it existed.

        Empty trie branches are pruned so long-running daemons with
        churning subscriptions do not leak.
        """
        elements = validate_pattern(pattern)
        return self._remove(self._root, elements, 0, value)

    def _remove(self, node: _TrieNode[T], elements: List[str], index: int,
                value: T) -> bool:
        if index < len(elements) and elements[index] == ">":
            if value in node.tail_values:
                node.tail_values.discard(value)
                self._count -= 1
                return True
            return False
        if index == len(elements):
            if value in node.values:
                node.values.discard(value)
                self._count -= 1
                return True
            return False
        element = elements[index]
        if element == "*":
            child = node.star
            if child is None:
                return False
            removed = self._remove(child, elements, index + 1, value)
            if removed and child.empty():
                node.star = None
            return removed
        child = node.children.get(element)
        if child is None:
            return False
        removed = self._remove(child, elements, index + 1, value)
        if removed and child.empty():
            del node.children[element]
        return removed

    def match(self, subject: str) -> Set[T]:
        """Every value whose pattern matches the concrete ``subject``.

        Reserved subjects (leading ``_`` element) are only reached by
        patterns that name the first element literally — see
        :func:`is_admin_subject`.
        """
        elements = validate_subject(subject)
        out: Set[T] = set()
        admin = elements[0].startswith("_")
        self._match(self._root, elements, 0, out, root_admin=admin)
        return out

    def _match(self, node: _TrieNode[T], elements: List[str], index: int,
               out: Set[T], root_admin: bool = False) -> None:
        wildcards_ok = not (root_admin and index == 0)
        if index < len(elements) and wildcards_ok:
            out |= node.tail_values   # '>' here matches the non-empty rest
        if index == len(elements):
            out |= node.values
            return
        element = elements[index]
        child = node.children.get(element)
        if child is not None:
            self._match(child, elements, index + 1, out)
        if node.star is not None and wildcards_ok:
            self._match(node.star, elements, index + 1, out)

    def matches_anything(self, subject: str) -> bool:
        """Cheaper ``bool(match(subject))`` for forwarding decisions."""
        return bool(self.match(subject))

    def patterns_for(self, value: T) -> List[str]:
        """Every pattern under which ``value`` is registered (diagnostics)."""
        out: List[str] = []
        self._collect(self._root, [], value, out)
        return sorted(out)

    def _collect(self, node: _TrieNode[T], prefix: List[str], value: T,
                 out: List[str]) -> None:
        if value in node.values and prefix:
            out.append(".".join(prefix))
        if value in node.tail_values:
            out.append(".".join(prefix + [">"]))
        for element, child in node.children.items():
            self._collect(child, prefix + [element], value, out)
        if node.star is not None:
            self._collect(node.star, prefix + ["*"], value, out)

    def __len__(self) -> int:
        """Number of (pattern, value) registrations."""
        return self._count
