"""Guaranteed message delivery (the stronger QoS of Section 3.1).

    "In this case, the message is logged to non-volatile storage before
    it is sent.  The message is guaranteed to be delivered at least once,
    regardless of failures.  The publisher will retransmit the message at
    appropriate times until a reply is received.  If there is no failure,
    then the message will be delivered exactly once.  Guaranteed delivery
    is particularly useful when sending data to a database over an
    unreliable network."

Publisher side (:class:`GuaranteedPublisher`): each guaranteed publish is
recorded in the host's stable ledger *before* transmission and republished
on a timer until ``ack_quorum`` distinct consumers have acknowledged it.
The ledger (and the acks collected so far) survive crashes; on recovery
the publisher resumes retransmitting unacknowledged entries.

Consumer side (:class:`GuaranteedConsumer`): a daemon with *durable*
subscribers records delivered ledger ids in stable storage, so a
retransmission after a consumer crash is acknowledged but not delivered
twice — at-least-once to the application, exactly-once when nothing
fails.

Both sides take a ``namespace``: shard daemons above plane 0 suffix
their stable-store keys with it so the shards of one host never share a
ledger, counter, or seen-set.  The empty default keeps the classic key
names (and ledger-id format) untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..sim.kernel import PeriodicTimer, Simulator
from ..sim.node import Host

__all__ = ["GuaranteedPublisher", "GuaranteedConsumer", "LedgerEntry"]

_LEDGER_KEY = "gd.ledger"
_COUNTER_KEY = "gd.counter"
_SEEN_KEY = "gd.seen"


@dataclass
class LedgerEntry:
    """One guaranteed message awaiting acknowledgement."""

    ledger_id: str
    subject: str
    sender: str          # publishing client id
    payload: bytes
    acks: List[str]      # consumer daemon sessions' hosts that confirmed
    done: bool = False

    def to_record(self) -> dict:
        return {"ledger_id": self.ledger_id, "subject": self.subject,
                "sender": self.sender, "payload": self.payload,
                "acks": list(self.acks), "done": self.done}

    @classmethod
    def from_record(cls, record: dict) -> "LedgerEntry":
        return cls(record["ledger_id"], record["subject"], record["sender"],
                   record["payload"], list(record["acks"]), record["done"])


class GuaranteedPublisher:
    """The publish side of guaranteed delivery for one daemon."""

    def __init__(self, sim: Simulator, host: Host, ack_quorum: int,
                 retransmit_interval: float,
                 republish: Callable[[LedgerEntry], None],
                 namespace: str = ""):
        self.sim = sim
        self.host = host
        self.ack_quorum = ack_quorum
        self.retransmit_interval = retransmit_interval
        self._republish = republish
        self._ledger_key = _LEDGER_KEY + namespace
        self._counter_key = _COUNTER_KEY + namespace
        # ledger ids stay `<host>/...`-prefixed (ack unicast routing
        # parses the origin host off the front) but carry the namespace
        # so ids from different shard planes can never collide
        self._id_prefix = (f"{host.address}/{namespace}." if namespace
                           else f"{host.address}/")
        self._entries: Dict[str, LedgerEntry] = {}
        self._timer: Optional[PeriodicTimer] = None
        self.retransmits = 0
        self._load()
        if self.pending():
            # a previous incarnation left unacked entries in the ledger
            self._ensure_timer()

    # ------------------------------------------------------------------
    def record(self, subject: str, sender: str, payload: bytes) -> str:
        """Log a new guaranteed message to stable storage; returns its id.

        This runs *before* the first transmission, per the paper.
        """
        counter = self.host.stable.get(self._counter_key, 0) + 1
        self.host.stable.put(self._counter_key, counter)
        ledger_id = f"{self._id_prefix}{counter}"
        entry = LedgerEntry(ledger_id, subject, sender, payload, [])
        self._entries[ledger_id] = entry
        self._persist()
        self._ensure_timer()
        return ledger_id

    def handle_ack(self, ledger_id: str, consumer: str) -> None:
        """A consumer confirmed stable receipt of ``ledger_id``."""
        entry = self._entries.get(ledger_id)
        if entry is None or entry.done:
            return
        if consumer not in entry.acks:
            entry.acks.append(consumer)
        if len(entry.acks) >= self.ack_quorum:
            entry.done = True
        self._persist()

    def pending(self) -> List[LedgerEntry]:
        return [e for e in self._entries.values() if not e.done]

    def entry(self, ledger_id: str) -> Optional[LedgerEntry]:
        return self._entries.get(ledger_id)

    def shutdown(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def recover(self) -> None:
        """Reload the ledger after a crash and resume retransmission."""
        self._entries.clear()
        self._load()
        self._ensure_timer()

    # ------------------------------------------------------------------
    def _ensure_timer(self) -> None:
        if self._timer is None or self._timer.stopped:
            self._timer = PeriodicTimer(self.sim, self.retransmit_interval,
                                        self._tick, name="gd.retransmit")

    def _tick(self) -> None:
        pending = self.pending()
        if not pending:
            self._timer.stop()
            self._timer = None
            return
        for entry in pending:
            self.retransmits += 1
            self._republish(entry)

    def _persist(self) -> None:
        self.host.stable.put(self._ledger_key,
                             [e.to_record() for e in self._entries.values()])

    def _load(self) -> None:
        for record in self.host.stable.get(self._ledger_key, []):
            entry = LedgerEntry.from_record(record)
            self._entries[entry.ledger_id] = entry


class GuaranteedConsumer:
    """The consume side: stable dedupe of delivered ledger ids."""

    def __init__(self, host: Host, namespace: str = ""):
        self.host = host
        self._seen_key = _SEEN_KEY + namespace
        self._seen = set(host.stable.get(self._seen_key, []))

    def first_delivery(self, ledger_id: str) -> bool:
        """True exactly once per ledger id, durably across crashes."""
        if ledger_id in self._seen:
            return False
        self._seen.add(ledger_id)
        self.host.stable.put(self._seen_key, sorted(self._seen))
        return True

    def seen(self, ledger_id: str) -> bool:
        return ledger_id in self._seen

    def recover(self) -> None:
        self._seen = set(self.host.stable.get(self._seen_key, []))
