"""The shared flow-control layer: bounded queues, overflow policies, and
credit-style backpressure.

Every place a message can wait — the daemon's outbound publish queue, the
per-application delivery lanes, the reliable receiver's reorder buffer,
the sender's retention window, the WAN link's store-and-forward queues —
is a finite resource.  Before this layer each of those bounds was hand
rolled (a silent ``return`` here, an ``OrderedDict.popitem`` there), so
overload behaviour was an accident of whichever list filled first.  Here
the bounds are one abstraction with one stats surface:

* :class:`BoundedQueue` — a FIFO with a hard capacity and a configurable
  :data:`overflow policy <OVERFLOW_POLICIES>`:

  - ``block`` — a full queue admits nothing; the offer is *deferred* and
    the producer is told so (the producer retries, or a retransmission
    layer above does it for free).
  - ``drop-newest`` — a full queue rejects the incoming item.
  - ``drop-oldest`` — a full queue evicts its oldest (evictable) item to
    make room for the incoming one.

* :class:`BoundedBuffer` — the keyed analogue (seq → envelope) used by
  reorder and retention buffers, with the same policies and stats.

* *Credit* — a queue that has pushed back (deferred or shed) fires its
  credit callbacks once it drains to ``resume_at``; producers register
  with :meth:`BoundedQueue.on_credit` and resume publishing.  This is the
  upstream half of backpressure: pressure propagates producer-ward as
  admission results, relief propagates as credits.

Every queue counts offers, acceptances, deferrals, sheds (split by which
end was dropped), drains, and its high watermark, and — when given a
tracer — emits ``flow.drop`` / ``flow.defer`` / ``flow.credit`` trace
events so overload is observable, not silent.
"""

from __future__ import annotations

import enum
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Deque, Dict, List, Optional, Tuple,
                    TYPE_CHECKING)

from .metrics import MetricsRegistry, MetricsScope

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.trace import Tracer
    from .message import Envelope

__all__ = ["Admission", "BoundedBuffer", "BoundedQueue", "FlowConfig",
           "FlowStats", "OVERFLOW_POLICIES", "POLICY_BLOCK",
           "POLICY_DROP_NEWEST", "POLICY_DROP_OLDEST", "PublishReceipt"]


class Admission(enum.Enum):
    """The outcome of offering an item to a bounded queue."""

    ACCEPTED = "accepted"   # the item is in the queue (or delivered)
    DEFERRED = "deferred"   # no room and nothing shed; try again later
    DROPPED = "dropped"     # the item was shed per the overflow policy

    def __bool__(self) -> bool:
        """Truthy iff the item got in — ``if queue.offer(x):`` reads well."""
        return self is Admission.ACCEPTED


POLICY_BLOCK = "block"
POLICY_DROP_NEWEST = "drop-newest"
POLICY_DROP_OLDEST = "drop-oldest"

#: The three overflow policies every bounded queue understands.
OVERFLOW_POLICIES = (POLICY_BLOCK, POLICY_DROP_NEWEST, POLICY_DROP_OLDEST)


def _check_policy(policy: str) -> str:
    if policy not in OVERFLOW_POLICIES:
        raise ValueError(f"unknown overflow policy {policy!r}; "
                         f"expected one of {OVERFLOW_POLICIES}")
    return policy


class FlowStats:
    """Counters for one bounded queue (benches, tests, operators).

    Since the telemetry-plane refactor this is a thin *view* over
    :mod:`repro.core.metrics` instruments named ``flow.<queue>.<field>``:
    the int-returning properties and :meth:`snapshot` keep the historical
    read surface, while the underlying counters live in whichever
    :class:`~repro.core.metrics.MetricsRegistry` the queue's owner passed
    in (the owning daemon's, for bus queues) — or in a detached private
    registry for standalone queues, which behaves identically.
    """

    __slots__ = ("name", "capacity", "policy", "_depth", "_high_watermark",
                 "_offered", "_accepted", "_deferred", "_dropped_newest",
                 "_dropped_oldest", "_drained", "_credits")

    def __init__(self, name: str, capacity: int, policy: str,
                 metrics: Optional["MetricsRegistry"] = None):
        self.name = name
        self.capacity = capacity
        self.policy = policy
        if metrics is None:
            metrics = MetricsRegistry()
        scope: MetricsScope = metrics.scope(f"flow.{name}")
        self._depth = scope.gauge("depth")
        self._high_watermark = scope.gauge("high_watermark")
        self._offered = scope.counter("offered")
        self._accepted = scope.counter("accepted")
        self._deferred = scope.counter("deferred")
        self._dropped_newest = scope.counter("dropped_newest")
        self._dropped_oldest = scope.counter("dropped_oldest")
        self._drained = scope.counter("drained")
        self._credits = scope.counter("credits")

    # int-returning views (the historical dataclass fields)
    @property
    def depth(self) -> int:
        return self._depth.value

    @property
    def high_watermark(self) -> int:
        return self._high_watermark.value

    @property
    def offered(self) -> int:
        return self._offered.value

    @property
    def accepted(self) -> int:
        return self._accepted.value

    @property
    def deferred(self) -> int:
        return self._deferred.value

    @property
    def dropped_newest(self) -> int:
        return self._dropped_newest.value

    @property
    def dropped_oldest(self) -> int:
        return self._dropped_oldest.value

    @property
    def drained(self) -> int:
        return self._drained.value

    @property
    def credits(self) -> int:
        return self._credits.value

    @property
    def dropped(self) -> int:
        """Total sheds, whichever end they came from."""
        return self._dropped_newest.value + self._dropped_oldest.value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name, "capacity": self.capacity,
            "policy": self.policy, "depth": self.depth,
            "high_watermark": self.high_watermark, "offered": self.offered,
            "accepted": self.accepted, "deferred": self.deferred,
            "dropped_newest": self.dropped_newest,
            "dropped_oldest": self.dropped_oldest,
            "dropped": self.dropped, "drained": self.drained,
            "credits": self.credits,
        }


class _FlowTracing:
    """Shared trace plumbing for the queue flavours."""

    def __init__(self, name: str, tracer: Optional["Tracer"],
                 now: Optional[Callable[[], float]]):
        self.name = name
        self.tracer = tracer
        self.now = now or (lambda: 0.0)

    def trace(self, category: str, **fields: Any) -> None:
        if self.tracer:
            self.tracer.emit(self.now(), category, queue=self.name, **fields)


class BoundedQueue:
    """A FIFO with a hard capacity, an overflow policy, and credit.

    ``evict_filter`` (drop-oldest only) restricts which queued items may
    be evicted — e.g. guaranteed-QoS envelopes are never shed.  Evicted
    items are handed to ``on_evict`` so their owner can release
    per-item state (retention entries, ledger bookkeeping).
    """

    def __init__(self, name: str, capacity: int,
                 policy: str = POLICY_BLOCK, *,
                 resume_at: Optional[int] = None,
                 evict_filter: Optional[Callable[[Any], bool]] = None,
                 on_evict: Optional[Callable[[Any], None]] = None,
                 tracer: Optional["Tracer"] = None,
                 now: Optional[Callable[[], float]] = None,
                 metrics: Optional[MetricsRegistry] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1 (got {capacity})")
        self.capacity = capacity
        self.policy = _check_policy(policy)
        #: queue depth at which a pressured queue fires its credits
        self.resume_at = (max(0, capacity // 2) if resume_at is None
                          else resume_at)
        self._evict_filter = evict_filter
        self._on_evict = on_evict
        self._items: Deque[Any] = deque()
        self._tracing = _FlowTracing(name, tracer, now)
        self._pressured = False
        self._credit_cbs: List[Callable[[], None]] = []
        self.stats = FlowStats(name, capacity, self.policy, metrics)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._tracing.name

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def pressured(self) -> bool:
        """True between a defer/shed and the credit that relieves it."""
        return self._pressured

    def on_credit(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` whenever a pressured queue drains enough."""
        self._credit_cbs.append(callback)

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def offer(self, item: Any, *, no_shed: bool = False) -> Admission:
        """Try to enqueue ``item``; the admission says what happened.

        ``no_shed=True`` forces ``block`` semantics for this offer
        regardless of policy — used for guaranteed-QoS traffic, which is
        deferred to its retransmission layer rather than shed.
        """
        self.stats._offered.value += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            self._note_depth()
            self.stats._accepted.value += 1
            return Admission.ACCEPTED
        self._pressured = True
        if no_shed or self.policy == POLICY_BLOCK:
            self.stats._deferred.value += 1
            self._tracing.trace("flow.defer", depth=len(self._items))
            return Admission.DEFERRED
        if self.policy == POLICY_DROP_NEWEST:
            self.stats._dropped_newest.value += 1
            self._tracing.trace("flow.drop", end="newest",
                                depth=len(self._items))
            return Admission.DROPPED
        # drop-oldest: evict the oldest evictable item to make room
        victim = self._evict_oldest()
        if victim is None:
            # nothing evictable (e.g. all queued traffic is guaranteed)
            self.stats._deferred.value += 1
            self._tracing.trace("flow.defer", depth=len(self._items))
            return Admission.DEFERRED
        self.stats._dropped_oldest.value += 1
        self._tracing.trace("flow.drop", end="oldest",
                            depth=len(self._items))
        if self._on_evict is not None:
            self._on_evict(victim)
        self._items.append(item)
        self._note_depth()
        self.stats._accepted.value += 1
        return Admission.ACCEPTED

    def pass_through(self) -> None:
        """Account an item that bypassed the deque entirely (the empty-
        queue fast path delivers synchronously but still counts)."""
        self.stats._offered.value += 1
        self.stats._accepted.value += 1
        self.stats._drained.value += 1
        if self.stats._high_watermark.value == 0:
            self.stats._high_watermark.value = 1 if self.capacity >= 1 else 0

    def _evict_oldest(self) -> Optional[Any]:
        if self._evict_filter is None:
            if not self._items:
                return None
            return self._items.popleft()
        for index, item in enumerate(self._items):
            if self._evict_filter(item):
                del self._items[index]
                return item
        return None

    def _note_depth(self) -> None:
        depth = len(self._items)
        self.stats._depth.value = depth
        if depth > self.stats._high_watermark.value:
            self.stats._high_watermark.value = depth

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def take(self) -> Any:
        """Dequeue the head; fires credits when pressure is relieved."""
        item = self._items.popleft()
        self.stats._drained.value += 1
        self.stats._depth.value = len(self._items)
        self._maybe_credit()
        return item

    def peek(self) -> Any:
        return self._items[0]

    def items(self) -> Tuple[Any, ...]:
        """The queued items, head first (read-only snapshot)."""
        return tuple(self._items)

    def drain(self, max_items: Optional[int] = None) -> List[Any]:
        """Dequeue up to ``max_items`` (all, when None) as a list."""
        limit = len(self._items) if max_items is None else max_items
        out = []
        while self._items and len(out) < limit:
            out.append(self._items.popleft())
        self.stats._drained.value += len(out)
        self.stats._depth.value = len(self._items)
        if out:
            self._maybe_credit()
        return out

    def clear(self) -> int:
        """Discard everything queued (crash/shutdown); returns the count.

        Deliberately does *not* fire credits: the owner is going away.
        """
        count = len(self._items)
        self._items.clear()
        self.stats._depth.value = 0
        self._pressured = False
        return count

    def _maybe_credit(self) -> None:
        if self._pressured and len(self._items) <= self.resume_at:
            self._pressured = False
            self.stats._credits.value += 1
            self._tracing.trace("flow.credit", depth=len(self._items))
            for callback in list(self._credit_cbs):
                callback()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<BoundedQueue {self.name} {len(self._items)}/"
                f"{self.capacity} {self.policy}>")


class BoundedBuffer:
    """A keyed, insertion-ordered bounded map (seq → item).

    The reorder and retention buffers are maps, not FIFOs, but they need
    the same capacity/policy/stats treatment.  ``drop-oldest`` evicts the
    first-inserted entry; evictions are reported through ``on_evict`` as
    ``(key, item)`` pairs.
    """

    def __init__(self, name: str, capacity: int,
                 policy: str = POLICY_DROP_NEWEST, *,
                 on_evict: Optional[Callable[[Any, Any], None]] = None,
                 tracer: Optional["Tracer"] = None,
                 now: Optional[Callable[[], float]] = None,
                 metrics: Optional[MetricsRegistry] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1 (got {capacity})")
        self.capacity = capacity
        self.policy = _check_policy(policy)
        self._on_evict = on_evict
        self._items: "OrderedDict[Any, Any]" = OrderedDict()
        self._tracing = _FlowTracing(name, tracer, now)
        self.stats = FlowStats(name, capacity, self.policy, metrics)

    @property
    def name(self) -> str:
        return self._tracing.name

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, key: Any) -> bool:
        return key in self._items

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def insert(self, key: Any, item: Any) -> Admission:
        """Insert ``key → item``; a full buffer applies the policy."""
        self.stats._offered.value += 1
        if key in self._items:
            self._items[key] = item
            self.stats._accepted.value += 1
            return Admission.ACCEPTED
        if len(self._items) < self.capacity:
            self._items[key] = item
            self._note_depth()
            self.stats._accepted.value += 1
            return Admission.ACCEPTED
        if self.policy == POLICY_BLOCK:
            self.stats._deferred.value += 1
            self._tracing.trace("flow.defer", depth=len(self._items), key=key)
            return Admission.DEFERRED
        if self.policy == POLICY_DROP_NEWEST:
            self.stats._dropped_newest.value += 1
            self._tracing.trace("flow.drop", end="newest",
                                depth=len(self._items), key=key)
            return Admission.DROPPED
        old_key, old_item = self._items.popitem(last=False)
        self.stats._dropped_oldest.value += 1
        self._tracing.trace("flow.drop", end="oldest",
                            depth=len(self._items), key=old_key)
        if self._on_evict is not None:
            self._on_evict(old_key, old_item)
        self._items[key] = item
        self._note_depth()
        self.stats._accepted.value += 1
        return Admission.ACCEPTED

    def get(self, key: Any, default: Any = None) -> Any:
        return self._items.get(key, default)

    def pop(self, key: Any, default: Any = None) -> Any:
        if key in self._items:
            self.stats._drained.value += 1
            item = self._items.pop(key)
            self.stats._depth.value = len(self._items)
            return item
        return default

    def oldest(self) -> Tuple[Any, Any]:
        """The first-inserted ``(key, item)`` pair (raises when empty)."""
        return next(iter(self._items.items()))

    def pop_oldest(self) -> Tuple[Any, Any]:
        pair = self._items.popitem(last=False)
        self.stats._drained.value += 1
        self.stats._depth.value = len(self._items)
        return pair

    def keys(self):
        return self._items.keys()

    def clear(self) -> int:
        count = len(self._items)
        self._items.clear()
        self.stats._depth.value = 0
        return count

    def _note_depth(self) -> None:
        depth = len(self._items)
        self.stats._depth.value = depth
        if depth > self.stats._high_watermark.value:
            self.stats._high_watermark.value = depth

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<BoundedBuffer {self.name} {len(self._items)}/"
                f"{self.capacity} {self.policy}>")


@dataclass
class FlowConfig:
    """Flow-control tunables for one daemon (see ``BusConfig.flow``).

    The defaults are deliberately non-shedding: a generous admission
    queue, no wire pacing, and synchronous delivery lanes reproduce the
    pre-flow-control behaviour bit for bit (the Appendix figures are
    regenerated under these defaults).  Overload experiments turn the
    knobs.
    """

    #: Envelopes the daemon's outbound admission queue holds.
    publish_queue: int = 4096
    #: Overflow policy of the admission queue.  ``block`` surfaces
    #: pressure as a DEFERRED publish receipt; the drop policies shed
    #: reliable-QoS envelopes (guaranteed is always deferred to the
    #: stable ledger's retransmission, never shed).
    publish_policy: str = POLICY_BLOCK
    #: How far ahead of simulated time (seconds) the host's send pipeline
    #: may run before the outbound pump pauses.  ``None`` disables
    #: pacing: publishes reach the batcher synchronously, exactly as
    #: before this layer existed.
    max_send_backlog: Optional[float] = None
    #: Envelopes each application's delivery lane holds.
    delivery_queue: int = 4096
    #: Overflow policy of the delivery lanes.  A slow application sheds
    #: its own (reliable) backlog per this policy; its co-hosted
    #: neighbours are unaffected.
    delivery_policy: str = POLICY_DROP_OLDEST

    def __post_init__(self) -> None:
        _check_policy(self.publish_policy)
        _check_policy(self.delivery_policy)


@dataclass
class PublishReceipt:
    """What a publisher gets back: did the bus take the message?

    ``accepted`` publishes are on their way.  ``deferred`` means the
    outbound queue pushed back — guaranteed-QoS messages are already in
    the stable ledger and will be retransmitted automatically; reliable
    publishers should wait for credit (:meth:`BusClient.on_flow_credit`)
    and retry.  ``dropped`` means the admission policy shed the message.
    """

    admission: Admission
    size: int
    envelope: Optional["Envelope"] = field(default=None, repr=False)

    @property
    def accepted(self) -> bool:
        return self.admission is Admission.ACCEPTED

    def __bool__(self) -> bool:
        return self.accepted
