"""The bus wire codec: every packet the daemons exchange, as real bytes.

The paper's implementation sends marshalled messages as "UDP packets in
combination with a retransmission protocol" (Section 3.1).  This module
is that marshalling for the daemon-to-daemon protocol: it encodes every
:class:`~repro.core.message.Packet` kind (DATA, RETRANS, NACK, HEARTBEAT,
ACK) and the :class:`~repro.core.message.Envelope`\\ s inside it to a
length-prefixed, checksummed frame (:mod:`repro.sim.framing`), and
decodes frames back at the receiving socket boundary — so no object ever
crosses hosts by reference, sizes on the wire are the sizes of the bytes
actually sent, and corruption is detectable.

Envelope encodings are cached on the envelope (keyed by its stamped
``(session, seq)`` identity), so the broadcast path encodes each
published message exactly once no matter how many consumers hear it, and
NACK repairs re-send the retained bytes instead of re-marshalling.

Wire header compression
-----------------------

Small payloads are dwarfed by their headers: ``subject``, ``sender``,
``session``, ``ledger_id``, and ``via`` hops repeat on every envelope a
session publishes.  A publishing daemon may therefore hold a
:class:`StringTable` that assigns dense varint ids to header strings in
first-use order (HPACK-style; ids are never reassigned for the life of
the session), and encode DATA/RETRANS frames with ids in place of
strings.  Each frame stays *self-contained*:

* a DATA frame carries inline ``(id, string)`` definitions for every id
  *first used* in that frame;
* a RETRANS frame carries definitions for **all** ids it references, so
  NACK repairs and late joiners decode without having seen the original
  defining DATA frame.

Receivers learn ``id -> string`` mappings per sender session (the
session name rides every frame in the clear) from those definition
sections.  A frame that references an id the receiver has not learned is
a *decodable-but-unresolvable* condition — structurally parseable (ids
never change field widths), but semantically incomplete.  The decoder
applies the frame's definitions (the frame passed its CRC, so they are
intact), then raises :class:`UnresolvedStringId` carrying the envelope
seq range; the daemon treats it exactly like a gap: drop the frame and
NACK, never crash.  HEARTBEAT/NACK/ACK packets are never compressed —
they are rare, small, and must be readable with zero session state.

Decoding is memoized symmetrically: a broadcast is the *same* byte
buffer at every receiving daemon, so :func:`decode_packet` keeps a small
LRU keyed by the exact frame bytes and CRC-checks + parses each unique
buffer once per fan-out instead of once per receiver.  This is safe
because decoding is a pure function of the bytes *and the receiver's
string table*: memo entries record which table ids the frame relied on
(``needs``) and which it defined (``defines``), and a memo hit replays
the definitions into the receiver's table and validates every needed id
*by value* against it — a receiver that has not learned an id gets
:class:`UnresolvedStringId` from the memo exactly as it would from a
fresh parse, and a (contrived) byte-identical frame meeting a
conflicting table bypasses the memo entirely.  It is fault-honest
because a receiver-side bit flip (``corrupt_rate``) produces a
*different* buffer that misses the memo and fails its own CRC check —
every afflicted receiver still rejects its own corrupted copy.
Failures are never cached.  :func:`configure_decode_memo` resizes or
disables the memo (the escape hatch the perf harness uses to prove
behaviour is unchanged).

Frame body layout (all integers varint unless noted)::

    packet     := kind:u8 flags:u8 session:str session_start:f64
                  last_seq [first last] [ack_ledger_id:str]
                  [ack_consumer:str] [defs] count envelope*
    defs       := def_count (id string:str)*          # iff flags COMPRESSED
    envelope   := flags:u8 subject:str sender:str session:str seq qos:u8
                  publish_time:f64 envelope_id [ledger_id:str]
                  via_count via:str* payload:bytes
    envelope'  := flags:u8 subject_id sender_id session_id seq qos:u8
                  publish_time:f64 envelope_id [ledger_id_id]
                  via_count via_id* payload:bytes     # iff flags COMPRESSED

``flags`` marks which optional fields follow (packet bit ``0x08`` =
COMPRESSED).  Strings are UTF-8 with a varint length prefix; ``f64`` is
a big-endian IEEE double.  Decoded header strings are ``sys.intern``\\ ed
so the subject-match memo and per-app lanes key on identical objects,
and the parse itself runs on a single :class:`~repro.sim.framing.Cursor`
over a zero-copy view of the frame — in the compressed steady state a
header string is a table lookup, not an allocation.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from io import BytesIO
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..sim.framing import (CorruptFrame, Cursor, frame, unframe_view,
                           write_bytes, write_f64, write_str, write_varint)
from .message import Envelope, Packet, PacketKind, QoS
from .metrics import MetricsRegistry

__all__ = ["CorruptFrame", "DEFAULT_DECODE_MEMO_CAPACITY", "StringTable",
           "UnresolvedStringId", "configure_decode_memo",
           "decode_memo_stats", "decode_packet", "encode_envelope",
           "wire_metrics",
           "encode_envelope_compressed", "encode_packet",
           "envelope_wire_size", "packet_wire_size"]

_KIND_TO_CODE = {
    PacketKind.DATA: 0,
    PacketKind.RETRANS: 1,
    PacketKind.NACK: 2,
    PacketKind.HEARTBEAT: 3,
    PacketKind.ACK: 4,
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}

_QOS_TO_CODE = {QoS.RELIABLE: 0, QoS.GUARANTEED: 1}
_CODE_TO_QOS = {code: qos for qos, code in _QOS_TO_CODE.items()}

# packet flag bits
_P_NACK_RANGE = 0x01
_P_ACK_LEDGER = 0x02
_P_ACK_CONSUMER = 0x04
_P_COMPRESSED = 0x08

# envelope flag bits
_E_LEDGER = 0x01

_intern = sys.intern


class UnresolvedStringId(CorruptFrame):
    """A CRC-valid compressed frame referenced ids this receiver lacks.

    Raised after the frame's own definitions have been applied to the
    receiver's table.  Carries enough metadata for the reliability layer
    to treat the drop like a gap and arm a NACK
    (:meth:`~repro.core.reliable.ReliableReceiver.note_undecodable`).
    """

    def __init__(self, session: str, missing: Iterable[int],
                 first_seq: int, last_seq: int, session_start: float):
        self.session = session
        self.missing = frozenset(missing)
        self.first_seq = first_seq
        self.last_seq = last_seq
        self.session_start = session_start
        super().__init__(
            f"unresolved string ids {sorted(self.missing)} in frame "
            f"from {session!r} (seqs {first_seq}..{last_seq})")


class StringTable:
    """Sender-side header-string table for one daemon session.

    Ids are assigned densely from 0 in first-use order and never
    reassigned; the table lives and dies with the session (a restarted
    daemon gets a new session name *and* a new table, so receivers never
    mix mappings across incarnations).
    """

    __slots__ = ("ids", "strings")

    def __init__(self) -> None:
        self.ids: Dict[str, int] = {}
        self.strings: List[str] = []

    def __len__(self) -> int:
        return len(self.strings)

    def intern(self, text: str) -> Tuple[int, bool]:
        """Id for ``text``, assigning the next id on first use.

        Returns ``(id, is_new)``; ``is_new`` tells the packet encoder the
        frame being built must carry the inline definition.
        """
        idx = self.ids.get(text)
        if idx is not None:
            return idx, False
        idx = len(self.strings)
        self.ids[text] = idx
        self.strings.append(_intern(text))
        return idx, True


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------

def _encode_envelope_body(envelope: Envelope) -> bytes:
    out = BytesIO()
    flags = _E_LEDGER if envelope.ledger_id is not None else 0
    out.write(bytes((flags,)))
    write_str(out, envelope.subject)
    write_str(out, envelope.sender)
    write_str(out, envelope.session)
    write_varint(out, envelope.seq)
    out.write(bytes((_QOS_TO_CODE[envelope.qos],)))
    write_f64(out, envelope.publish_time)
    write_varint(out, envelope.envelope_id)
    if envelope.ledger_id is not None:
        write_str(out, envelope.ledger_id)
    write_varint(out, len(envelope.via))
    for hop in envelope.via:
        write_str(out, hop)
    write_bytes(out, envelope.payload)
    return out.getvalue()


def encode_envelope(envelope: Envelope) -> bytes:
    """Encoded body bytes for one envelope (cached on the envelope).

    The cache key is the stamped ``(session, seq)`` identity: stamping by
    the reliable sender changes both, invalidating any pre-stamp entry,
    and after stamping envelopes are immutable on the send path — so the
    broadcast fan-out and every NACK repair reuse one encoding.
    """
    cached = getattr(envelope, "_wire_cache", None)
    key = (envelope.session, envelope.seq)
    if cached is not None and cached[0] == key:
        return cached[1]
    body = _encode_envelope_body(envelope)
    envelope._wire_cache = (key, body)
    return body


def _table_ref(table: StringTable, text: str,
               new_defs: List[Tuple[int, str]], refs: List[int]) -> int:
    idx, is_new = table.intern(text)
    if is_new:
        new_defs.append((idx, table.strings[idx]))
    refs.append(idx)
    return idx


def encode_envelope_compressed(
        envelope: Envelope, table: StringTable,
        new_defs: List[Tuple[int, str]]) -> Tuple[bytes, Tuple[int, ...]]:
    """Compressed body + referenced ids for one envelope.

    Header strings are replaced by ids from ``table``; any id assigned
    during this call is appended to ``new_defs`` so the enclosing DATA
    frame can carry its definition.  Cached on the envelope alongside the
    plain encoding, keyed by ``(session, seq)`` *and* the table identity.
    The defs this envelope introduced are cached too and replayed on a
    hit — so encoding the same packet twice yields identical bytes, and
    the frame that carries an envelope always carries the definitions it
    was responsible for (redundant re-definitions are idempotent at the
    receiver).
    """
    cached = getattr(envelope, "_wire_cache_z", None)
    key = (envelope.session, envelope.seq)
    if cached is not None and cached[0] == key and cached[1] is table:
        new_defs.extend(cached[4])
        return cached[2], cached[3]
    refs: List[int] = []
    out = BytesIO()
    own_defs: List[Tuple[int, str]] = []
    flags = _E_LEDGER if envelope.ledger_id is not None else 0
    out.write(bytes((flags,)))
    write_varint(out, _table_ref(table, envelope.subject, own_defs, refs))
    write_varint(out, _table_ref(table, envelope.sender, own_defs, refs))
    write_varint(out, _table_ref(table, envelope.session, own_defs, refs))
    write_varint(out, envelope.seq)
    out.write(bytes((_QOS_TO_CODE[envelope.qos],)))
    write_f64(out, envelope.publish_time)
    write_varint(out, envelope.envelope_id)
    if envelope.ledger_id is not None:
        write_varint(out,
                     _table_ref(table, envelope.ledger_id, own_defs, refs))
    write_varint(out, len(envelope.via))
    for hop in envelope.via:
        write_varint(out, _table_ref(table, hop, own_defs, refs))
    write_bytes(out, envelope.payload)
    body = out.getvalue()
    new_defs.extend(own_defs)
    envelope._wire_cache_z = (key, table, body, tuple(refs),
                              tuple(own_defs))
    return body, tuple(refs)


def envelope_wire_size(envelope: Envelope) -> int:
    """Bytes this envelope contributes to an *uncompressed* packet body.

    Deliberately mode-independent: batching thresholds and tests measure
    against the canonical encoding, so turning compression on or off
    never changes batching decisions.
    """
    return len(encode_envelope(envelope))


# ----------------------------------------------------------------------
# packets
# ----------------------------------------------------------------------

def encode_packet(packet: Packet, table: Optional[StringTable] = None) -> bytes:
    """Encode ``packet`` to one checksummed wire frame.

    With ``table`` (the sending daemon's :class:`StringTable`), DATA and
    RETRANS frames are header-compressed: DATA defines ids first used in
    this frame, RETRANS defines every id it references (self-contained
    repair).  Other kinds — and any packet when ``table`` is ``None`` —
    use the plain encoding.
    """
    compress = (table is not None
                and packet.kind in (PacketKind.DATA, PacketKind.RETRANS))
    out = BytesIO()
    try:
        out.write(bytes((_KIND_TO_CODE[packet.kind],)))
    except KeyError:
        raise ValueError(f"unknown packet kind {packet.kind!r}") from None
    flags = 0
    if packet.nack_range is not None:
        flags |= _P_NACK_RANGE
    if packet.ack_ledger_id is not None:
        flags |= _P_ACK_LEDGER
    if packet.ack_consumer is not None:
        flags |= _P_ACK_CONSUMER
    if compress:
        flags |= _P_COMPRESSED
    out.write(bytes((flags,)))
    write_str(out, packet.session)
    write_f64(out, packet.session_start)
    write_varint(out, packet.last_seq)
    if packet.nack_range is not None:
        write_varint(out, packet.nack_range[0])
        write_varint(out, packet.nack_range[1])
    if packet.ack_ledger_id is not None:
        write_str(out, packet.ack_ledger_id)
    if packet.ack_consumer is not None:
        write_str(out, packet.ack_consumer)
    if compress:
        new_defs: List[Tuple[int, str]] = []
        bodies: List[bytes] = []
        all_refs: Set[int] = set()
        for envelope in packet.envelopes:
            body, refs = encode_envelope_compressed(envelope, table, new_defs)
            bodies.append(body)
            all_refs.update(refs)
        if packet.kind is PacketKind.RETRANS:
            def_pairs = [(idx, table.strings[idx]) for idx in sorted(all_refs)]
        else:
            def_pairs = new_defs
        write_varint(out, len(def_pairs))
        for idx, text in def_pairs:
            write_varint(out, idx)
            write_str(out, text)
        write_varint(out, len(bodies))
        for body in bodies:
            out.write(body)
    else:
        write_varint(out, len(packet.envelopes))
        for envelope in packet.envelopes:
            out.write(encode_envelope(envelope))
    return frame(out.getvalue())


#: Default bound on memoized decoded frames.  Sized for the fan-out
#: window: a frame only repeats while N daemons hear one broadcast, so a
#: few hundred entries cover even deep outbound queues.
DEFAULT_DECODE_MEMO_CAPACITY = 256

# entry: (packet, needs, defines) — needs/defines are None for plain
# frames; for compressed frames, defines maps in-frame definitions and
# needs maps every other referenced id to its value at parse time.
_MemoEntry = Tuple[Packet, Optional[Dict[int, str]], Optional[Dict[int, str]]]
_decode_memo: "OrderedDict[bytes, _MemoEntry]" = OrderedDict()
_decode_memo_capacity = DEFAULT_DECODE_MEMO_CAPACITY

# The memo is process-global (deliberately: the N receivers of one
# broadcast share a single parse), so its counters live in a module-
# level registry rather than any one daemon's — and are therefore NOT
# part of per-daemon ``_bus.stat.*`` snapshots, where self-referential
# stat frames hitting the shared memo would make publishing perturb the
# very counters being published.
_wire_metrics = MetricsRegistry()
_decode_memo_hits = _wire_metrics.counter("wire.decode_memo.hits")
_decode_memo_misses = _wire_metrics.counter("wire.decode_memo.misses")
_wire_metrics.gauge("wire.decode_memo.capacity",
                    source=lambda: _decode_memo_capacity)
_wire_metrics.gauge("wire.decode_memo.size",
                    source=lambda: len(_decode_memo))


def wire_metrics() -> MetricsRegistry:
    """The module-level registry holding the decode-memo instruments."""
    return _wire_metrics


def configure_decode_memo(capacity: int = DEFAULT_DECODE_MEMO_CAPACITY
                          ) -> None:
    """Resize the decode memo (0 disables it); clears entries and stats."""
    global _decode_memo_capacity
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0 (got {capacity})")
    _decode_memo_capacity = capacity
    _decode_memo.clear()
    _decode_memo_hits.reset()
    _decode_memo_misses.reset()


def decode_memo_stats() -> Dict[str, int]:
    """Hit/miss/size counters for benches and cache-honesty tests (a
    dict view over the :func:`wire_metrics` registry instruments)."""
    return {"capacity": _decode_memo_capacity, "size": len(_decode_memo),
            "hits": _decode_memo_hits.value,
            "misses": _decode_memo_misses.value}


def decode_packet(data: bytes,
                  tables: Optional[Dict[str, Dict[int, str]]] = None
                  ) -> Packet:
    """Decode one wire frame back to a :class:`Packet`.

    ``tables`` is the receiving daemon's per-session learned string
    tables (``session -> {id: string}``); compressed frames read and
    update them.  Without ``tables`` a throwaway table is used, so only
    fully self-contained frames resolve.

    Raises :class:`CorruptFrame` on any framing, checksum, or field
    validation failure, and its subclass :class:`UnresolvedStringId`
    when a compressed frame references ids this receiver has not
    learned — the caller drops the frame and lets the NACK/heartbeat
    machinery repair the gap.  Successful decodes are memoized by the
    exact frame bytes (see the module docstring), so the N receivers of
    one broadcast share a single parse; the memo replays each frame's
    table effects per receiver, keeping per-receiver outcomes identical
    to a fresh parse.
    """
    key = None
    if _decode_memo_capacity:
        key = bytes(data)
        entry = _decode_memo.get(key)
        if entry is not None:
            packet, needs, defines = entry
            if needs is None:                       # plain frame
                _decode_memo.move_to_end(key)
                _decode_memo_hits.value += 1
                return packet
            table = (tables.setdefault(packet.session, {})
                     if tables is not None else {})
            for idx, text in defines.items():
                table[idx] = text
            unresolved = []
            mismatch = False
            for idx, text in needs.items():
                have = table.get(idx)
                if have is None:
                    unresolved.append(idx)
                elif have != text:
                    mismatch = True                 # colliding table state:
                    break                           # this parse isn't ours
            if not mismatch:
                _decode_memo.move_to_end(key)
                _decode_memo_hits.value += 1
                if unresolved:
                    seqs = [e.seq for e in packet.envelopes]
                    raise UnresolvedStringId(
                        packet.session, unresolved, min(seqs), max(seqs),
                        packet.session_start)
                return packet
            key = None                              # bypass, parse fresh
    packet, needs, defines = _decode_packet_body(data, tables)
    if key is not None:
        _decode_memo_misses.value += 1
        _decode_memo[key] = (packet, needs, defines)
        while len(_decode_memo) > _decode_memo_capacity:
            _decode_memo.popitem(last=False)
    return packet


def _resolve_ref(idx: int, table: Dict[int, str], referenced: Set[int],
                 missing: Set[int]) -> str:
    referenced.add(idx)
    value = table.get(idx)
    if value is None:
        missing.add(idx)
        return ""
    return value


def _decode_packet_body(
        data: bytes, tables: Optional[Dict[str, Dict[int, str]]]
) -> Tuple[Packet, Optional[Dict[int, str]], Optional[Dict[int, str]]]:
    cur = Cursor(unframe_view(data))
    try:
        kind = _CODE_TO_KIND[cur.u8()]
    except KeyError:
        raise CorruptFrame("unknown packet kind code") from None
    flags = cur.u8()
    session = _intern(cur.str_())
    session_start = cur.f64()
    last_seq = cur.varint()
    nack_range = None
    if flags & _P_NACK_RANGE:
        first = cur.varint()
        last = cur.varint()
        nack_range = (first, last)
    ack_ledger_id = None
    if flags & _P_ACK_LEDGER:
        ack_ledger_id = _intern(cur.str_())
    ack_consumer = None
    if flags & _P_ACK_CONSUMER:
        ack_consumer = _intern(cur.str_())
    compressed = bool(flags & _P_COMPRESSED)
    needs: Optional[Dict[int, str]] = None
    defines: Optional[Dict[int, str]] = None
    table: Dict[int, str] = {}
    referenced: Set[int] = set()
    missing: Set[int] = set()
    if compressed:
        if kind not in (PacketKind.DATA, PacketKind.RETRANS):
            raise CorruptFrame(f"compressed flag on {kind.value} packet")
        # the frame passed its CRC, so the defs section is intact: apply
        # it to the receiver's table even if resolution fails below —
        # that is what makes a later repair decodable.
        if tables is not None:
            table = tables.setdefault(session, {})
        defines = {}
        for _ in range(cur.varint()):
            idx = cur.varint()
            text = _intern(cur.str_())
            defines[idx] = text
            table[idx] = text
    count = cur.varint()
    envelopes = []
    for _ in range(count):
        envelopes.append(
            _read_envelope(cur, compressed, table, referenced, missing))
    if not cur.exhausted:
        raise CorruptFrame(f"{cur.remaining()} trailing bytes after packet")
    if missing:
        seqs = [e.seq for e in envelopes]
        raise UnresolvedStringId(session, missing, min(seqs), max(seqs),
                                 session_start)
    if compressed:
        needs = {idx: table[idx] for idx in referenced
                 if idx not in defines}
    return (Packet(kind, session, envelopes, nack_range=nack_range,
                   last_seq=last_seq, session_start=session_start,
                   ack_ledger_id=ack_ledger_id, ack_consumer=ack_consumer),
            needs, defines)


def _read_envelope(cur: Cursor, compressed: bool, table: Dict[int, str],
                   referenced: Set[int], missing: Set[int]) -> Envelope:
    flags = cur.u8()
    if compressed:
        subject = _resolve_ref(cur.varint(), table, referenced, missing)
        sender = _resolve_ref(cur.varint(), table, referenced, missing)
        session = _resolve_ref(cur.varint(), table, referenced, missing)
    else:
        subject = _intern(cur.str_())
        sender = _intern(cur.str_())
        session = _intern(cur.str_())
    seq = cur.varint()
    qos_code = cur.u8()
    try:
        qos = _CODE_TO_QOS[qos_code]
    except KeyError:
        raise CorruptFrame(f"unknown qos code {qos_code}") from None
    publish_time = cur.f64()
    envelope_id = cur.varint()
    ledger_id = None
    if flags & _E_LEDGER:
        if compressed:
            ledger_id = _resolve_ref(cur.varint(), table, referenced, missing)
        else:
            ledger_id = _intern(cur.str_())
    via_count = cur.varint()
    via = []
    for _ in range(via_count):
        if compressed:
            via.append(_resolve_ref(cur.varint(), table, referenced, missing))
        else:
            via.append(_intern(cur.str_()))
    payload = cur.bytes_()
    return Envelope(subject=subject, sender=sender, session=session,
                    seq=seq, payload=payload, qos=qos, ledger_id=ledger_id,
                    publish_time=publish_time, via=tuple(via),
                    envelope_id=envelope_id)


def packet_wire_size(packet: Packet) -> int:
    """Bytes ``packet`` occupies on the wire uncompressed, framing included."""
    return len(encode_packet(packet))
