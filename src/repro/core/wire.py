"""The bus wire codec: every packet the daemons exchange, as real bytes.

The paper's implementation sends marshalled messages as "UDP packets in
combination with a retransmission protocol" (Section 3.1).  This module
is that marshalling for the daemon-to-daemon protocol: it encodes every
:class:`~repro.core.message.Packet` kind (DATA, RETRANS, NACK, HEARTBEAT,
ACK) and the :class:`~repro.core.message.Envelope`\\ s inside it to a
length-prefixed, checksummed frame (:mod:`repro.sim.framing`), and
decodes frames back at the receiving socket boundary — so no object ever
crosses hosts by reference, sizes on the wire are the sizes of the bytes
actually sent, and corruption is detectable.

Envelope encodings are cached on the envelope (keyed by its stamped
``(session, seq)`` identity), so the broadcast path encodes each
published message exactly once no matter how many consumers hear it, and
NACK repairs re-send the retained bytes instead of re-marshalling.

Decoding is memoized symmetrically: a broadcast is the *same* byte
buffer at every receiving daemon, so :func:`decode_packet` keeps a small
LRU keyed by the exact frame bytes and CRC-checks + parses each unique
buffer once per fan-out instead of once per receiver.  This is safe
because decoding is a pure function of the bytes and decoded packets are
never mutated on the receive path; it is fault-honest because a
receiver-side bit flip (``corrupt_rate``) produces a *different* buffer
that misses the memo and fails its own CRC check — every afflicted
receiver still rejects its own corrupted copy.  Failures are never
cached.  :func:`configure_decode_memo` resizes or disables the memo (the
escape hatch the perf harness uses to prove behaviour is unchanged).

Frame body layout (all integers varint unless noted)::

    packet   := kind:u8 flags:u8 session:str session_start:f64
                last_seq [first last] [ack_ledger_id:str]
                [ack_consumer:str] count envelope*
    envelope := flags:u8 subject:str sender:str session:str seq qos:u8
                publish_time:f64 envelope_id [ledger_id:str]
                via_count via:str* payload:bytes

``flags`` marks which optional fields follow.  Strings are UTF-8 with a
varint length prefix; ``f64`` is a big-endian IEEE double.
"""

from __future__ import annotations

from collections import OrderedDict
from io import BytesIO
from typing import Dict, Tuple

from ..sim.framing import (CorruptFrame, frame, read_bytes, read_f64,
                           read_str, read_varint, unframe, write_bytes,
                           write_f64, write_str, write_varint)
from .message import Envelope, Packet, PacketKind, QoS

__all__ = ["CorruptFrame", "DEFAULT_DECODE_MEMO_CAPACITY",
           "configure_decode_memo", "decode_memo_stats", "decode_packet",
           "encode_envelope", "encode_packet", "envelope_wire_size",
           "packet_wire_size"]

_KIND_TO_CODE = {
    PacketKind.DATA: 0,
    PacketKind.RETRANS: 1,
    PacketKind.NACK: 2,
    PacketKind.HEARTBEAT: 3,
    PacketKind.ACK: 4,
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}

_QOS_TO_CODE = {QoS.RELIABLE: 0, QoS.GUARANTEED: 1}
_CODE_TO_QOS = {code: qos for qos, code in _QOS_TO_CODE.items()}

# packet flag bits
_P_NACK_RANGE = 0x01
_P_ACK_LEDGER = 0x02
_P_ACK_CONSUMER = 0x04

# envelope flag bits
_E_LEDGER = 0x01


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------

def _encode_envelope_body(envelope: Envelope) -> bytes:
    out = BytesIO()
    flags = _E_LEDGER if envelope.ledger_id is not None else 0
    out.write(bytes((flags,)))
    write_str(out, envelope.subject)
    write_str(out, envelope.sender)
    write_str(out, envelope.session)
    write_varint(out, envelope.seq)
    out.write(bytes((_QOS_TO_CODE[envelope.qos],)))
    write_f64(out, envelope.publish_time)
    write_varint(out, envelope.envelope_id)
    if envelope.ledger_id is not None:
        write_str(out, envelope.ledger_id)
    write_varint(out, len(envelope.via))
    for hop in envelope.via:
        write_str(out, hop)
    write_bytes(out, envelope.payload)
    return out.getvalue()


def encode_envelope(envelope: Envelope) -> bytes:
    """Encoded body bytes for one envelope (cached on the envelope).

    The cache key is the stamped ``(session, seq)`` identity: stamping by
    the reliable sender changes both, invalidating any pre-stamp entry,
    and after stamping envelopes are immutable on the send path — so the
    broadcast fan-out and every NACK repair reuse one encoding.
    """
    cached = getattr(envelope, "_wire_cache", None)
    key = (envelope.session, envelope.seq)
    if cached is not None and cached[0] == key:
        return cached[1]
    body = _encode_envelope_body(envelope)
    envelope._wire_cache = (key, body)
    return body


def _decode_envelope(data: bytes, pos: int) -> Tuple[Envelope, int]:
    if pos >= len(data):
        raise CorruptFrame("truncated envelope")
    flags = data[pos]
    pos += 1
    subject, pos = read_str(data, pos)
    sender, pos = read_str(data, pos)
    session, pos = read_str(data, pos)
    seq, pos = read_varint(data, pos)
    if pos >= len(data):
        raise CorruptFrame("truncated envelope qos")
    try:
        qos = _CODE_TO_QOS[data[pos]]
    except KeyError:
        raise CorruptFrame(f"unknown qos code {data[pos]}") from None
    pos += 1
    publish_time, pos = read_f64(data, pos)
    envelope_id, pos = read_varint(data, pos)
    ledger_id = None
    if flags & _E_LEDGER:
        ledger_id, pos = read_str(data, pos)
    via_count, pos = read_varint(data, pos)
    via = []
    for _ in range(via_count):
        hop, pos = read_str(data, pos)
        via.append(hop)
    payload, pos = read_bytes(data, pos)
    return Envelope(subject=subject, sender=sender, session=session,
                    seq=seq, payload=payload, qos=qos, ledger_id=ledger_id,
                    publish_time=publish_time, via=tuple(via),
                    envelope_id=envelope_id), pos


def envelope_wire_size(envelope: Envelope) -> int:
    """Bytes this envelope contributes to a packet body."""
    return len(encode_envelope(envelope))


# ----------------------------------------------------------------------
# packets
# ----------------------------------------------------------------------

def encode_packet(packet: Packet) -> bytes:
    """Encode ``packet`` to one checksummed wire frame."""
    out = BytesIO()
    try:
        out.write(bytes((_KIND_TO_CODE[packet.kind],)))
    except KeyError:
        raise ValueError(f"unknown packet kind {packet.kind!r}") from None
    flags = 0
    if packet.nack_range is not None:
        flags |= _P_NACK_RANGE
    if packet.ack_ledger_id is not None:
        flags |= _P_ACK_LEDGER
    if packet.ack_consumer is not None:
        flags |= _P_ACK_CONSUMER
    out.write(bytes((flags,)))
    write_str(out, packet.session)
    write_f64(out, packet.session_start)
    write_varint(out, packet.last_seq)
    if packet.nack_range is not None:
        write_varint(out, packet.nack_range[0])
        write_varint(out, packet.nack_range[1])
    if packet.ack_ledger_id is not None:
        write_str(out, packet.ack_ledger_id)
    if packet.ack_consumer is not None:
        write_str(out, packet.ack_consumer)
    write_varint(out, len(packet.envelopes))
    for envelope in packet.envelopes:
        out.write(encode_envelope(envelope))
    return frame(out.getvalue())


#: Default bound on memoized decoded frames.  Sized for the fan-out
#: window: a frame only repeats while N daemons hear one broadcast, so a
#: few hundred entries cover even deep outbound queues.
DEFAULT_DECODE_MEMO_CAPACITY = 256

_decode_memo: "OrderedDict[bytes, Packet]" = OrderedDict()
_decode_memo_capacity = DEFAULT_DECODE_MEMO_CAPACITY
_decode_memo_hits = 0
_decode_memo_misses = 0


def configure_decode_memo(capacity: int = DEFAULT_DECODE_MEMO_CAPACITY
                          ) -> None:
    """Resize the decode memo (0 disables it); clears entries and stats."""
    global _decode_memo_capacity, _decode_memo_hits, _decode_memo_misses
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0 (got {capacity})")
    _decode_memo_capacity = capacity
    _decode_memo.clear()
    _decode_memo_hits = 0
    _decode_memo_misses = 0


def decode_memo_stats() -> Dict[str, int]:
    """Hit/miss/size counters for benches and cache-honesty tests."""
    return {"capacity": _decode_memo_capacity, "size": len(_decode_memo),
            "hits": _decode_memo_hits, "misses": _decode_memo_misses}


def decode_packet(data: bytes) -> Packet:
    """Decode one wire frame back to a :class:`Packet`.

    Raises :class:`CorruptFrame` on any framing, checksum, or field
    validation failure — the caller drops the frame and lets the
    NACK/heartbeat machinery repair the gap.  Successful decodes are
    memoized by the exact frame bytes (see the module docstring), so the
    N receivers of one broadcast share a single parse.
    """
    global _decode_memo_hits, _decode_memo_misses
    key = None
    if _decode_memo_capacity:
        key = bytes(data)
        cached = _decode_memo.get(key)
        if cached is not None:
            _decode_memo.move_to_end(key)
            _decode_memo_hits += 1
            return cached
    packet = _decode_packet_body(data)
    if key is not None:
        _decode_memo_misses += 1
        _decode_memo[key] = packet
        while len(_decode_memo) > _decode_memo_capacity:
            _decode_memo.popitem(last=False)
    return packet


def _decode_packet_body(data: bytes) -> Packet:
    body = unframe(data)
    if len(body) < 2:
        raise CorruptFrame("packet body too short")
    try:
        kind = _CODE_TO_KIND[body[0]]
    except KeyError:
        raise CorruptFrame(f"unknown packet kind code {body[0]}") from None
    flags = body[1]
    pos = 2
    session, pos = read_str(body, pos)
    session_start, pos = read_f64(body, pos)
    last_seq, pos = read_varint(body, pos)
    nack_range = None
    if flags & _P_NACK_RANGE:
        first, pos = read_varint(body, pos)
        last, pos = read_varint(body, pos)
        nack_range = (first, last)
    ack_ledger_id = None
    if flags & _P_ACK_LEDGER:
        ack_ledger_id, pos = read_str(body, pos)
    ack_consumer = None
    if flags & _P_ACK_CONSUMER:
        ack_consumer, pos = read_str(body, pos)
    count, pos = read_varint(body, pos)
    envelopes = []
    for _ in range(count):
        envelope, pos = _decode_envelope(body, pos)
        envelopes.append(envelope)
    if pos != len(body):
        raise CorruptFrame(f"{len(body) - pos} trailing bytes after packet")
    return Packet(kind, session, envelopes, nack_range=nack_range,
                  last_seq=last_seq, session_start=session_start,
                  ack_ledger_id=ack_ledger_id, ack_consumer=ack_consumer)


def packet_wire_size(packet: Packet) -> int:
    """Total bytes ``packet`` occupies on the wire, framing included."""
    return len(encode_packet(packet))
