"""The bus wire codec: every packet the daemons exchange, as real bytes.

The paper's implementation sends marshalled messages as "UDP packets in
combination with a retransmission protocol" (Section 3.1).  This module
is that marshalling for the daemon-to-daemon protocol: it encodes every
:class:`~repro.core.message.Packet` kind (DATA, RETRANS, NACK, HEARTBEAT,
ACK) and the :class:`~repro.core.message.Envelope`\\ s inside it to a
length-prefixed, checksummed frame (:mod:`repro.sim.framing`), and
decodes frames back at the receiving socket boundary — so no object ever
crosses hosts by reference, sizes on the wire are the sizes of the bytes
actually sent, and corruption is detectable.

Envelope encodings are cached on the envelope (keyed by its stamped
``(session, seq)`` identity), so the broadcast path encodes each
published message exactly once no matter how many consumers hear it, and
NACK repairs re-send the retained bytes instead of re-marshalling.

Wire header compression
-----------------------

Small payloads are dwarfed by their headers: ``subject``, ``sender``,
``session``, ``ledger_id``, and ``via`` hops repeat on every envelope a
session publishes.  A publishing daemon may therefore hold a
:class:`StringTable` that assigns dense varint ids to header strings in
first-use order (HPACK-style; ids are never reassigned for the life of
the session), and encode DATA/RETRANS frames with ids in place of
strings.  Each frame stays *self-contained*:

* a DATA frame carries inline ``(id, string)`` definitions for every id
  *first used* in that frame;
* a RETRANS frame carries definitions for **all** ids it references, so
  NACK repairs and late joiners decode without having seen the original
  defining DATA frame.

Receivers learn ``id -> string`` mappings per sender session (the
session name rides every frame in the clear) from those definition
sections.  A frame that references an id the receiver has not learned is
a *decodable-but-unresolvable* condition — structurally parseable (ids
never change field widths), but semantically incomplete.  The decoder
applies the frame's definitions (the frame passed its CRC, so they are
intact), then raises :class:`UnresolvedStringId` carrying the envelope
seq range; the daemon treats it exactly like a gap: drop the frame and
NACK, never crash.  HEARTBEAT/NACK/ACK packets are never compressed —
they are rare, small, and must be readable with zero session state.

Decoding is memoized symmetrically: a broadcast is the *same* byte
buffer at every receiving daemon, so :func:`decode_packet` keeps a small
LRU keyed by the exact frame bytes and CRC-checks + parses each unique
buffer once per fan-out instead of once per receiver.  This is safe
because decoding is a pure function of the bytes *and the receiver's
string table*: memo entries record which table ids the frame relied on
(``needs``) and which it defined (``defines``), and a memo hit replays
the definitions into the receiver's table and validates every needed id
*by value* against it — a receiver that has not learned an id gets
:class:`UnresolvedStringId` from the memo exactly as it would from a
fresh parse, and a (contrived) byte-identical frame meeting a
conflicting table bypasses the memo entirely.  It is fault-honest
because a receiver-side bit flip (``corrupt_rate``) produces a
*different* buffer that misses the memo and fails its own CRC check —
every afflicted receiver still rejects its own corrupted copy.
Failures are never cached.  :func:`configure_decode_memo` resizes or
disables the memo (the escape hatch the perf harness uses to prove
behaviour is unchanged).

The session type plane
----------------------

Type metadata gets the same treatment one layer up (see
:mod:`repro.core.typeplane`): a publishing daemon may hold a
:class:`~repro.core.typeplane.TypeTable` assigning dense varint ids to
type-descriptor fingerprints, and payloads marshalled with
:func:`repro.objects.marshal.encode_typed` reference those ids instead
of carrying the full description closure per message.  The matching
definitions ride in a **typedef region** on the frames (flag ``0x20``),
under exactly the string-table rules: a DATA frame defines ids on their
first wire appearance, a RETRANS frame re-defines *all* ids its
envelopes reference, and the region additionally lists the frame's full
reference set so :func:`read_digest` validates resolvability in
O(header) — gated and ungated receivers fail identically.  Definitions
are opaque byte strings (marshalled ``describe()`` dicts) the wire
layer never parses; receivers accumulate them per session in
``type_tables``.  A frame referencing an unlearned type id raises
:class:`UnresolvedTypeId` — same drop + NACK arming as
:class:`UnresolvedStringId` (which takes precedence when both are
missing, keeping the two decode paths deterministic).  The typedef
region is independent of header compression and absent when no envelope
in the frame carries typed payloads, so untyped traffic pays nothing.

Subject digests and the interest gate
-------------------------------------

On a broadcast bus most daemons are uninterested in most frames, yet
every daemon hears every DATA frame.  So DATA and RETRANS frames lead
with a **subject digest**: one tiny entry per envelope — subject,
``(session, seq)``, and a guaranteed-delivery marker — placed *before*
the envelope bodies.  :func:`read_digest` parses just the frame header,
the defs section, and the digest in O(header) time, letting a receiving
daemon ask "does anything here match my subscriptions?" without ever
materializing the bodies.  When nothing matches, the daemon advances
its reliable session window straight from the digest's seq spans
(:meth:`repro.core.reliable.ReliableReceiver.try_skip`) and drops the
frame unparsed — O(header) instead of O(frame) per uninteresting frame.
Crucially a skipped frame still replays the table definitions it
carries (the defs section precedes the digest), so skipping never
starves the receiver's string table.  Digest reads share the decode
memo's design: a per-frame-bytes LRU whose entries replay ``defines``
and validate ``needs`` per receiver.

Envelope bodies decode to :class:`EnvelopeView`\\ s: header fields are
parsed eagerly (they drive matching and ordering) but the payload stays
a zero-copy slice of the frame buffer and is copied out at most once,
on first access — delivery, retention, and router re-encode hydrate;
an envelope nobody reads never pays the copy.

Frame body layout (all integers varint unless noted)::

    packet     := kind:u8 flags:u8 session:str session_start:f64
                  last_seq [first last] [ack_ledger_id:str]
                  [ack_consumer:str] [defs] [tdefs] [digest] count envelope*
    defs       := def_count (id string:str)*          # iff flags COMPRESSED
    tdefs      := tdef_count (tid desc:bytes)*
                  tref_count tid*                     # iff flags TYPED
    digest     := entry_count entry*                  # iff flags DIGEST
    entry      := dflags:u8 subject seq [env_session]
    envelope   := flags:u8 subject:str sender:str session:str seq qos:u8
                  publish_time:f64 envelope_id [ledger_id:str]
                  via_count via:str* payload:bytes
    envelope'  := flags:u8 subject_id sender_id session_id seq qos:u8
                  publish_time:f64 envelope_id [ledger_id_id]
                  via_count via_id* payload:bytes     # iff flags COMPRESSED

``flags`` marks which optional fields follow (packet bit ``0x08`` =
COMPRESSED, ``0x10`` = DIGEST, set on every DATA/RETRANS frame,
``0x20`` = TYPED, set when any envelope references session type ids).
``tdefs`` carries ``(type id, definition bytes)`` pairs followed by the
frame's full type-reference list (``tref_count tid*``) — definitions
are applied, references validated, on both decode paths.
Digest ``subject``/``env_session`` are table ids iff the frame is
COMPRESSED, else inline strings; ``env_session`` appears only when
``dflags`` bit ``0x02`` is set (the envelope's session differs from the
packet session).  ``dflags`` bit ``0x01`` marks a guaranteed (ledgered)
envelope — those always take the full decode path.  ``entry_count``
must equal the body ``count``; a digest lists exactly the envelopes
behind it, and the encoder derives it from the same envelope objects,
so a CRC-valid frame's digest can only disagree with its bodies if the
*encoder* was hostile (the CRC protects both regions against channel
corruption).  Strings are UTF-8 with a varint length prefix; ``f64`` is
a big-endian IEEE double.  Decoded header strings are ``sys.intern``\\ ed
so the subject-match memo and per-app lanes key on identical objects,
and the parse itself runs on a single :class:`~repro.sim.framing.Cursor`
over a zero-copy view of the frame — in the compressed steady state a
header string is a table lookup, not an allocation.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from io import BytesIO
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..sim.framing import (CorruptFrame, Cursor, frame, unframe_view,
                           write_bytes, write_f64, write_str, write_varint)
from .message import Envelope, Packet, PacketKind, QoS
from .metrics import MetricsRegistry

__all__ = ["CorruptFrame", "DEFAULT_DECODE_MEMO_CAPACITY", "EnvelopeView",
           "FrameDigest", "StringTable",
           "UnresolvedStringId", "UnresolvedTypeId",
           "configure_decode_memo",
           "decode_memo_stats", "decode_packet", "encode_envelope",
           "read_digest", "wire_metrics",
           "encode_envelope_compressed", "encode_packet",
           "envelope_wire_size", "packet_wire_size"]

_KIND_TO_CODE = {
    PacketKind.DATA: 0,
    PacketKind.RETRANS: 1,
    PacketKind.NACK: 2,
    PacketKind.HEARTBEAT: 3,
    PacketKind.ACK: 4,
}
_CODE_TO_KIND = {code: kind for kind, code in _KIND_TO_CODE.items()}

_QOS_TO_CODE = {QoS.RELIABLE: 0, QoS.GUARANTEED: 1}
_CODE_TO_QOS = {code: qos for qos, code in _QOS_TO_CODE.items()}

# packet flag bits
_P_NACK_RANGE = 0x01
_P_ACK_LEDGER = 0x02
_P_ACK_CONSUMER = 0x04
_P_COMPRESSED = 0x08
_P_DIGEST = 0x10
_P_TYPED = 0x20

# envelope flag bits
_E_LEDGER = 0x01

# digest entry flag bits
_D_LEDGER = 0x01     # guaranteed envelope: receivers must decode fully
_D_SESSION = 0x02    # envelope session differs from the packet session

_intern = sys.intern


class UnresolvedIds(CorruptFrame):
    """A CRC-valid frame referenced session ids this receiver lacks.

    Raised after the frame's own definitions have been applied to the
    receiver's table.  Carries enough metadata for the reliability layer
    to treat the drop like a gap and arm a NACK
    (:meth:`~repro.core.reliable.ReliableReceiver.note_undecodable`).
    """

    _what = "ids"

    def __init__(self, session: str, missing: Iterable[int],
                 first_seq: int, last_seq: int, session_start: float):
        self.session = session
        self.missing = frozenset(missing)
        self.first_seq = first_seq
        self.last_seq = last_seq
        self.session_start = session_start
        super().__init__(
            f"unresolved {self._what} {sorted(self.missing)} in frame "
            f"from {session!r} (seqs {first_seq}..{last_seq})")


class UnresolvedStringId(UnresolvedIds):
    """A compressed frame referenced string ids this receiver has not
    learned (see "Wire header compression" above)."""

    _what = "string ids"


class UnresolvedTypeId(UnresolvedIds):
    """A typed frame referenced session type ids this receiver has not
    learned (see "The session type plane" above).  When a frame is
    missing both string and type ids, :class:`UnresolvedStringId` wins —
    both decode paths check strings first."""

    _what = "type ids"


class StringTable:
    """Sender-side header-string table for one daemon session.

    Ids are assigned densely from 0 in first-use order and never
    reassigned; the table lives and dies with the session (a restarted
    daemon gets a new session name *and* a new table, so receivers never
    mix mappings across incarnations).
    """

    __slots__ = ("ids", "strings")

    def __init__(self) -> None:
        self.ids: Dict[str, int] = {}
        self.strings: List[str] = []

    def __len__(self) -> int:
        return len(self.strings)

    def intern(self, text: str) -> Tuple[int, bool]:
        """Id for ``text``, assigning the next id on first use.

        Returns ``(id, is_new)``; ``is_new`` tells the packet encoder the
        frame being built must carry the inline definition.
        """
        idx = self.ids.get(text)
        if idx is not None:
            return idx, False
        idx = len(self.strings)
        self.ids[text] = idx
        self.strings.append(_intern(text))
        return idx, True


class EnvelopeView(Envelope):
    """A decoded envelope whose payload is still a view into its frame.

    Header fields (subject, session, seq, ...) are parsed eagerly —
    they drive subscription matching and reliable ordering — but the
    payload stays a zero-copy ``memoryview`` slice of the (immutable)
    frame buffer.  The first ``payload`` read copies it out to ``bytes``
    exactly once (counted in ``wire.lazy.hydrations``); an envelope that
    is decoded but never delivered, retained, or re-encoded never pays
    the copy.  Compares equal to a plain :class:`Envelope` with the same
    fields, and is assignable/cacheable like one (``payload`` has a
    setter; ``_wire_cache`` attributes land in the instance dict), so
    everything downstream of the decoder treats it as an Envelope.
    """

    def __init__(self, subject: str, sender: str, session: str, seq: int,
                 qos: QoS, ledger_id: Optional[str], publish_time: float,
                 via: Tuple[str, ...], envelope_id: int,
                 payload_view: memoryview):
        # not the dataclass __init__: ``payload`` stays a lazy property
        self.subject = subject
        self.sender = sender
        self.session = session
        self.seq = seq
        self.qos = qos
        self.ledger_id = ledger_id
        self.publish_time = publish_time
        self.via = via
        self.envelope_id = envelope_id
        self.type_refs = ()   # send-side field; not carried in bodies
        self._payload_view = payload_view
        self._payload: Optional[bytes] = None
        _lazy_views.value += 1

    @property
    def payload(self) -> bytes:
        payload = self._payload
        if payload is None:
            payload = self._payload_view.tobytes()
            self._payload = payload
            self._payload_view = None
            _lazy_hydrations.value += 1
        return payload

    @payload.setter
    def payload(self, value: bytes) -> None:
        self._payload = value
        self._payload_view = None

    @property
    def hydrated(self) -> bool:
        """True once the payload bytes have been materialized."""
        return self._payload is not None

    def __eq__(self, other: object) -> bool:
        # the Envelope dataclass __eq__ requires an exact class match;
        # a view must instead compare equal to any Envelope with the
        # same fields (round-trip tests, retention lookups)
        if not isinstance(other, Envelope):
            return NotImplemented
        return (
            (self.subject, self.sender, self.session, self.seq,
             self.payload, self.qos, self.ledger_id, self.publish_time,
             self.via, self.envelope_id)
            == (other.subject, other.sender, other.session, other.seq,
                other.payload, other.qos, other.ledger_id,
                other.publish_time, other.via, other.envelope_id))


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------

def _encode_envelope_body(envelope: Envelope) -> bytes:
    out = BytesIO()
    flags = _E_LEDGER if envelope.ledger_id is not None else 0
    out.write(bytes((flags,)))
    write_str(out, envelope.subject)
    write_str(out, envelope.sender)
    write_str(out, envelope.session)
    write_varint(out, envelope.seq)
    out.write(bytes((_QOS_TO_CODE[envelope.qos],)))
    write_f64(out, envelope.publish_time)
    write_varint(out, envelope.envelope_id)
    if envelope.ledger_id is not None:
        write_str(out, envelope.ledger_id)
    write_varint(out, len(envelope.via))
    for hop in envelope.via:
        write_str(out, hop)
    write_bytes(out, envelope.payload)
    return out.getvalue()


def encode_envelope(envelope: Envelope) -> bytes:
    """Encoded body bytes for one envelope (cached on the envelope).

    The cache key is the stamped ``(session, seq)`` identity: stamping by
    the reliable sender changes both, invalidating any pre-stamp entry,
    and after stamping envelopes are immutable on the send path — so the
    broadcast fan-out and every NACK repair reuse one encoding.
    """
    cached = getattr(envelope, "_wire_cache", None)
    key = (envelope.session, envelope.seq)
    if cached is not None and cached[0] == key:
        return cached[1]
    body = _encode_envelope_body(envelope)
    envelope._wire_cache = (key, body)
    return body


def _table_ref(table: StringTable, text: str,
               new_defs: List[Tuple[int, str]], refs: List[int]) -> int:
    idx, is_new = table.intern(text)
    if is_new:
        new_defs.append((idx, table.strings[idx]))
    refs.append(idx)
    return idx


def encode_envelope_compressed(
        envelope: Envelope, table: StringTable,
        new_defs: List[Tuple[int, str]]) -> Tuple[bytes, Tuple[int, ...]]:
    """Compressed body + referenced ids for one envelope.

    Header strings are replaced by ids from ``table``; any id assigned
    during this call is appended to ``new_defs`` so the enclosing DATA
    frame can carry its definition.  Cached on the envelope alongside the
    plain encoding, keyed by ``(session, seq)`` *and* the table identity.
    The defs this envelope introduced are cached too and replayed on a
    hit — so encoding the same packet twice yields identical bytes, and
    the frame that carries an envelope always carries the definitions it
    was responsible for (redundant re-definitions are idempotent at the
    receiver).
    """
    cached = getattr(envelope, "_wire_cache_z", None)
    key = (envelope.session, envelope.seq)
    if cached is not None and cached[0] == key and cached[1] is table:
        new_defs.extend(cached[4])
        return cached[2], cached[3]
    refs: List[int] = []
    out = BytesIO()
    own_defs: List[Tuple[int, str]] = []
    flags = _E_LEDGER if envelope.ledger_id is not None else 0
    out.write(bytes((flags,)))
    write_varint(out, _table_ref(table, envelope.subject, own_defs, refs))
    write_varint(out, _table_ref(table, envelope.sender, own_defs, refs))
    write_varint(out, _table_ref(table, envelope.session, own_defs, refs))
    write_varint(out, envelope.seq)
    out.write(bytes((_QOS_TO_CODE[envelope.qos],)))
    write_f64(out, envelope.publish_time)
    write_varint(out, envelope.envelope_id)
    if envelope.ledger_id is not None:
        write_varint(out,
                     _table_ref(table, envelope.ledger_id, own_defs, refs))
    write_varint(out, len(envelope.via))
    for hop in envelope.via:
        write_varint(out, _table_ref(table, hop, own_defs, refs))
    write_bytes(out, envelope.payload)
    body = out.getvalue()
    new_defs.extend(own_defs)
    envelope._wire_cache_z = (key, table, body, tuple(refs),
                              tuple(own_defs))
    return body, tuple(refs)


def envelope_wire_size(envelope: Envelope) -> int:
    """Bytes this envelope contributes to an *uncompressed* packet body.

    Deliberately mode-independent: batching thresholds and tests measure
    against the canonical encoding, so turning compression on or off
    never changes batching decisions.
    """
    return len(encode_envelope(envelope))


# ----------------------------------------------------------------------
# packets
# ----------------------------------------------------------------------

def _write_digest(out: BytesIO, packet: Packet,
                  table: Optional[StringTable]) -> None:
    """Write the subject-digest region: one entry per envelope body.

    With ``table`` (compressed frames) subjects/sessions are written as
    table ids; every id is already interned — the envelope bodies were
    encoded first (their defs precede the digest on the wire), and a
    body always references its subject and session.
    """
    write_varint(out, len(packet.envelopes))
    for envelope in packet.envelopes:
        dflags = 0
        if envelope.ledger_id is not None:
            dflags |= _D_LEDGER
        alt_session = envelope.session != packet.session
        if alt_session:
            dflags |= _D_SESSION
        out.write(bytes((dflags,)))
        if table is not None:
            write_varint(out, table.ids[envelope.subject])
        else:
            write_str(out, envelope.subject)
        write_varint(out, envelope.seq)
        if alt_session:
            if table is not None:
                write_varint(out, table.ids[envelope.session])
            else:
                write_str(out, envelope.session)


def _write_typedefs(out: BytesIO, packet: Packet, type_table,
                    trefs: Set[int]) -> None:
    """Write the typedef region: definitions, then the full ref list.

    DATA frames define ids on their first wire appearance (tracked by
    the table's ``wire_defined`` set — consulted here, at encode time,
    so an envelope shed before reaching the wire never consumes a
    definition); RETRANS frames re-define every id they reference, so
    repairs and late joiners resolve with zero receiver state.
    """
    refs_sorted = sorted(trefs)
    if packet.kind is PacketKind.RETRANS:
        def_ids = refs_sorted
    else:
        def_ids = type_table.pending_defs(refs_sorted)
    write_varint(out, len(def_ids))
    for tid in def_ids:
        write_varint(out, tid)
        write_bytes(out, type_table.blob(tid))
    write_varint(out, len(refs_sorted))
    for tid in refs_sorted:
        write_varint(out, tid)
    _typedef_defined.value += len(def_ids)


def encode_packet(packet: Packet, table: Optional[StringTable] = None,
                  type_table=None) -> bytes:
    """Encode ``packet`` to one checksummed wire frame.

    With ``table`` (the sending daemon's :class:`StringTable`), DATA and
    RETRANS frames are header-compressed: DATA defines ids first used in
    this frame, RETRANS defines every id it references (self-contained
    repair).  Other kinds — and any packet when ``table`` is ``None`` —
    use the plain encoding.  With ``type_table`` (the daemon's
    :class:`~repro.core.typeplane.TypeTable`), frames whose envelopes
    carry ``type_refs`` get a typedef region under the same
    define-on-DATA / redefine-all-on-RETRANS rules.  DATA and RETRANS
    frames always carry a subject digest ahead of the envelope bodies
    (see the module docstring) so receivers can interest-gate without
    decoding them.
    """
    digest = packet.kind in (PacketKind.DATA, PacketKind.RETRANS)
    compress = table is not None and digest
    trefs: Set[int] = set()
    if type_table is not None and digest:
        for envelope in packet.envelopes:
            trefs.update(getattr(envelope, "type_refs", ()))
    out = BytesIO()
    try:
        out.write(bytes((_KIND_TO_CODE[packet.kind],)))
    except KeyError:
        raise ValueError(f"unknown packet kind {packet.kind!r}") from None
    flags = 0
    if packet.nack_range is not None:
        flags |= _P_NACK_RANGE
    if packet.ack_ledger_id is not None:
        flags |= _P_ACK_LEDGER
    if packet.ack_consumer is not None:
        flags |= _P_ACK_CONSUMER
    if compress:
        flags |= _P_COMPRESSED
    if digest:
        flags |= _P_DIGEST
    if trefs:
        flags |= _P_TYPED
    out.write(bytes((flags,)))
    write_str(out, packet.session)
    write_f64(out, packet.session_start)
    write_varint(out, packet.last_seq)
    if packet.nack_range is not None:
        write_varint(out, packet.nack_range[0])
        write_varint(out, packet.nack_range[1])
    if packet.ack_ledger_id is not None:
        write_str(out, packet.ack_ledger_id)
    if packet.ack_consumer is not None:
        write_str(out, packet.ack_consumer)
    if compress:
        new_defs: List[Tuple[int, str]] = []
        bodies: List[bytes] = []
        all_refs: Set[int] = set()
        for envelope in packet.envelopes:
            body, refs = encode_envelope_compressed(envelope, table, new_defs)
            bodies.append(body)
            all_refs.update(refs)
        if packet.kind is PacketKind.RETRANS:
            def_pairs = [(idx, table.strings[idx]) for idx in sorted(all_refs)]
        else:
            def_pairs = new_defs
        write_varint(out, len(def_pairs))
        for idx, text in def_pairs:
            write_varint(out, idx)
            write_str(out, text)
        if trefs:
            _write_typedefs(out, packet, type_table, trefs)
        _write_digest(out, packet, table)
        write_varint(out, len(bodies))
        for body in bodies:
            out.write(body)
    else:
        if trefs:
            _write_typedefs(out, packet, type_table, trefs)
        if digest:
            _write_digest(out, packet, None)
        write_varint(out, len(packet.envelopes))
        for envelope in packet.envelopes:
            out.write(encode_envelope(envelope))
    return frame(out.getvalue())


#: Default bound on memoized decoded frames.  Sized for the fan-out
#: window: a frame only repeats while N daemons hear one broadcast, so a
#: few hundred entries cover even deep outbound queues.
DEFAULT_DECODE_MEMO_CAPACITY = 256

# entry: (packet, needs, defines, tneeds, tdefines) — needs/defines are
# None for plain frames; for compressed frames, defines maps in-frame
# definitions and needs maps every other referenced id to its value at
# parse time.  tneeds/tdefines are the same pair for the typedef region
# (values are raw definition bytes), None for untyped frames.
_MemoEntry = Tuple[Packet, Optional[Dict[int, str]], Optional[Dict[int, str]],
                   Optional[Dict[int, bytes]], Optional[Dict[int, bytes]]]
_decode_memo: "OrderedDict[bytes, _MemoEntry]" = OrderedDict()
_decode_memo_capacity = DEFAULT_DECODE_MEMO_CAPACITY

# The memo is process-global (deliberately: the N receivers of one
# broadcast share a single parse), so its counters live in a module-
# level registry rather than any one daemon's — and are therefore NOT
# part of per-daemon ``_bus.stat.*`` snapshots, where self-referential
# stat frames hitting the shared memo would make publishing perturb the
# very counters being published.
# digest memo: the O(header) companion of the decode memo, same design
# (keyed by exact frame bytes; entries replay defines and validate needs
# per receiver), shared capacity knob.  Kept separate because the two
# populate independently: an interest-gated daemon reads only digests,
# an interested one decodes fully.
_DigestEntry = Tuple["FrameDigest", Optional[Dict[int, str]],
                     Optional[Dict[int, str]], Optional[Dict[int, bytes]],
                     Optional[Dict[int, bytes]]]
_digest_memo: "OrderedDict[bytes, _DigestEntry]" = OrderedDict()

_wire_metrics = MetricsRegistry()
_decode_memo_hits = _wire_metrics.counter("wire.decode_memo.hits")
_decode_memo_misses = _wire_metrics.counter("wire.decode_memo.misses")
_wire_metrics.gauge("wire.decode_memo.capacity",
                    source=lambda: _decode_memo_capacity)
_wire_metrics.gauge("wire.decode_memo.size",
                    source=lambda: len(_decode_memo))
_digest_memo_hits = _wire_metrics.counter("wire.digest_memo.hits")
_digest_memo_misses = _wire_metrics.counter("wire.digest_memo.misses")
_wire_metrics.gauge("wire.digest_memo.size",
                    source=lambda: len(_digest_memo))
#: lazy-payload accounting: views created by the decoder vs views whose
#: payload something downstream actually materialized
_lazy_views = _wire_metrics.counter("wire.lazy.views")
_lazy_hydrations = _wire_metrics.counter("wire.lazy.hydrations")
#: typedef-region accounting: definitions written by encoders vs
#: definitions learned by fresh (non-memoized) parses
_typedef_defined = _wire_metrics.counter("wire.typedef.defined")
_typedef_learned = _wire_metrics.counter("wire.typedef.learned")


def wire_metrics() -> MetricsRegistry:
    """The module-level registry holding the decode-memo, digest-memo,
    and lazy-payload (``wire.lazy.*``) instruments."""
    return _wire_metrics


def configure_decode_memo(capacity: int = DEFAULT_DECODE_MEMO_CAPACITY
                          ) -> None:
    """Resize the decode and digest memos (0 disables both); clears
    entries and every module-level wire counter (memo hit/miss and
    ``wire.lazy.*``) so runs start cold."""
    global _decode_memo_capacity
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0 (got {capacity})")
    _decode_memo_capacity = capacity
    _decode_memo.clear()
    _decode_memo_hits.reset()
    _decode_memo_misses.reset()
    _digest_memo.clear()
    _digest_memo_hits.reset()
    _digest_memo_misses.reset()
    _lazy_views.reset()
    _lazy_hydrations.reset()
    _typedef_defined.reset()
    _typedef_learned.reset()


def decode_memo_stats() -> Dict[str, int]:
    """Hit/miss/size counters for benches and cache-honesty tests (a
    dict view over the :func:`wire_metrics` registry instruments)."""
    return {"capacity": _decode_memo_capacity, "size": len(_decode_memo),
            "hits": _decode_memo_hits.value,
            "misses": _decode_memo_misses.value}


def decode_packet(data: bytes,
                  tables: Optional[Dict[str, Dict[int, str]]] = None,
                  type_tables: Optional[Dict[str, Dict[int, bytes]]] = None
                  ) -> Packet:
    """Decode one wire frame back to a :class:`Packet`.

    ``tables`` is the receiving daemon's per-session learned string
    tables (``session -> {id: string}``); compressed frames read and
    update them.  ``type_tables`` is the analogous per-session learned
    typedef map (``session -> {type id: definition bytes}``); typed
    frames read and update it.  Without them throwaway tables are used,
    so only fully self-contained frames resolve.

    Raises :class:`CorruptFrame` on any framing, checksum, or field
    validation failure, and its subclasses :class:`UnresolvedStringId` /
    :class:`UnresolvedTypeId` when a frame references ids this receiver
    has not learned — the caller drops the frame and lets the
    NACK/heartbeat machinery repair the gap.  Successful decodes are
    memoized by the exact frame bytes (see the module docstring), so the
    N receivers of one broadcast share a single parse; the memo replays
    each frame's table effects per receiver, keeping per-receiver
    outcomes identical to a fresh parse.
    """
    key = None
    if _decode_memo_capacity:
        key = bytes(data)
        entry = _decode_memo.get(key)
        if entry is not None:
            packet, needs, defines, tneeds, tdefines = entry
            if needs is None and tneeds is None:    # plain frame
                _decode_memo.move_to_end(key)
                _decode_memo_hits.value += 1
                return packet
            unresolved = []
            tunresolved = []
            mismatch = False
            if defines is not None:
                table = (tables.setdefault(packet.session, {})
                         if tables is not None else {})
                for idx, text in defines.items():
                    table[idx] = text
                for idx, text in needs.items():
                    have = table.get(idx)
                    if have is None:
                        unresolved.append(idx)
                    elif have != text:
                        mismatch = True             # colliding table state:
                        break                       # this parse isn't ours
            if not mismatch and tdefines is not None:
                ttable = (type_tables.setdefault(packet.session, {})
                          if type_tables is not None else {})
                for tid, blob in tdefines.items():
                    ttable[tid] = blob
                for tid, blob in tneeds.items():
                    have = ttable.get(tid)
                    if have is None:
                        tunresolved.append(tid)
                    elif have != blob:
                        mismatch = True             # colliding table state
                        break
            if not mismatch:
                _decode_memo.move_to_end(key)
                _decode_memo_hits.value += 1
                if unresolved:
                    seqs = [e.seq for e in packet.envelopes]
                    raise UnresolvedStringId(
                        packet.session, unresolved, min(seqs), max(seqs),
                        packet.session_start)
                if tunresolved:
                    seqs = [e.seq for e in packet.envelopes]
                    raise UnresolvedTypeId(
                        packet.session, tunresolved, min(seqs), max(seqs),
                        packet.session_start)
                return packet
            key = None                              # bypass, parse fresh
    packet, needs, defines, tneeds, tdefines = _decode_packet_body(
        data, tables, type_tables)
    if key is not None:
        _decode_memo_misses.value += 1
        _decode_memo[key] = (packet, needs, defines, tneeds, tdefines)
        while len(_decode_memo) > _decode_memo_capacity:
            _decode_memo.popitem(last=False)
    return packet


def _resolve_ref(idx: int, table: Dict[int, str], referenced: Set[int],
                 missing: Set[int]) -> str:
    referenced.add(idx)
    value = table.get(idx)
    if value is None:
        missing.add(idx)
        return ""
    return value


def _read_typedefs(cur: Cursor, session: str,
                   type_tables: Optional[Dict[str, Dict[int, bytes]]]
                   ) -> Tuple[Dict[int, bytes], Dict[int, bytes],
                              List[int], Set[int]]:
    """Parse one typedef region, applying its definitions.

    The frame passed its CRC, so the definitions are intact: they go
    into the receiver's per-session table even if reference validation
    fails afterwards — that is what makes a later repair decodable.
    Returns ``(ttable, tdefines, treferenced, tmissing)``.
    """
    ttable: Dict[int, bytes] = {}
    if type_tables is not None:
        ttable = type_tables.setdefault(session, {})
    tdefines: Dict[int, bytes] = {}
    for _ in range(cur.varint()):
        tid = cur.varint()
        blob = cur.bytes_()
        tdefines[tid] = blob
        ttable[tid] = blob
    _typedef_learned.value += len(tdefines)
    treferenced: List[int] = []
    tmissing: Set[int] = set()
    for _ in range(cur.varint()):
        tid = cur.varint()
        treferenced.append(tid)
        if tid not in ttable:
            tmissing.add(tid)
    return ttable, tdefines, treferenced, tmissing


def _decode_packet_body(
        data: bytes, tables: Optional[Dict[str, Dict[int, str]]],
        type_tables: Optional[Dict[str, Dict[int, bytes]]] = None
) -> Tuple[Packet, Optional[Dict[int, str]], Optional[Dict[int, str]],
           Optional[Dict[int, bytes]], Optional[Dict[int, bytes]]]:
    cur = Cursor(unframe_view(data))
    try:
        kind = _CODE_TO_KIND[cur.u8()]
    except KeyError:
        raise CorruptFrame("unknown packet kind code") from None
    flags = cur.u8()
    session = _intern(cur.str_())
    session_start = cur.f64()
    last_seq = cur.varint()
    nack_range = None
    if flags & _P_NACK_RANGE:
        first = cur.varint()
        last = cur.varint()
        nack_range = (first, last)
    ack_ledger_id = None
    if flags & _P_ACK_LEDGER:
        ack_ledger_id = _intern(cur.str_())
    ack_consumer = None
    if flags & _P_ACK_CONSUMER:
        ack_consumer = _intern(cur.str_())
    compressed = bool(flags & _P_COMPRESSED)
    needs: Optional[Dict[int, str]] = None
    defines: Optional[Dict[int, str]] = None
    table: Dict[int, str] = {}
    referenced: Set[int] = set()
    missing: Set[int] = set()
    if compressed:
        if kind not in (PacketKind.DATA, PacketKind.RETRANS):
            raise CorruptFrame(f"compressed flag on {kind.value} packet")
        # the frame passed its CRC, so the defs section is intact: apply
        # it to the receiver's table even if resolution fails below —
        # that is what makes a later repair decodable.
        if tables is not None:
            table = tables.setdefault(session, {})
        defines = {}
        for _ in range(cur.varint()):
            idx = cur.varint()
            text = _intern(cur.str_())
            defines[idx] = text
            table[idx] = text
    typed = bool(flags & _P_TYPED)
    tneeds: Optional[Dict[int, bytes]] = None
    tdefines: Optional[Dict[int, bytes]] = None
    ttable: Dict[int, bytes] = {}
    treferenced: List[int] = []
    tmissing: Set[int] = set()
    if typed:
        if kind not in (PacketKind.DATA, PacketKind.RETRANS):
            raise CorruptFrame(f"typedef flag on {kind.value} packet")
        ttable, tdefines, treferenced, tmissing = _read_typedefs(
            cur, session, type_tables)
    digest_count = None
    if flags & _P_DIGEST:
        if kind not in (PacketKind.DATA, PacketKind.RETRANS):
            raise CorruptFrame(f"digest flag on {kind.value} packet")
        # the full decode only *skips over* the digest — the bodies are
        # authoritative — but digest subject/session refs still count as
        # referenced ids, so a frame whose digest cites an unlearned id
        # resolves (or fails) identically via read_digest and here.
        digest_count = cur.varint()
        for _ in range(digest_count):
            dflags = cur.u8()
            if dflags & ~(_D_LEDGER | _D_SESSION):
                raise CorruptFrame(f"unknown digest flags {dflags:#x}")
            if compressed:
                _resolve_ref(cur.varint(), table, referenced, missing)
            else:
                cur.str_()
            cur.varint()
            if dflags & _D_SESSION:
                if compressed:
                    _resolve_ref(cur.varint(), table, referenced, missing)
                else:
                    cur.str_()
    count = cur.varint()
    if digest_count is not None and digest_count != count:
        raise CorruptFrame(
            f"digest lists {digest_count} envelopes, body carries {count}")
    envelopes = []
    for _ in range(count):
        envelopes.append(
            _read_envelope(cur, compressed, table, referenced, missing))
    if not cur.exhausted:
        raise CorruptFrame(f"{cur.remaining()} trailing bytes after packet")
    if missing:
        seqs = [e.seq for e in envelopes]
        raise UnresolvedStringId(session, missing, min(seqs), max(seqs),
                                 session_start)
    if tmissing:
        # a well-formed typed frame always has envelopes (the refs come
        # from them), but a hostile encoder might not — default the span
        seqs = [e.seq for e in envelopes] or [0]
        raise UnresolvedTypeId(session, tmissing, min(seqs), max(seqs),
                               session_start)
    if compressed:
        needs = {idx: table[idx] for idx in referenced
                 if idx not in defines}
    if typed:
        tneeds = {tid: ttable[tid] for tid in treferenced
                  if tid not in tdefines}
    return (Packet(kind, session, envelopes, nack_range=nack_range,
                   last_seq=last_seq, session_start=session_start,
                   ack_ledger_id=ack_ledger_id, ack_consumer=ack_consumer),
            needs, defines, tneeds, tdefines)


def _read_envelope(cur: Cursor, compressed: bool, table: Dict[int, str],
                   referenced: Set[int], missing: Set[int]) -> EnvelopeView:
    flags = cur.u8()
    if compressed:
        subject = _resolve_ref(cur.varint(), table, referenced, missing)
        sender = _resolve_ref(cur.varint(), table, referenced, missing)
        session = _resolve_ref(cur.varint(), table, referenced, missing)
    else:
        subject = _intern(cur.str_())
        sender = _intern(cur.str_())
        session = _intern(cur.str_())
    seq = cur.varint()
    qos_code = cur.u8()
    try:
        qos = _CODE_TO_QOS[qos_code]
    except KeyError:
        raise CorruptFrame(f"unknown qos code {qos_code}") from None
    publish_time = cur.f64()
    envelope_id = cur.varint()
    ledger_id = None
    if flags & _E_LEDGER:
        if compressed:
            ledger_id = _resolve_ref(cur.varint(), table, referenced, missing)
        else:
            ledger_id = _intern(cur.str_())
    via_count = cur.varint()
    via = []
    for _ in range(via_count):
        if compressed:
            via.append(_resolve_ref(cur.varint(), table, referenced, missing))
        else:
            via.append(_intern(cur.str_()))
    payload_view = cur.view_()
    return EnvelopeView(subject, sender, session, seq, qos, ledger_id,
                        publish_time, tuple(via), envelope_id, payload_view)


# ----------------------------------------------------------------------
# the O(header) digest read (the interest gate's view of a frame)
# ----------------------------------------------------------------------

class FrameDigest:
    """What :func:`read_digest` learns about a frame without decoding it.

    ``entries`` is one ``(session, seq)`` pair per envelope body, in
    frame order; ``subjects`` the distinct subjects in first-seen order
    (what the interest gate matches); ``needs_full`` is True when any
    envelope must take the full decode path regardless of local interest
    (guaranteed/ledgered envelopes, whose ack+dedupe protocol runs even
    with no subscriber, and unsequenced ``seq == 0`` telemetry frames).
    """

    __slots__ = ("kind", "session", "session_start", "last_seq",
                 "subjects", "entries", "needs_full")

    def __init__(self, kind: PacketKind, session: str, session_start: float,
                 last_seq: int, subjects: Tuple[str, ...],
                 entries: List[Tuple[str, int]], needs_full: bool):
        self.kind = kind
        self.session = session
        self.session_start = session_start
        self.last_seq = last_seq
        self.subjects = subjects
        self.entries = entries
        self.needs_full = needs_full


def read_digest(data: bytes,
                tables: Optional[Dict[str, Dict[int, str]]] = None,
                type_tables: Optional[Dict[str, Dict[int, bytes]]] = None
                ) -> Optional[FrameDigest]:
    """Parse just the header, defs, and subject digest of one frame.

    The interest gate's entry point: O(header) work (the CRC check is
    still O(frame), but at C speed), never touching envelope bodies.
    Returns ``None`` for frames without a digest (HEARTBEAT/NACK/ACK, or
    pre-digest encodings) — the caller must decode fully.  Like
    :func:`decode_packet` it applies the frame's table and typedef
    definitions to ``tables``/``type_tables`` *even when the caller goes
    on to skip the frame* — a skipped frame must still replay the
    definitions it carries — and raises :class:`UnresolvedStringId` /
    :class:`UnresolvedTypeId` when the digest or the typedef reference
    list cites ids this receiver has not learned (the bodies reference
    at least those same ids, so the full path would fail identically).
    Successful reads are memoized by frame bytes next to the decode
    memo, with the same per-receiver ``defines`` replay and by-value
    ``needs`` check.
    """
    key = None
    if _decode_memo_capacity:
        key = bytes(data)
        entry = _digest_memo.get(key)
        if entry is not None:
            digest, needs, defines, tneeds, tdefines = entry
            if needs is None and tneeds is None:    # plain frame
                _digest_memo.move_to_end(key)
                _digest_memo_hits.value += 1
                return digest
            unresolved = []
            tunresolved = []
            mismatch = False
            if defines is not None:
                table = (tables.setdefault(digest.session, {})
                         if tables is not None else {})
                for idx, text in defines.items():
                    table[idx] = text
                for idx, text in needs.items():
                    have = table.get(idx)
                    if have is None:
                        unresolved.append(idx)
                    elif have != text:
                        mismatch = True             # colliding table state
                        break
            if not mismatch and tdefines is not None:
                ttable = (type_tables.setdefault(digest.session, {})
                          if type_tables is not None else {})
                for tid, blob in tdefines.items():
                    ttable[tid] = blob
                for tid, blob in tneeds.items():
                    have = ttable.get(tid)
                    if have is None:
                        tunresolved.append(tid)
                    elif have != blob:
                        mismatch = True             # colliding table state
                        break
            if not mismatch:
                _digest_memo.move_to_end(key)
                _digest_memo_hits.value += 1
                if unresolved:
                    seqs = [seq for _, seq in digest.entries]
                    raise UnresolvedStringId(
                        digest.session, unresolved, min(seqs), max(seqs),
                        digest.session_start)
                if tunresolved:
                    seqs = [seq for _, seq in digest.entries] or [0]
                    raise UnresolvedTypeId(
                        digest.session, tunresolved, min(seqs), max(seqs),
                        digest.session_start)
                return digest
            key = None                              # bypass, parse fresh
    digest, needs, defines, tneeds, tdefines = _read_digest_body(
        data, tables, type_tables)
    if key is not None and digest is not None:
        _digest_memo_misses.value += 1
        _digest_memo[key] = (digest, needs, defines, tneeds, tdefines)
        while len(_digest_memo) > _decode_memo_capacity:
            _digest_memo.popitem(last=False)
    return digest


def _read_digest_body(
        data: bytes, tables: Optional[Dict[str, Dict[int, str]]],
        type_tables: Optional[Dict[str, Dict[int, bytes]]] = None
) -> Tuple[Optional[FrameDigest], Optional[Dict[int, str]],
           Optional[Dict[int, str]], Optional[Dict[int, bytes]],
           Optional[Dict[int, bytes]]]:
    cur = Cursor(unframe_view(data))
    kind = _CODE_TO_KIND.get(cur.u8())
    if kind is None:
        raise CorruptFrame("unknown packet kind code")
    flags = cur.u8()
    if not flags & _P_DIGEST:
        return None, None, None, None, None
    session = _intern(cur.str_())
    session_start = cur.f64()
    last_seq = cur.varint()
    if flags & _P_NACK_RANGE:
        cur.varint()
        cur.varint()
    if flags & _P_ACK_LEDGER:
        cur.str_()
    if flags & _P_ACK_CONSUMER:
        cur.str_()
    compressed = bool(flags & _P_COMPRESSED)
    defines: Optional[Dict[int, str]] = None
    table: Dict[int, str] = {}
    if compressed:
        # apply the defs even if the digest resolves nothing below: the
        # frame may be skipped, but its definitions must survive (later
        # frames reference them without redefining)
        if tables is not None:
            table = tables.setdefault(session, {})
        defines = {}
        for _ in range(cur.varint()):
            idx = cur.varint()
            text = _intern(cur.str_())
            defines[idx] = text
            table[idx] = text
    typed = bool(flags & _P_TYPED)
    tneeds: Optional[Dict[int, bytes]] = None
    tdefines: Optional[Dict[int, bytes]] = None
    ttable: Dict[int, bytes] = {}
    treferenced: List[int] = []
    tmissing: Set[int] = set()
    if typed:
        ttable, tdefines, treferenced, tmissing = _read_typedefs(
            cur, session, type_tables)
    referenced: Set[int] = set()
    missing: Set[int] = set()
    entries: List[Tuple[str, int]] = []
    subjects: List[str] = []
    seen: Set[str] = set()
    needs_full = False
    for _ in range(cur.varint()):
        dflags = cur.u8()
        if dflags & ~(_D_LEDGER | _D_SESSION):
            raise CorruptFrame(f"unknown digest flags {dflags:#x}")
        if compressed:
            subject = _resolve_ref(cur.varint(), table, referenced, missing)
        else:
            subject = _intern(cur.str_())
        seq = cur.varint()
        env_session = session
        if dflags & _D_SESSION:
            if compressed:
                env_session = _resolve_ref(cur.varint(), table, referenced,
                                           missing)
            else:
                env_session = _intern(cur.str_())
        if dflags & _D_LEDGER or seq == 0:
            needs_full = True
        entries.append((env_session, seq))
        if subject not in seen:
            seen.add(subject)
            subjects.append(subject)
    # deliberately no exhaustion check: the envelope bodies follow,
    # unread — that is the whole point
    if missing:
        seqs = [seq for _, seq in entries]
        raise UnresolvedStringId(session, missing, min(seqs), max(seqs),
                                 session_start)
    if tmissing:
        seqs = [seq for _, seq in entries] or [0]
        raise UnresolvedTypeId(session, tmissing, min(seqs), max(seqs),
                               session_start)
    needs = None
    if compressed:
        needs = {idx: table[idx] for idx in referenced
                 if idx not in defines}
    if typed:
        tneeds = {tid: ttable[tid] for tid in treferenced
                  if tid not in tdefines}
    return (FrameDigest(kind, session, session_start, last_seq,
                        tuple(subjects), entries, needs_full),
            needs, defines, tneeds, tdefines)


def packet_wire_size(packet: Packet) -> int:
    """Bytes ``packet`` occupies on the wire uncompressed, framing included."""
    return len(encode_packet(packet))
