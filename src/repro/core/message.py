"""Message envelopes and quality-of-service levels.

Two QoS levels, straight from Section 3.1:

* :data:`QoS.RELIABLE` — exactly-once, FIFO per sender under normal
  operation; at-most-once if the sender or receiver crashes or the
  network partitions for longer than the repair window.
* :data:`QoS.GUARANTEED` — the message is logged to non-volatile storage
  before it is sent and retransmitted "at appropriate times until a reply
  is received": at-least-once regardless of failures, exactly-once when
  there are none.

An :class:`Envelope` is what daemons exchange; the application payload is
already-marshalled bytes (see :mod:`repro.objects.marshal`), and the
``size`` properties report the length of the actual wire encoding
(:mod:`repro.core.wire`) — measured, not accounted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["Envelope", "MessageInfo", "Packet", "PacketKind", "QoS"]

# The wire codec imports this module, so it cannot be imported at module
# load; resolve it once on the first ``size`` access instead of paying a
# ``from . import wire`` (an attribute lookup plus an import-lock check)
# on every property read.
_wire = None


def _wire_codec():
    global _wire
    if _wire is None:
        from . import wire
        _wire = wire
    return _wire


class QoS(enum.Enum):
    """Delivery quality of service."""

    RELIABLE = "reliable"
    GUARANTEED = "guaranteed"


class PacketKind(enum.Enum):
    """Daemon-to-daemon packet types on the bus port."""

    DATA = "data"             # a batch of envelopes (broadcast)
    RETRANS = "retrans"       # NACK repair (unicast to the requester)
    NACK = "nack"             # gap report (unicast to the sender)
    HEARTBEAT = "heartbeat"   # idle sender's highest seq (broadcast)
    ACK = "ack"               # guaranteed-delivery confirmation (unicast)


@dataclass
class Envelope:
    """One published message as it travels between daemons."""

    subject: str
    sender: str               # client id, e.g. "node3.news_adapter"
    session: str              # sender daemon's session, e.g. "node3#0"
    seq: int                  # per-session sequence number
    payload: bytes            # marshalled object
    qos: QoS = QoS.RELIABLE
    ledger_id: Optional[str] = None   # set for guaranteed messages
    publish_time: float = 0.0         # simulated time of the publish call
    #: names of information routers this message has traversed; routers
    #: refuse to forward a message already stamped with their own name,
    #: which keeps arbitrary router topologies (chains, meshes, cycles)
    #: loop-free while allowing multi-hop forwarding.
    via: Tuple[str, ...] = ()
    #: wire-visible identity, stamped by the publishing daemon from its
    #: own counter (0 = not yet stamped).  The id rides the wire as a
    #: varint, so a process-global counter would make a message's size —
    #: and therefore its send-CPU timing — depend on how many envelopes
    #: *earlier, unrelated* runs created.  Per-daemon counters keep
    #: same-seed runs bit-identical.
    envelope_id: int = 0
    #: session type-table ids the payload references when it was
    #: marshalled with :func:`repro.objects.marshal.encode_typed`; the
    #: wire layer rides the matching typedef definitions in-band
    #: (:mod:`repro.core.typeplane`).  Send-side only — never encoded
    #: into the envelope body, so decoded envelopes leave it empty.
    type_refs: Tuple[int, ...] = ()

    @property
    def size(self) -> int:
        """Bytes this envelope occupies inside an uncompressed wire frame."""
        return _wire_codec().envelope_wire_size(self)


@dataclass
class Packet:
    """One datagram on the daemon port."""

    kind: PacketKind
    session: str                       # originating daemon session
    envelopes: List[Envelope] = field(default_factory=list)
    #: NACK: the (first, last) missing seq range being requested.
    nack_range: Optional[Tuple[int, int]] = None
    #: HEARTBEAT: highest seq published in this session.
    last_seq: int = 0
    #: DATA/RETRANS/HEARTBEAT: simulated time this session began.  Lets
    #: a receiver distinguish "I joined late" (baseline at what it
    #: hears) from "the first messages were lost" (recover from seq 1).
    session_start: float = 0.0
    #: ACK: the guaranteed ledger id being confirmed, and who confirms.
    ack_ledger_id: Optional[str] = None
    ack_consumer: Optional[str] = None

    @property
    def size(self) -> int:
        """Bytes this packet occupies on the wire uncompressed, framing
        included (mode-independent: see :func:`repro.core.wire.packet_wire_size`)."""
        return _wire_codec().packet_wire_size(self)


@dataclass
class MessageInfo:
    """Delivery metadata handed to subscriber callbacks."""

    subject: str
    sender: str
    session: str
    seq: int
    qos: QoS
    publish_time: float      # simulated time the publish call was made
    deliver_time: float      # simulated time the callback ran
    size: int                # payload bytes on the wire
    retransmitted: bool = False
    via: Tuple[str, ...] = ()   # routers this message traversed

    @property
    def latency(self) -> float:
        return self.deliver_time - self.publish_time
