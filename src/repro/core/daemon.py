"""The per-host Information Bus daemon.

Section 3.1: "In our implementation of subject-based addressing, we use a
daemon on every host.  Each application registers with its local daemon,
and tells the daemon to which subjects it has subscribed.  The daemon
forwards each message to each application that has subscribed.  It uses
the subject contained in the message to decide which application receives
which message."

One :class:`BusDaemon` per :class:`~repro.sim.node.Host`:

* outbound — a flow-controlled pipeline: publishes pass *admission* at a
  bounded outbound queue (:mod:`repro.core.flow`), are stamped by the
  reliable protocol, pumped — optionally paced to the wire — through the
  batching stage, and broadcast as UDP datagrams on the daemon port;
* inbound — every daemon hears every broadcast (it is an Ethernet), runs
  the reliable receive protocol, matches the subject against its local
  subscription trie, and forwards to subscribed local applications
  through bounded per-application delivery lanes (a slow app backlogs
  and sheds per policy without stalling its co-hosted siblings);
* guaranteed delivery — stable ledger + acks (see
  :mod:`repro.core.guaranteed`); guaranteed traffic is never shed by the
  flow-control layer — full queues defer it back to the ledger's
  retransmission timer;
* fail-stop lifecycle — a crash destroys all volatile daemon state; on
  recovery the daemon restarts with a fresh session and (by default)
  re-attaches its applications' subscriptions, modeling apps restarted
  by init.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, TYPE_CHECKING

from ..sim.kernel import Event, PeriodicTimer, Simulator
from ..sim.node import Host
from ..sim.trace import NULL_TRACER, Tracer
from ..objects import encode
from ..sim.transport import DatagramSocket, Endpoint
from .batching import BatchConfig, Batcher
from .flow import (Admission, BoundedQueue, FlowConfig, POLICY_DROP_OLDEST,
                   PublishReceipt)
from .guaranteed import GuaranteedConsumer, GuaranteedPublisher, LedgerEntry
from .message import Envelope, Packet, PacketKind, QoS
from .metrics import MetricsPublisher, MetricsRegistry
from .reliable import ReliableConfig, ReliableReceiver, ReliableSender
from .subjects import SubjectTrie, validate_subject
from .typeplane import PeerTypeView, TypeTable
from .wire import (CorruptFrame, StringTable, UnresolvedIds,
                   UnresolvedTypeId, decode_packet, encode_packet,
                   read_digest)

if TYPE_CHECKING:  # pragma: no cover
    from .client import BusClient

__all__ = ["ADVERT_SUBJECT", "BusConfig", "BusDaemon", "BusDownError",
           "DAEMON_PORT", "SHARD_PORT_STRIDE", "STAT_PORT",
           "STAT_SUBJECT_PREFIX", "shard_data_port", "shard_stat_port"]

#: The well-known UDP port every daemon binds.
DAEMON_PORT = 7

#: The well-known UDP port the telemetry plane broadcasts on.  Stat
#: frames ride a *separate* socket so their transport counters never
#: perturb the data plane's — the first half of the no-echo guarantee.
STAT_PORT = 8

#: Port stride between shard planes.  Shard 0 keeps the well-known
#: ports above; shard ``k`` binds ``DAEMON_PORT + 16k`` / ``STAT_PORT +
#: 16k``, clear of the noise port (9) and far below the RMI ephemeral
#: range (20000+).  Because every host derives the same ports from the
#: same shard id, shard planes are disjoint broadcast domains on the
#: shared segment — a frame on shard 2's port is only ever decoded by
#: shard-2 daemons.
SHARD_PORT_STRIDE = 16


def shard_data_port(shard: int) -> int:
    """The data-plane port of shard plane ``shard``."""
    return DAEMON_PORT + SHARD_PORT_STRIDE * shard


def shard_stat_port(shard: int) -> int:
    """The telemetry port of shard plane ``shard``."""
    return STAT_PORT + SHARD_PORT_STRIDE * shard

#: Reserved subject on which daemons advertise their subscription tables
#: (consumed by information routers; see repro.core.router).
ADVERT_SUBJECT = "_sub.advert"

#: Reserved subject space for telemetry snapshots: a daemon publishes
#: its registry on ``_bus.stat.<host>.daemon``, a router on
#: ``_bus.stat.<router>.router``.  Reserved (``_``-prefixed) subjects
#: are invisible to ``>`` wildcards — subscribe ``_bus.stat.>``
#: explicitly (see :class:`repro.apps.bus_browser.BusBrowser`).
STAT_SUBJECT_PREFIX = "_bus.stat"


class BusDownError(RuntimeError):
    """An operation was attempted while the local daemon's host is down."""


@dataclass
class BusConfig:
    """All bus tunables in one place."""

    reliable: ReliableConfig = field(default_factory=ReliableConfig)
    batch: BatchConfig = field(default_factory=BatchConfig)
    #: Flow control: queue bounds, overflow policies, wire pacing.  The
    #: defaults are non-shedding pass-through (see
    #: :class:`~repro.core.flow.FlowConfig`).
    flow: FlowConfig = field(default_factory=FlowConfig)
    #: Guaranteed-delivery republish period.
    retransmit_interval: float = 0.5
    #: Distinct consumers that must ack a guaranteed message.
    ack_quorum: int = 1
    #: Re-attach client subscriptions when the host recovers.
    auto_restart_clients: bool = True
    #: Marshal type metadata into every published message by default.
    inline_types: bool = True
    #: Session type plane: when on (and ``inline_types`` would apply),
    #: reliable publishes carry dense session type ids instead of the
    #: full inline metadata block, with typedef definitions riding
    #: once per session on the wire frames (see
    #: :mod:`repro.core.typeplane` and "The session type plane" in
    #: docs/PROTOCOLS.md).  Guaranteed publishes stay self-contained —
    #: their ledgered payloads must outlive the session.  False keeps
    #: the per-message inline encoding — the ablation baseline the perf
    #: harness compares against to prove behaviour is bit-identical.
    type_plane: bool = True
    #: Broadcast subscription-table changes on ADVERT_SUBJECT so routers
    #: can forward across WANs only what somebody actually wants.
    advertise_subscriptions: bool = True
    #: Period of the full subscription-snapshot re-advertisement.
    advert_interval: float = 2.0
    #: Most guaranteed-delivery ledger ids remembered for deduping
    #: deliveries to non-durable subscribers; oldest are evicted past
    #: this, so a long-running daemon's memory stays bounded.
    seen_ledger_cap: int = 4096
    #: Concrete subjects the subscription trie memoizes (see
    #: :class:`~repro.core.subjects.SubjectTrie`).  0 disables the memo —
    #: the escape hatch the perf harness uses to prove cache honesty.
    #: None uses the trie's default.
    match_memo_capacity: Optional[int] = None
    #: Header-compress DATA/RETRANS frames with a per-session string
    #: table (see "Wire header compression" in :mod:`repro.core.wire`).
    #: False keeps the plain encoding — the ablation baseline the perf
    #: harness compares against to prove behaviour is identical.
    wire_compression: bool = True
    #: Interest-gate the receive path: read each DATA/RETRANS frame's
    #: subject digest first and, when no subject matches a local
    #: subscription, advance the reliable session window straight from
    #: the digest without decoding envelope bodies (see "Receive path"
    #: in docs/PROTOCOLS.md).  Guaranteed (ledgered) envelopes and
    #: ``_bus.stat.*`` frames always take the full path.  False decodes
    #: every frame fully — the ablation baseline the perf harness
    #: compares against to prove behaviour is bit-identical.
    interest_gating: bool = True
    #: Seconds between telemetry snapshots published on
    #: ``_bus.stat.<host>.daemon``.  0 (the default) disables the
    #: publisher entirely; runs with it on are bit-identical to runs
    #: with it off (a tested invariant — see docs/OBSERVABILITY.md).
    stat_interval: float = 0.0
    #: Envelopes the bounded stat-publish queue holds (drop-oldest:
    #: under backpressure stale snapshots are shed first — the newest
    #: snapshot supersedes them anyway).
    stat_queue: int = 8
    #: Replace every registry instrument with shared no-op stubs — the
    #: ablation knob the ``metrics_overhead`` perf bench uses to bound
    #: what full instrumentation costs.  Not for normal use: stats
    #: surfaces read garbage under it.
    metrics_stub: bool = False
    #: Partition the subject space into this many hash-sharded planes,
    #: each owned by its own daemon instance on its own CPU lane and
    #: port pair (see :mod:`repro.core.sharding` and "Subject-space
    #: sharding" in docs/PROTOCOLS.md).  The default 1 keeps today's
    #: single-daemon-per-host behaviour bit-for-bit; values > 1 make
    #: :class:`~repro.core.bus.InformationBus` build a
    #: :class:`~repro.core.sharding.ShardedDaemon` facade instead.
    subject_shards: int = 1


class _DeliveryLane:
    """One application's bounded delivery queue on its daemon."""

    __slots__ = ("queue", "service_time", "drain_event")

    def __init__(self, queue: BoundedQueue, service_time: float = 0.0):
        self.queue = queue
        #: simulated seconds the application takes to consume one
        #: message; 0 keeps the historical synchronous fast path
        self.service_time = service_time
        self.drain_event: Optional[Event] = None


class BusDaemon:
    """The bus agent on one host.

    ``shard``/``shard_count`` place this daemon on one shard plane: it
    binds that plane's port pair, serializes its CPU work on lane
    ``shard``, and (for shard > 0) marks its session string so peers
    and telemetry can tell the planes apart.  The defaults (0, 1) are
    the classic unsharded daemon; :class:`~repro.core.sharding.
    ShardedDaemon` builds one instance per plane.
    """

    def __init__(self, sim: Simulator, host: Host,
                 config: Optional[BusConfig] = None,
                 tracer: Optional[Tracer] = None,
                 shard: int = 0, shard_count: int = 1):
        self.sim = sim
        self.host = host
        self.config = config or BusConfig()
        if not 0 <= shard < max(shard_count, 1):
            raise ValueError(f"shard {shard} out of range for "
                             f"{shard_count} shard(s)")
        self.shard = shard
        self.shard_count = max(shard_count, 1)
        self._port = shard_data_port(shard)
        self._stat_port = shard_stat_port(shard)
        # NULL_TRACER fallback, not `or`: a disabled Tracer is falsy, and
        # callers may hand one in intending to flip it on mid-run
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.clients: Dict[str, "BusClient"] = {}
        #: per-application delivery lanes (outlive crashes like clients
        #: do; their queues are volatile and cleared on crash)
        self._lanes: Dict[str, _DeliveryLane] = {}
        #: upstream credit listeners (publishers waiting to resume);
        #: persistent across restarts, re-wired to each new queue
        self._publish_credit_cbs: List[Any] = []
        #: every counter/gauge/histogram this daemon owns, one registry
        #: (the object that gets snapshotted onto ``_bus.stat.*``).  The
        #: registry itself survives restarts; per-incarnation instrument
        #: families are dropped by :meth:`_start`.
        self.metrics = MetricsRegistry(stub=self.config.metrics_stub)
        # daemon-lifetime counters (survive restarts; they describe the
        # daemon object) — int views exposed as properties below
        scope = self.metrics.scope(f"daemon.{host.address}")
        self._published = scope.counter("published")
        self._delivered = scope.counter("delivered")
        self._acks_sent = scope.counter("acks_sent")
        #: guaranteed deliveries pushed back to the ledger because a
        #: delivery lane was full (never shed — redelivered later)
        self._guaranteed_deferred = scope.counter("guaranteed_deferred")
        #: datagrams dropped because their frame failed wire validation
        self._corrupt_dropped = scope.counter("wire.corrupt_dropped")
        #: CRC-valid compressed frames dropped because they referenced
        #: string-table ids this daemon never learned (repaired via NACK)
        self._unresolved_dropped = scope.counter("wire.unresolved_dropped")
        #: CRC-valid typed frames dropped because they referenced
        #: session type ids this daemon never learned (repaired via NACK;
        #: the RETRANS re-defines every type it references)
        self._typedef_unresolved = scope.counter(
            "wire.typedef.unresolved_dropped")
        #: frames the interest gate skipped whole: no digest subject
        #: matched a local subscription, and the reliable window
        #: advanced straight from the digest (bodies never decoded)
        self._skipped_frames = scope.counter("wire.skipped_frames")
        #: envelopes inside those skipped frames (seq accounting done,
        #: bodies never materialized)
        self._skipped_envelopes = scope.counter("wire.skipped_envelopes")
        # lazily read wire/topology gauges (cost is paid at snapshot)
        scope.gauge("clients", source=lambda: len(self.clients))
        scope.gauge("subscriptions",
                    source=lambda: len(self._subscriptions))
        scope.gauge("wire.table_strings",
                    source=lambda: (len(self._wire_table)
                                    if self._wire_table is not None else 0))
        scope.gauge("wire.peer_sessions",
                    source=lambda: len(self._peer_tables))
        scope.gauge("wire.peer_strings",
                    source=lambda: sum(len(t)
                                       for t in self._peer_tables.values()))
        scope.gauge("wire.typedef.table_types",
                    source=lambda: (len(self._type_table)
                                    if self._type_table is not None else 0))
        scope.gauge("wire.typedef.peer_sessions",
                    source=lambda: len(self._peer_type_tables))
        scope.gauge("wire.typedef.peer_types",
                    source=lambda: sum(
                        len(t) for t in self._peer_type_tables.values()))
        if self.shard_count > 1:
            # the shard.* family only exists on sharded hosts, so
            # unsharded snapshots are byte-identical to the pre-shard era
            scope.gauge("shard.id", source=lambda: self.shard)
            scope.gauge("shard.count", source=lambda: self.shard_count)
        self._started = False
        host.on_crash(self._on_crash)
        host.on_recover(self._on_recover)
        self._start()

    # ------------------------------------------------------------------
    # counter views (ints, the historical attribute surface)
    # ------------------------------------------------------------------
    @property
    def published(self) -> int:
        return self._published.value

    @property
    def delivered(self) -> int:
        return self._delivered.value

    @property
    def acks_sent(self) -> int:
        return self._acks_sent.value

    @property
    def guaranteed_deferred(self) -> int:
        return self._guaranteed_deferred.value

    @property
    def corrupt_dropped(self) -> int:
        return self._corrupt_dropped.value

    @property
    def unresolved_dropped(self) -> int:
        return self._unresolved_dropped.value

    @property
    def typedef_unresolved_dropped(self) -> int:
        return self._typedef_unresolved.value

    @property
    def skipped_frames(self) -> int:
        return self._skipped_frames.value

    @property
    def skipped_envelopes(self) -> int:
        return self._skipped_envelopes.value

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _start(self) -> None:
        # shard > 0 marks the session *after* the '#': every consumer of
        # session strings that wants the host parses `split('#', 1)[0]`
        # (NACK unicast routing), which still yields the bare address
        self.session = (f"{self.host.address}#{self.host.epoch}"
                        if self.shard == 0 else
                        f"{self.host.address}#{self.host.epoch}"
                        f"~{self.shard}")
        self.session_started = self.sim.now
        # per-incarnation instrument families restart from zero, exactly
        # like the volatile state they describe (sessions, queues);
        # daemon-lifetime counters above are untouched
        for prefix in ("reliable.", "flow.reliable.retention[",
                       f"flow.outbound[{self.host.address}]",
                       f"flow.batch[{self.host.address}]",
                       f"transport.daemon[{self.host.address}]"):
            self.metrics.drop_prefix(prefix)
        self._socket = DatagramSocket(self.sim, self.host, self._port,
                                      self._on_datagram,
                                      metrics=self.metrics,
                                      metrics_name=(
                                          f"transport.daemon"
                                          f"[{self.host.address}]"),
                                      lane=self.shard)
        self._sender = ReliableSender(self.session, self.config.reliable,
                                      now=lambda: self.sim.now,
                                      metrics=self.metrics)
        # wire-compression state is volatile by design: a restarted
        # daemon has a fresh session name, so receivers key learned
        # tables by session and can never mix incarnations
        self._wire_table: Optional[StringTable] = (
            StringTable() if self.config.wire_compression else None)
        self._peer_tables: Dict[str, Dict[int, str]] = {}
        # the session type plane is equally volatile: type ids are scoped
        # to the session name, so a restart (fresh session) starts a
        # fresh table and receivers never mix incarnations
        self._type_table: Optional[TypeTable] = (
            TypeTable() if self.config.type_plane else None)
        self._peer_type_tables: Dict[str, Dict[int, bytes]] = {}
        self._peer_type_views: Dict[str, PeerTypeView] = {}
        self._receiver = ReliableReceiver(self.sim, self.config.reliable,
                                          self._deliver_remote,
                                          self._send_nack,
                                          tracer=self.tracer,
                                          metrics=self.metrics)
        flow = self.config.flow
        # admission queue: publishes enter the outbound pipeline here.
        # Guaranteed envelopes are never evicted (the evict filter) —
        # they leave only via the wire or a crash.
        self._outbound = BoundedQueue(
            f"outbound[{self.host.address}]", flow.publish_queue,
            flow.publish_policy,
            evict_filter=lambda env: env.qos is not QoS.GUARANTEED,
            on_evict=self._outbound_evicted,
            tracer=self.tracer, now=lambda: self.sim.now,
            metrics=self.metrics)
        self._outbound.on_credit(self._fire_publish_credits)
        self._pump_event: Optional[Event] = None
        self._pumping = False
        self._batcher = Batcher(
            self.sim, self.config.batch, self._send_batch,
            queue=BoundedQueue(
                f"batch[{self.host.address}]",
                capacity=max(self.config.batch.max_messages, 1),
                tracer=self.tracer, now=lambda: self.sim.now,
                metrics=self.metrics))
        memo = self.config.match_memo_capacity
        self._subscriptions: SubjectTrie = SubjectTrie(memo_capacity=memo)
        self._durable: SubjectTrie = SubjectTrie(memo_capacity=memo)
        self._heartbeat = PeriodicTimer(
            self.sim, self.config.reliable.heartbeat_interval,
            self._send_heartbeat, name="daemon.heartbeat")
        gd_namespace = f"s{self.shard}" if self.shard else ""
        self._gpub = GuaranteedPublisher(
            self.sim, self.host, self.config.ack_quorum,
            self.config.retransmit_interval, self._republish_guaranteed,
            namespace=gd_namespace)
        self._gcon = GuaranteedConsumer(self.host, namespace=gd_namespace)
        #: volatile dedupe of guaranteed deliveries to non-durable clients
        #: (insertion-ordered so the oldest entries can be evicted at the
        #: configured cap)
        self._seen_ledgers: "OrderedDict[str, None]" = OrderedDict()
        #: refcounts of advertisable (non-reserved) patterns on this host
        self._public_patterns: Dict[str, int] = {}
        self._advert_timer: Optional[PeriodicTimer] = None
        if self.config.advertise_subscriptions:
            self._advert_timer = PeriodicTimer(
                self.sim, self.config.advert_interval,
                self._advertise_snapshot, name="daemon.advert")
        # telemetry plane: own socket, own bounded queue, and NO
        # registry instruments of its own — the publisher must never
        # publish stats about its own stat traffic (no echo)
        self._stat_socket = DatagramSocket(self.sim, self.host,
                                           self._stat_port,
                                           self._on_stat_datagram,
                                           lane=self.shard)
        self._stat_queue = BoundedQueue(
            f"stat[{self.host.address}]", max(self.config.stat_queue, 1),
            POLICY_DROP_OLDEST)
        self._stat_pump_event: Optional[Event] = None
        self._stat_publisher: Optional[MetricsPublisher] = None
        if self.config.stat_interval > 0:
            self._stat_publisher = MetricsPublisher(
                self.sim, self.metrics, self.publish_stats,
                self.config.stat_interval, name="daemon.stat")
        self._started = True

    def _on_crash(self) -> None:
        self._started = False
        if self._advert_timer is not None:
            self._advert_timer.stop()
        if self._stat_publisher is not None:
            self._stat_publisher.stop()
        if self._stat_pump_event is not None:
            self._stat_pump_event.cancel()
            self._stat_pump_event = None
        self._stat_queue.clear()
        self._heartbeat.stop()
        if self._pump_event is not None:
            self._pump_event.cancel()
            self._pump_event = None
        self._outbound.clear()
        for lane in self._lanes.values():
            if lane.drain_event is not None:
                lane.drain_event.cancel()
                lane.drain_event = None
            lane.queue.clear()
        self._batcher.shutdown()
        self._receiver.shutdown()
        self._gpub.shutdown()

    def _on_recover(self) -> None:
        self._start()
        self._gcon.recover()
        # on a sharded host the facade re-attaches clients once, after
        # *every* plane has restarted — a single plane doing it here
        # would fan subscriptions into planes that are still down
        if self.config.auto_restart_clients and self.shard_count == 1:
            for client in list(self.clients.values()):
                client._reattach()

    @property
    def up(self) -> bool:
        return self._started and self.host.up

    def _require_up(self) -> None:
        if not self.up:
            raise BusDownError(f"daemon on {self.host.address} is down")

    # ------------------------------------------------------------------
    # client registration (the "applications register" part)
    # ------------------------------------------------------------------
    def attach_client(self, client: "BusClient") -> None:
        if client.name in self.clients:
            raise ValueError(
                f"host {self.host.address}: an application named "
                f"{client.name!r} is already registered")
        self.clients[client.name] = client
        flow = self.config.flow
        self._lanes[client.name] = _DeliveryLane(
            BoundedQueue(
                f"deliver[{client.id}]", flow.delivery_queue,
                flow.delivery_policy,
                # guaranteed deliveries are deferred, never evicted
                evict_filter=lambda item: item[0].ledger_id is None,
                tracer=self.tracer, now=lambda: self.sim.now,
                metrics=self.metrics),
            service_time=getattr(client, "service_time", 0.0))
        # end-to-end latency (publish stamp -> application callback),
        # observed by the client itself on each delivery
        client._latency = self.metrics.histogram(
            f"client.{client.name}.latency")

    def detach_client(self, client: "BusClient") -> None:
        self.clients.pop(client.name, None)
        lane = self._lanes.pop(client.name, None)
        if lane is not None and lane.drain_event is not None:
            lane.drain_event.cancel()

    def set_client_service_time(self, name: str, service_time: float) -> None:
        """Model the application's consume rate (seconds per message).

        0 restores the synchronous fast path; > 0 makes deliveries queue
        in the client's bounded lane and drain one per ``service_time``.
        """
        lane = self._lanes[name]
        lane.service_time = max(0.0, service_time)
        if lane.queue and lane.drain_event is None:
            self._arm_lane(name, lane)

    def on_publish_credit(self, callback) -> None:
        """Run ``callback`` when the outbound queue drains after having
        pushed back — the upstream half of publish backpressure."""
        self._publish_credit_cbs.append(callback)

    def _fire_publish_credits(self) -> None:
        for callback in list(self._publish_credit_cbs):
            callback()

    def add_subscription(self, pattern: str, client: "BusClient",
                         durable: bool) -> None:
        self._require_up()
        self._subscriptions.insert(pattern, client)
        if durable:
            self._durable.insert(pattern, client)
        if self._advertisable(pattern):
            count = self._public_patterns.get(pattern, 0)
            self._public_patterns[pattern] = count + 1
            if count == 0:
                self._advertise("add", [pattern])

    def remove_subscription(self, pattern: str, client: "BusClient",
                            durable: bool) -> None:
        if not self._started:
            return
        self._subscriptions.remove(pattern, client)
        if durable:
            self._durable.remove(pattern, client)
        if self._advertisable(pattern):
            count = self._public_patterns.get(pattern, 0) - 1
            if count <= 0:
                self._public_patterns.pop(pattern, None)
                self._advertise("remove", [pattern])
            else:
                self._public_patterns[pattern] = count

    # ------------------------------------------------------------------
    # subscription advertisement (router support)
    # ------------------------------------------------------------------
    def _advertisable(self, pattern: str) -> bool:
        return (self.config.advertise_subscriptions
                and not pattern.split(".", 1)[0].startswith("_"))

    def _advertise(self, action: str, patterns: List[str]) -> None:
        payload = encode({"action": action, "patterns": patterns,
                          "host": self.host.address})
        self.publish(f"{self.host.address}._daemon", ADVERT_SUBJECT, payload)

    def _advertise_snapshot(self) -> None:
        if not self.up or not self._public_patterns:
            return
        self._advertise("snapshot", sorted(self._public_patterns))

    def subscription_count(self) -> int:
        return len(self._subscriptions)

    # ------------------------------------------------------------------
    # publish path
    # ------------------------------------------------------------------
    def publish(self, client_id: str, subject: str, payload: bytes,
                qos: QoS = QoS.RELIABLE,
                via: tuple = (), type_refs: tuple = ()) -> PublishReceipt:
        """Publish pre-marshalled ``payload`` under ``subject``.

        The receipt says whether the outbound pipeline admitted the
        message.  A deferred/dropped publish was never stamped with a
        sequence number and never delivered locally; deferred guaranteed
        messages are already in the stable ledger and retransmit
        automatically.  ``via`` carries router path stamps on
        re-publications (see :mod:`repro.core.router`); ordinary
        publishers leave it empty.  ``type_refs`` carries the session
        type-table ids a payload marshalled with ``encode_typed``
        references, so the wire layer can ride the typedef definitions
        in-band.
        """
        self._require_up()
        validate_subject(subject)
        envelope = Envelope(subject=subject, sender=client_id,
                            session=self.session, seq=0, payload=payload,
                            qos=qos, publish_time=self.sim.now,
                            via=tuple(via), type_refs=tuple(type_refs))
        if qos is QoS.GUARANTEED:
            # logged before the first transmission attempt, per the
            # paper — which is also why a full queue can safely defer
            envelope.ledger_id = self._gpub.record(subject, client_id,
                                                   payload)
        admission = self._outbound.offer(
            envelope, no_shed=(qos is QoS.GUARANTEED))
        if admission is not Admission.ACCEPTED:
            return PublishReceipt(admission, len(payload))
        self._sender.stamp(envelope)
        self._published.value += 1
        if self.tracer:
            self.tracer.emit(self.sim.now, "publish", subject=subject,
                             seq=envelope.seq, size=len(payload))
        self._deliver_local(envelope)
        self._pump_outbound()
        return PublishReceipt(Admission.ACCEPTED, len(payload), envelope)

    def flush(self) -> None:
        """Force out any batched messages (respects wire pacing)."""
        self._pump_outbound()
        self._batcher.flush()

    def _republish_guaranteed(self, entry: LedgerEntry) -> None:
        if not self.up:
            return
        envelope = Envelope(subject=entry.subject, sender=entry.sender,
                            session=self.session, seq=0,
                            payload=entry.payload, qos=QoS.GUARANTEED,
                            ledger_id=entry.ledger_id,
                            publish_time=self.sim.now)
        if self._outbound.offer(envelope, no_shed=True) \
                is not Admission.ACCEPTED:
            return   # still congested; the ledger timer tries again
        self._sender.stamp(envelope)
        self._deliver_local(envelope)
        self._pump_outbound()

    # ------------------------------------------------------------------
    # outbound pump (admission queue -> batcher -> wire)
    # ------------------------------------------------------------------
    def _outbound_evicted(self, envelope: Envelope) -> None:
        """A stamped envelope was shed from the outbound queue
        (drop-oldest): purge it from retention so NACKs cannot
        resurrect what flow control decided to drop."""
        self._sender.forget(envelope.seq)

    def _pump_outbound(self) -> None:
        """Move admitted envelopes into the batching stage.

        Without pacing (``flow.max_send_backlog is None``) this drains
        synchronously — publish behaves exactly as it did before the
        flow-control layer.  With pacing, the pump stops once the host's
        send pipeline is ``max_send_backlog`` seconds ahead of simulated
        time and reschedules itself for when the backlog clears, which
        is what lets the queue fill and admission push back upstream.
        """
        if self._pumping:
            return   # re-entrant publish from a delivery callback
        backlog_cap = self.config.flow.max_send_backlog
        self._pumping = True
        try:
            while self._outbound:
                if backlog_cap is not None:
                    backlog = self.host.send_backlog_for(self.shard)
                    if backlog >= backlog_cap:
                        if self._pump_event is None:
                            self._pump_event = self.sim.schedule(
                                backlog - backlog_cap + 1e-9,
                                self._pump_fire, name="flow.pump")
                        return
                self._batcher.add(self._outbound.take())
        finally:
            self._pumping = False

    def _pump_fire(self) -> None:
        self._pump_event = None
        if self.up:
            self._pump_outbound()

    def _send_batch(self, envelopes: List[Envelope]) -> None:
        if not self.up:
            return
        packet = Packet(PacketKind.DATA, self.session, envelopes,
                        session_start=self.session_started)
        # one encoding per fan-out: the broadcast medium carries these
        # bytes to every consumer, so publisher cost is independent of
        # the consumer count (the paper's headline claim)
        self._socket.broadcast(
            encode_packet(packet, self._wire_table,
                          type_table=self._type_table),
            self._port)

    def _send_heartbeat(self) -> None:
        if not self.up or self._sender.last_seq == 0:
            return
        packet = Packet(PacketKind.HEARTBEAT, self.session,
                        last_seq=self._sender.last_seq,
                        session_start=self.session_started)
        self._socket.broadcast(encode_packet(packet), self._port)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, size: int, src: Endpoint) -> None:
        if self.config.interest_gating and self._gate_datagram(data):
            return
        try:
            packet = decode_packet(data, tables=self._peer_tables,
                                   type_tables=self._peer_type_tables)
        except UnresolvedIds as err:
            # CRC-valid but referencing table ids — string or type — we
            # never learned (the defining frame was lost): drop it like
            # a gap, but *arm the repair* — the self-contained RETRANS
            # will resolve
            if isinstance(err, UnresolvedTypeId):
                self._typedef_unresolved.value += 1
            else:
                self._unresolved_dropped.value += 1
            if self.tracer:
                self.tracer.emit(self.sim.now, "wire.unresolved",
                                 session=err.session,
                                 first=err.first_seq, last=err.last_seq)
            self._receiver.note_undecodable(
                err.session, err.first_seq, err.last_seq,
                session_start=err.session_start)
            return
        except CorruptFrame:
            # a corrupted frame is indistinguishable from loss; the
            # NACK/heartbeat machinery repairs the gap
            self._corrupt_dropped.value += 1
            return
        if packet.kind is PacketKind.DATA:
            for envelope in packet.envelopes:
                self._receiver.handle_envelope(
                    envelope, session_start=packet.session_start)
        elif packet.kind is PacketKind.RETRANS:
            for envelope in packet.envelopes:
                self._receiver.handle_envelope(
                    envelope, retransmitted=True,
                    session_start=packet.session_start)
        elif packet.kind is PacketKind.HEARTBEAT:
            self._receiver.handle_heartbeat(packet.session, packet.last_seq,
                                            packet.session_start)
        elif packet.kind is PacketKind.NACK:
            self._serve_nack(packet, src)
        elif packet.kind is PacketKind.ACK:
            self._gpub.handle_ack(packet.ack_ledger_id, packet.ack_consumer)

    def _gate_datagram(self, data: bytes) -> bool:
        """The interest gate: True when the frame is fully handled in
        O(header) — nothing local wanted it and the reliable window
        advanced from its subject digest alone (or it was corrupt /
        unresolvable, handled exactly as the full path would).

        Falls back to the full decode path (returns False) whenever
        skipping could be observable: a digest subject matches a local
        subscription (including the router leg's forwarding patterns,
        which live in this same trie), the frame carries guaranteed or
        unsequenced envelopes, or the reliable receiver is in any state
        other than trivial in-order/duplicate accounting.
        """
        try:
            digest = read_digest(data, tables=self._peer_tables,
                                 type_tables=self._peer_type_tables)
        except UnresolvedIds as err:
            # identical handling to the full path: the bodies reference
            # at least the ids the digest (and the typedef reference
            # list) does, so decoding would have raised the same
            # condition
            if isinstance(err, UnresolvedTypeId):
                self._typedef_unresolved.value += 1
            else:
                self._unresolved_dropped.value += 1
            if self.tracer:
                self.tracer.emit(self.sim.now, "wire.unresolved",
                                 session=err.session,
                                 first=err.first_seq, last=err.last_seq)
            self._receiver.note_undecodable(
                err.session, err.first_seq, err.last_seq,
                session_start=err.session_start)
            return True
        except CorruptFrame:
            # same counter, same silence as the full path's CRC reject
            self._corrupt_dropped.value += 1
            return True
        if digest is None or digest.needs_full:
            return False
        matches = self._subscriptions.matches_anything
        for subject in digest.subjects:
            if matches(subject):
                return False
        if not self._receiver.try_skip(digest.entries):
            return False
        self._skipped_frames.value += 1
        self._skipped_envelopes.value += len(digest.entries)
        return True

    def _serve_nack(self, packet: Packet, src: Endpoint) -> None:
        if packet.session != self.session or packet.nack_range is None:
            return
        first, last = packet.nack_range
        repairs = self._sender.repair(first, last)
        if not repairs:
            return
        if self.tracer:
            self.tracer.emit(self.sim.now, "retransmit", first=first,
                             last=last, count=len(repairs))
        # the repair defines every table id — string *and* type — it
        # references, so the requester decodes it even if it missed the
        # defining DATA frame
        reply = Packet(PacketKind.RETRANS, self.session, repairs,
                       session_start=self.session_started)
        self._socket.sendto(
            encode_packet(reply, self._wire_table,
                          type_table=self._type_table),
            src[0], self._port)

    def _send_nack(self, session: str, first: int, last: int) -> None:
        if not self.up:
            return
        target_host = session.split("#", 1)[0]
        packet = Packet(PacketKind.NACK, session, nack_range=(first, last))
        if self.tracer:
            self.tracer.emit(self.sim.now, "nack", session=session,
                             first=first, last=last)
        self._socket.sendto(encode_packet(packet), target_host, self._port)

    # ------------------------------------------------------------------
    # delivery to applications
    # ------------------------------------------------------------------
    def _deliver_local(self, envelope: Envelope) -> None:
        """Same-host subscribers see their host's own publications."""
        self._dispatch(envelope, retransmitted=False)

    def _deliver_remote(self, envelope: Envelope, retransmitted: bool) -> None:
        self._dispatch(envelope, retransmitted)

    def _dispatch(self, envelope: Envelope, retransmitted: bool) -> None:
        if not self.up:
            return
        clients = self._subscriptions.match(envelope.subject)
        if envelope.ledger_id is not None:
            self._dispatch_guaranteed(envelope, clients, retransmitted)
            return
        for client in clients:
            self._lane_offer(client, envelope, retransmitted)

    def _lane_offer(self, client: "BusClient", envelope: Envelope,
                    retransmitted: bool) -> Admission:
        """Hand one envelope to one application through its lane."""
        lane = self._lanes.get(client.name)
        if lane is None or (lane.service_time <= 0.0 and not lane.queue):
            # instant consumer: the historical synchronous fast path
            if lane is not None:
                lane.queue.pass_through()
            if envelope.seq:   # seq-0 = telemetry; never self-counted
                self._delivered.value += 1
            client._deliver(envelope, retransmitted)
            return Admission.ACCEPTED
        admission = lane.queue.offer(
            (envelope, retransmitted),
            no_shed=(envelope.ledger_id is not None))
        if admission is Admission.ACCEPTED and lane.drain_event is None:
            self._arm_lane(client.name, lane)
        return admission

    def _arm_lane(self, name: str, lane: _DeliveryLane) -> None:
        lane.drain_event = self.sim.schedule(
            lane.service_time, self._lane_drain, name, name="flow.deliver")

    def _lane_drain(self, name: str) -> None:
        lane = self._lanes.get(name)
        if lane is None:
            return
        lane.drain_event = None
        if not self.up or not lane.queue:
            return
        envelope, retransmitted = lane.queue.take()
        client = self.clients.get(name)
        if client is not None:
            if envelope.seq:   # seq-0 = telemetry; never self-counted
                self._delivered.value += 1
            client._deliver(envelope, retransmitted)
        if lane.queue and lane.drain_event is None:
            self._arm_lane(name, lane)

    def _lanes_have_room(self, clients: Set) -> bool:
        for client in clients:
            lane = self._lanes.get(client.name)
            if lane is None:
                continue
            if (lane.service_time > 0.0 or lane.queue) and lane.queue.full:
                return False
        return True

    def _defer_guaranteed(self, envelope: Envelope) -> None:
        self._guaranteed_deferred.value += 1
        if self.tracer:
            self.tracer.emit(self.sim.now, "flow.defer", queue="deliver",
                             ledger_id=envelope.ledger_id,
                             subject=envelope.subject)

    def _dispatch_guaranteed(self, envelope: Envelope, clients: Set,
                             retransmitted: bool) -> None:
        """Guaranteed messages: dedupe by ledger id, ack on durable receipt.

        The lane-room check runs *before* the delivery dedupe is consumed
        and before any ack: a guaranteed message facing a full lane is
        deferred whole — the publisher's ledger keeps retransmitting until
        every target application has room, so guaranteed QoS is never shed.
        """
        durable_clients = self._durable.match(envelope.subject)
        if durable_clients:
            if not self._lanes_have_room(clients):
                self._defer_guaranteed(envelope)   # withholds the ack too
                return
            if self._gcon.first_delivery(envelope.ledger_id):
                for client in clients:
                    self._lane_offer(client, envelope, retransmitted)
            self._send_ack(envelope)   # (re-)ack even on duplicates
            return
        # no durable subscriber here: deliver once to regular subscribers
        if envelope.ledger_id in self._seen_ledgers:
            return
        if not self._lanes_have_room(clients):
            self._defer_guaranteed(envelope)
            return
        if clients:
            self._seen_ledgers[envelope.ledger_id] = None
            while len(self._seen_ledgers) > self.config.seen_ledger_cap:
                self._seen_ledgers.popitem(last=False)
        for client in clients:
            self._lane_offer(client, envelope, retransmitted)

    def _send_ack(self, envelope: Envelope) -> None:
        origin_host = envelope.ledger_id.split("/", 1)[0]
        self._acks_sent.value += 1
        packet = Packet(PacketKind.ACK, self.session,
                        ack_ledger_id=envelope.ledger_id,
                        ack_consumer=self.host.address)
        if origin_host == self.host.address:
            # local durable consumer: ack without touching the wire
            self._gpub.handle_ack(envelope.ledger_id, self.host.address)
            return
        self._socket.sendto(encode_packet(packet), origin_host, self._port)

    # ------------------------------------------------------------------
    # telemetry plane (reserved ``_bus.stat.*`` subjects)
    # ------------------------------------------------------------------
    def publish_stats(self, snapshot: Dict[str, Any]) -> None:
        """Publish one registry snapshot on ``_bus.stat.<host>.daemon``.

        Snapshots are self-describing data objects (the
        :mod:`repro.objects` marshalling), exactly as the paper's
        system-management tools expect: any subscriber can decode them
        with no out-of-band schema.
        """
        if not self.up:
            return
        record = {"host": self.host.address,
                  "time": self.sim.now,
                  "interval": self.config.stat_interval,
                  "metrics": snapshot}
        subject = f"{STAT_SUBJECT_PREFIX}.{self.host.address}.daemon"
        if self.shard_count > 1:
            # shard planes are separate snapshot sources: an extra
            # subject element keeps them distinct for aggregators, and
            # the payload says which plane this is
            record["shard"] = self.shard
            subject = f"{subject}.s{self.shard}"
        payload = encode(record)
        self.publish_stat_bytes(subject, payload)

    def publish_stat_bytes(self, subject: str, payload: bytes,
                           via: tuple = ()) -> None:
        """Broadcast a telemetry envelope outside the data plane.

        Stat envelopes are *unsequenced* (``seq == 0``): they bypass the
        reliable protocol entirely, so they never consume data-plane
        sequence numbers, never trigger NACKs, and are trivially
        identifiable for exclusion from the counters they would perturb.
        They are plain-encoded (no string table) so the data plane's
        wire-compression state is untouched, and they queue in a private
        drop-oldest buffer so a congested wire sheds stale snapshots
        instead of amplifying load — the no-echo invariant.
        """
        if not self.up:
            return
        envelope = Envelope(subject=subject, sender=self.session,
                            session=self.session, seq=0, payload=payload,
                            publish_time=self.sim.now, via=tuple(via))
        self._dispatch_stat(envelope)          # local subscribers
        self._stat_queue.offer(envelope)
        self._pump_stats()

    def _pump_stats(self) -> None:
        """Drain the stat queue to the wire, paced like the data pump."""
        backlog_cap = self.config.flow.max_send_backlog
        while self._stat_queue:
            if backlog_cap is not None:
                backlog = self.host.send_backlog_for(self.shard)
                if backlog >= backlog_cap:
                    if self._stat_pump_event is None:
                        self._stat_pump_event = self.sim.schedule(
                            backlog - backlog_cap + 1e-9,
                            self._stat_pump_fire, name="stat.pump")
                    return
            envelope = self._stat_queue.take()
            packet = Packet(PacketKind.DATA, self.session, [envelope],
                            session_start=self.session_started)
            # plain encoding: stat frames never touch the string table
            self._stat_socket.broadcast(encode_packet(packet),
                                        self._stat_port)

    def _stat_pump_fire(self) -> None:
        self._stat_pump_event = None
        if self.up:
            self._pump_stats()

    def _on_stat_datagram(self, data: bytes, size: int,
                          src: Endpoint) -> None:
        try:
            packet = decode_packet(data)
        except CorruptFrame:
            return   # telemetry is best-effort: no counter, no repair
        if packet.kind is not PacketKind.DATA:
            return
        if packet.session == self.session:
            return   # our own broadcast echoed back
        for envelope in packet.envelopes:
            self._dispatch_stat(envelope)

    def _dispatch_stat(self, envelope: Envelope) -> None:
        """Deliver a stat envelope to local ``_bus.*`` subscribers.

        Rides the ordinary delivery lanes (so a slow browser backlogs
        and sheds like any application) but skips the reliable receive
        protocol — stat envelopes carry no sequence numbers to order.
        """
        if not self.up:
            return
        for client in self._subscriptions.match(envelope.subject):
            self._lane_offer(client, envelope, retransmitted=False)

    # ------------------------------------------------------------------
    # session type plane (see repro.core.typeplane)
    # ------------------------------------------------------------------
    @property
    def type_table(self) -> Optional[TypeTable]:
        """This session's sender-side type table (None with the plane off)."""
        return self._type_table

    def type_table_for(self, subject: str) -> Optional[TypeTable]:
        """The sender-side type table a publish on ``subject`` rides.

        On an unsharded daemon this is the one session table; the
        :class:`~repro.core.sharding.ShardedDaemon` override routes to
        the owning shard's table so typed payloads reference ids the
        carrying plane actually defines.
        """
        return self._type_table

    def type_resolver(self, session: str):
        """The resolver clients use to decode ``O``-tagged payloads from
        ``session``: this daemon's own :class:`TypeTable` for loop-back
        deliveries, or a cached :class:`PeerTypeView` over the typedefs
        learned from that peer session's frames.  ``None`` when the
        session is unknown (a typed payload then fails decode with
        ``UnknownTypeError`` — counted by the client, never a crash).
        """
        if self._type_table is not None and session == self.session:
            return self._type_table
        raw = self._peer_type_tables.get(session)
        if raw is None:
            return None
        view = self._peer_type_views.get(session)
        if view is None:
            view = PeerTypeView(raw)
            self._peer_type_views[session] = view
        return view

    # ------------------------------------------------------------------
    # introspection helpers (tests, benches, routers)
    # ------------------------------------------------------------------
    def reliable_stats(self, session: str):
        return self._receiver.stats(session)

    def flow_stats(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot every flow-control queue this daemon owns."""
        stats = {"outbound": self._outbound.stats.snapshot(),
                 "batch": self._batcher.queue.stats.snapshot()}
        for name, lane in self._lanes.items():
            stats[f"deliver[{name}]"] = lane.queue.stats.snapshot()
        return stats

    def wire_stats(self) -> Dict[str, Any]:
        """Wire state: compression tables, unresolvable drops, and what
        the interest gate skipped."""
        return {
            "compression": self._wire_table is not None,
            "table_strings": len(self._wire_table)
            if self._wire_table is not None else 0,
            "peer_sessions": len(self._peer_tables),
            "peer_strings": sum(len(t) for t in self._peer_tables.values()),
            "unresolved_dropped": self.unresolved_dropped,
            "interest_gating": self.config.interest_gating,
            "skipped_frames": self.skipped_frames,
            "skipped_envelopes": self.skipped_envelopes,
            "type_plane": self._type_table is not None,
            "typedef_table_types": (len(self._type_table)
                                    if self._type_table is not None else 0),
            "typedef_peer_sessions": len(self._peer_type_tables),
            "typedef_peer_types": sum(
                len(t) for t in self._peer_type_tables.values()),
            "typedef_unresolved_dropped": self.typedef_unresolved_dropped,
        }

    def shard_stats(self) -> List[Dict[str, Any]]:
        """This daemon's shard-plane placement and per-plane load.

        One row per shard plane; the classic unsharded daemon is plane
        0 of 1.  The :class:`~repro.core.sharding.ShardedDaemon`
        facade concatenates its members' rows, so callers see the same
        shape either way.
        """
        return [{
            "shard": self.shard,
            "shards": self.shard_count,
            "session": self.session,
            "port": self._port,
            "stat_port": self._stat_port,
            "published": self.published,
            "delivered": self.delivered,
            "subscriptions": len(self._subscriptions),
            "skipped_frames": self.skipped_frames,
        }]

    def guaranteed_pending(self) -> List[LedgerEntry]:
        return self._gpub.pending()

    def sender_retransmissions(self) -> int:
        return self._sender.retransmissions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BusDaemon {self.session} clients={len(self.clients)}>"
