"""The per-host Information Bus daemon.

Section 3.1: "In our implementation of subject-based addressing, we use a
daemon on every host.  Each application registers with its local daemon,
and tells the daemon to which subjects it has subscribed.  The daemon
forwards each message to each application that has subscribed.  It uses
the subject contained in the message to decide which application receives
which message."

One :class:`BusDaemon` per :class:`~repro.sim.node.Host`:

* outbound — stamps envelopes with the reliable protocol, optionally
  batches them, and broadcasts them as UDP datagrams on the daemon port;
* inbound — every daemon hears every broadcast (it is an Ethernet), runs
  the reliable receive protocol, matches the subject against its local
  subscription trie, and forwards to subscribed local applications;
* guaranteed delivery — stable ledger + acks (see
  :mod:`repro.core.guaranteed`);
* fail-stop lifecycle — a crash destroys all volatile daemon state; on
  recovery the daemon restarts with a fresh session and (by default)
  re-attaches its applications' subscriptions, modeling apps restarted
  by init.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from ..sim.kernel import PeriodicTimer, Simulator
from ..sim.node import Host
from ..sim.trace import NULL_TRACER, Tracer
from ..objects import encode
from ..sim.transport import DatagramSocket, Endpoint
from .batching import BatchConfig, Batcher
from .guaranteed import GuaranteedConsumer, GuaranteedPublisher, LedgerEntry
from .message import Envelope, Packet, PacketKind, QoS
from .reliable import ReliableConfig, ReliableReceiver, ReliableSender
from .subjects import SubjectTrie, validate_subject
from .wire import CorruptFrame, decode_packet, encode_packet

if TYPE_CHECKING:  # pragma: no cover
    from .client import BusClient

__all__ = ["ADVERT_SUBJECT", "BusConfig", "BusDaemon", "BusDownError",
           "DAEMON_PORT"]

#: The well-known UDP port every daemon binds.
DAEMON_PORT = 7

#: Reserved subject on which daemons advertise their subscription tables
#: (consumed by information routers; see repro.core.router).
ADVERT_SUBJECT = "_sub.advert"


class BusDownError(RuntimeError):
    """An operation was attempted while the local daemon's host is down."""


@dataclass
class BusConfig:
    """All bus tunables in one place."""

    reliable: ReliableConfig = field(default_factory=ReliableConfig)
    batch: BatchConfig = field(default_factory=BatchConfig)
    #: Guaranteed-delivery republish period.
    retransmit_interval: float = 0.5
    #: Distinct consumers that must ack a guaranteed message.
    ack_quorum: int = 1
    #: Re-attach client subscriptions when the host recovers.
    auto_restart_clients: bool = True
    #: Marshal type metadata into every published message by default.
    inline_types: bool = True
    #: Broadcast subscription-table changes on ADVERT_SUBJECT so routers
    #: can forward across WANs only what somebody actually wants.
    advertise_subscriptions: bool = True
    #: Period of the full subscription-snapshot re-advertisement.
    advert_interval: float = 2.0
    #: Most guaranteed-delivery ledger ids remembered for deduping
    #: deliveries to non-durable subscribers; oldest are evicted past
    #: this, so a long-running daemon's memory stays bounded.
    seen_ledger_cap: int = 4096
    #: Concrete subjects the subscription trie memoizes (see
    #: :class:`~repro.core.subjects.SubjectTrie`).  0 disables the memo —
    #: the escape hatch the perf harness uses to prove cache honesty.
    #: None uses the trie's default.
    match_memo_capacity: Optional[int] = None


class BusDaemon:
    """The bus agent on one host."""

    def __init__(self, sim: Simulator, host: Host,
                 config: Optional[BusConfig] = None,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.host = host
        self.config = config or BusConfig()
        # NULL_TRACER fallback, not `or`: a disabled Tracer is falsy, and
        # callers may hand one in intending to flip it on mid-run
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.clients: Dict[str, "BusClient"] = {}
        # counters (survive restarts; they describe the daemon object)
        self.published = 0
        self.delivered = 0
        self.acks_sent = 0
        #: datagrams dropped because their frame failed wire validation
        self.corrupt_dropped = 0
        self._started = False
        host.on_crash(self._on_crash)
        host.on_recover(self._on_recover)
        self._start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _start(self) -> None:
        self.session = f"{self.host.address}#{self.host.epoch}"
        self.session_started = self.sim.now
        self._socket = DatagramSocket(self.sim, self.host, DAEMON_PORT,
                                      self._on_datagram)
        self._sender = ReliableSender(self.session, self.config.reliable,
                                      now=lambda: self.sim.now)
        self._receiver = ReliableReceiver(self.sim, self.config.reliable,
                                          self._deliver_remote,
                                          self._send_nack)
        self._batcher = Batcher(self.sim, self.config.batch, self._send_batch)
        memo = self.config.match_memo_capacity
        self._subscriptions: SubjectTrie = SubjectTrie(memo_capacity=memo)
        self._durable: SubjectTrie = SubjectTrie(memo_capacity=memo)
        self._heartbeat = PeriodicTimer(
            self.sim, self.config.reliable.heartbeat_interval,
            self._send_heartbeat, name="daemon.heartbeat")
        self._gpub = GuaranteedPublisher(
            self.sim, self.host, self.config.ack_quorum,
            self.config.retransmit_interval, self._republish_guaranteed)
        self._gcon = GuaranteedConsumer(self.host)
        #: volatile dedupe of guaranteed deliveries to non-durable clients
        #: (insertion-ordered so the oldest entries can be evicted at the
        #: configured cap)
        self._seen_ledgers: "OrderedDict[str, None]" = OrderedDict()
        #: refcounts of advertisable (non-reserved) patterns on this host
        self._public_patterns: Dict[str, int] = {}
        self._advert_timer: Optional[PeriodicTimer] = None
        if self.config.advertise_subscriptions:
            self._advert_timer = PeriodicTimer(
                self.sim, self.config.advert_interval,
                self._advertise_snapshot, name="daemon.advert")
        self._started = True

    def _on_crash(self) -> None:
        self._started = False
        if self._advert_timer is not None:
            self._advert_timer.stop()
        self._heartbeat.stop()
        self._batcher.shutdown()
        self._receiver.shutdown()
        self._gpub.shutdown()

    def _on_recover(self) -> None:
        self._start()
        self._gcon.recover()
        if self.config.auto_restart_clients:
            for client in list(self.clients.values()):
                client._reattach()

    @property
    def up(self) -> bool:
        return self._started and self.host.up

    def _require_up(self) -> None:
        if not self.up:
            raise BusDownError(f"daemon on {self.host.address} is down")

    # ------------------------------------------------------------------
    # client registration (the "applications register" part)
    # ------------------------------------------------------------------
    def attach_client(self, client: "BusClient") -> None:
        if client.name in self.clients:
            raise ValueError(
                f"host {self.host.address}: an application named "
                f"{client.name!r} is already registered")
        self.clients[client.name] = client

    def detach_client(self, client: "BusClient") -> None:
        self.clients.pop(client.name, None)

    def add_subscription(self, pattern: str, client: "BusClient",
                         durable: bool) -> None:
        self._require_up()
        self._subscriptions.insert(pattern, client)
        if durable:
            self._durable.insert(pattern, client)
        if self._advertisable(pattern):
            count = self._public_patterns.get(pattern, 0)
            self._public_patterns[pattern] = count + 1
            if count == 0:
                self._advertise("add", [pattern])

    def remove_subscription(self, pattern: str, client: "BusClient",
                            durable: bool) -> None:
        if not self._started:
            return
        self._subscriptions.remove(pattern, client)
        if durable:
            self._durable.remove(pattern, client)
        if self._advertisable(pattern):
            count = self._public_patterns.get(pattern, 0) - 1
            if count <= 0:
                self._public_patterns.pop(pattern, None)
                self._advertise("remove", [pattern])
            else:
                self._public_patterns[pattern] = count

    # ------------------------------------------------------------------
    # subscription advertisement (router support)
    # ------------------------------------------------------------------
    def _advertisable(self, pattern: str) -> bool:
        return (self.config.advertise_subscriptions
                and not pattern.split(".", 1)[0].startswith("_"))

    def _advertise(self, action: str, patterns: List[str]) -> None:
        payload = encode({"action": action, "patterns": patterns,
                          "host": self.host.address})
        self.publish(f"{self.host.address}._daemon", ADVERT_SUBJECT, payload)

    def _advertise_snapshot(self) -> None:
        if not self.up or not self._public_patterns:
            return
        self._advertise("snapshot", sorted(self._public_patterns))

    def subscription_count(self) -> int:
        return len(self._subscriptions)

    # ------------------------------------------------------------------
    # publish path
    # ------------------------------------------------------------------
    def publish(self, client_id: str, subject: str, payload: bytes,
                qos: QoS = QoS.RELIABLE,
                via: tuple = ()) -> Envelope:
        """Publish pre-marshalled ``payload`` under ``subject``.

        ``via`` carries router path stamps on re-publications (see
        :mod:`repro.core.router`); ordinary publishers leave it empty.
        """
        self._require_up()
        validate_subject(subject)
        envelope = Envelope(subject=subject, sender=client_id,
                            session=self.session, seq=0, payload=payload,
                            qos=qos, publish_time=self.sim.now,
                            via=tuple(via))
        if qos is QoS.GUARANTEED:
            envelope.ledger_id = self._gpub.record(subject, client_id,
                                                   payload)
        self._sender.stamp(envelope)
        self.published += 1
        if self.tracer:
            self.tracer.emit(self.sim.now, "publish", subject=subject,
                             seq=envelope.seq, size=len(payload))
        self._deliver_local(envelope)
        self._batcher.add(envelope)
        return envelope

    def flush(self) -> None:
        """Force out any batched messages."""
        self._batcher.flush()

    def _republish_guaranteed(self, entry: LedgerEntry) -> None:
        if not self.up:
            return
        envelope = Envelope(subject=entry.subject, sender=entry.sender,
                            session=self.session, seq=0,
                            payload=entry.payload, qos=QoS.GUARANTEED,
                            ledger_id=entry.ledger_id,
                            publish_time=self.sim.now)
        self._sender.stamp(envelope)
        self._deliver_local(envelope)
        self._batcher.add(envelope)

    def _send_batch(self, envelopes: List[Envelope]) -> None:
        if not self.up:
            return
        packet = Packet(PacketKind.DATA, self.session, envelopes,
                        session_start=self.session_started)
        # one encoding per fan-out: the broadcast medium carries these
        # bytes to every consumer, so publisher cost is independent of
        # the consumer count (the paper's headline claim)
        self._socket.broadcast(encode_packet(packet), DAEMON_PORT)

    def _send_heartbeat(self) -> None:
        if not self.up or self._sender.last_seq == 0:
            return
        packet = Packet(PacketKind.HEARTBEAT, self.session,
                        last_seq=self._sender.last_seq,
                        session_start=self.session_started)
        self._socket.broadcast(encode_packet(packet), DAEMON_PORT)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_datagram(self, data: bytes, size: int, src: Endpoint) -> None:
        try:
            packet = decode_packet(data)
        except CorruptFrame:
            # a corrupted frame is indistinguishable from loss; the
            # NACK/heartbeat machinery repairs the gap
            self.corrupt_dropped += 1
            return
        if packet.kind is PacketKind.DATA:
            for envelope in packet.envelopes:
                self._receiver.handle_envelope(
                    envelope, session_start=packet.session_start)
        elif packet.kind is PacketKind.RETRANS:
            for envelope in packet.envelopes:
                self._receiver.handle_envelope(
                    envelope, retransmitted=True,
                    session_start=packet.session_start)
        elif packet.kind is PacketKind.HEARTBEAT:
            self._receiver.handle_heartbeat(packet.session, packet.last_seq,
                                            packet.session_start)
        elif packet.kind is PacketKind.NACK:
            self._serve_nack(packet, src)
        elif packet.kind is PacketKind.ACK:
            self._gpub.handle_ack(packet.ack_ledger_id, packet.ack_consumer)

    def _serve_nack(self, packet: Packet, src: Endpoint) -> None:
        if packet.session != self.session or packet.nack_range is None:
            return
        first, last = packet.nack_range
        repairs = self._sender.repair(first, last)
        if not repairs:
            return
        if self.tracer:
            self.tracer.emit(self.sim.now, "retransmit", first=first,
                             last=last, count=len(repairs))
        reply = Packet(PacketKind.RETRANS, self.session, repairs,
                       session_start=self.session_started)
        self._socket.sendto(encode_packet(reply), src[0], DAEMON_PORT)

    def _send_nack(self, session: str, first: int, last: int) -> None:
        if not self.up:
            return
        target_host = session.split("#", 1)[0]
        packet = Packet(PacketKind.NACK, session, nack_range=(first, last))
        if self.tracer:
            self.tracer.emit(self.sim.now, "nack", session=session,
                             first=first, last=last)
        self._socket.sendto(encode_packet(packet), target_host, DAEMON_PORT)

    # ------------------------------------------------------------------
    # delivery to applications
    # ------------------------------------------------------------------
    def _deliver_local(self, envelope: Envelope) -> None:
        """Same-host subscribers see their host's own publications."""
        self._dispatch(envelope, retransmitted=False)

    def _deliver_remote(self, envelope: Envelope, retransmitted: bool) -> None:
        self._dispatch(envelope, retransmitted)

    def _dispatch(self, envelope: Envelope, retransmitted: bool) -> None:
        if not self.up:
            return
        clients = self._subscriptions.match(envelope.subject)
        if envelope.ledger_id is not None:
            self._dispatch_guaranteed(envelope, clients, retransmitted)
            return
        for client in clients:
            self.delivered += 1
            client._deliver(envelope, retransmitted)

    def _dispatch_guaranteed(self, envelope: Envelope, clients: Set,
                             retransmitted: bool) -> None:
        """Guaranteed messages: dedupe by ledger id, ack on durable receipt."""
        durable_clients = self._durable.match(envelope.subject)
        if durable_clients:
            if self._gcon.first_delivery(envelope.ledger_id):
                for client in clients:
                    self.delivered += 1
                    client._deliver(envelope, retransmitted)
            self._send_ack(envelope)   # (re-)ack even on duplicates
            return
        # no durable subscriber here: deliver once to regular subscribers
        if envelope.ledger_id in self._seen_ledgers:
            return
        if clients:
            self._seen_ledgers[envelope.ledger_id] = None
            while len(self._seen_ledgers) > self.config.seen_ledger_cap:
                self._seen_ledgers.popitem(last=False)
        for client in clients:
            self.delivered += 1
            client._deliver(envelope, retransmitted)

    def _send_ack(self, envelope: Envelope) -> None:
        origin_host = envelope.ledger_id.split("/", 1)[0]
        self.acks_sent += 1
        packet = Packet(PacketKind.ACK, self.session,
                        ack_ledger_id=envelope.ledger_id,
                        ack_consumer=self.host.address)
        if origin_host == self.host.address:
            # local durable consumer: ack without touching the wire
            self._gpub.handle_ack(envelope.ledger_id, self.host.address)
            return
        self._socket.sendto(encode_packet(packet), origin_host, DAEMON_PORT)

    # ------------------------------------------------------------------
    # introspection helpers (tests, benches, routers)
    # ------------------------------------------------------------------
    def reliable_stats(self, session: str):
        return self._receiver.stats(session)

    def guaranteed_pending(self) -> List[LedgerEntry]:
        return self._gpub.pending()

    def sender_retransmissions(self) -> int:
        return self._sender.retransmissions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BusDaemon {self.session} clients={len(self.clients)}>"
