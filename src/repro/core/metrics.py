"""The unified metrics registry: the bus describes itself with data.

The paper's deepest claim is that the bus is its own application —
infrastructure state should be self-describing objects addressable by
subject, which is exactly how its bus browser and system-management
tools work (Section 5.1).  Before this module the repro contradicted
that: telemetry was a pile of hand-rolled dicts (``wire_stats()`` here,
``Router.stats()`` there, module globals in :mod:`repro.core.wire`) with
no common shape and no way to observe a running bus *over the bus*.

This module is the common shape.  Three instrument flavours:

* :class:`Counter` — a monotonic event count.  The hot path increments
  with a plain attribute add (``counter.value += 1``): no method call,
  no lock, no allocation.  Snapshot-time cost is paid at snapshot time.
* :class:`Gauge` — a point-in-time level.  Either set directly
  (``gauge.value = depth``) or given a ``source`` callable that is
  evaluated lazily at snapshot time (queue depths, table sizes).
* :class:`Histogram` — fixed-bucket distribution (service times,
  delivery latencies).  ``observe`` is a short linear scan over a
  handful of bucket bounds plus two adds.

A :class:`MetricsRegistry` names instruments hierarchically
(``daemon.<host>.wire.unresolved_dropped``, ``flow.<queue>.drops``) and
renders the whole family as plain self-describing dicts via
:meth:`~MetricsRegistry.snapshot` — ready to marshal with
:mod:`repro.objects` and publish on the reserved ``_bus.stat.*``
subjects (see :class:`MetricsPublisher` and
:meth:`repro.core.daemon.BusDaemon.publish_stat_bytes`).

Two properties the telemetry plane guarantees, both test-asserted:

1. **Metrics never change behavior.**  Instruments are written with
   plain attribute arithmetic and read only at snapshot time, so a run
   with stat publishing on is bit-identical (deliveries, traces,
   counters) to the same seed with it off.
2. **Stat traffic never echo-amplifies.**  Stat envelopes are stamped
   ``seq == 0`` and excluded from the counters they would perturb; the
   publisher's own stat queue and stat socket are deliberately *not*
   registry instruments (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Union)

from ..sim.kernel import PeriodicTimer, Simulator

__all__ = ["Counter", "DEFAULT_BUCKETS", "Gauge", "Histogram",
           "MetricsPublisher", "MetricsRegistry", "MetricsScope"]


class Counter:
    """A monotonically increasing event count.

    Hot paths write ``counter.value += 1`` directly — one attribute add,
    nothing allocated.  ``inc`` exists for call sites that prefer a
    method (or add more than one).
    """

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str = ""):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time level: queue depth, table size, high watermark.

    Set ``gauge.value`` directly from the owning component, or construct
    with a ``source`` callable — then the gauge reads its owner lazily,
    only when a snapshot is actually taken (zero steady-state cost).
    """

    __slots__ = ("name", "value", "source")
    kind = "gauge"

    def __init__(self, name: str = "",
                 source: Optional[Callable[[], Union[int, float]]] = None):
        self.name = name
        self.value: Union[int, float] = 0
        self.source = source

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def read(self) -> Union[int, float]:
        return self.source() if self.source is not None else self.value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.read()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.read()}>"


#: Default histogram bucket upper bounds (seconds) — spans the simulated
#: latencies this repro produces, from LAN microseconds to WAN seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


class Histogram:
    """A fixed-bucket distribution (cumulative-style at snapshot time).

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last bound.
    ``observe`` is a linear scan — with the handful of buckets used here
    that is cheaper than binary search and allocates nothing.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum")
    kind = "histogram"

    def __init__(self, name: str = "",
                 bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must ascend: {bounds!r}")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "histogram", "bounds": list(self.bounds),
                "counts": list(self.bucket_counts),
                "count": self.count, "sum": self.sum}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count}>"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named family of instruments with one snapshot surface.

    Names are hierarchical dot paths (``daemon.node00.published``,
    ``flow.outbound[node00].dropped_oldest``); :meth:`scope` builds a
    prefixing view so components need not know where they live in the
    hierarchy.  Lookups are get-or-create: asking twice for one name
    returns the *same* instrument, which is how a restarted component
    re-finds counters that are documented to survive restarts — and why
    components whose counters are documented *volatile* call
    :meth:`drop_prefix` when they restart.

    ``stub=True`` builds a degenerate registry for overhead ablation:
    every request returns a shared throwaway instrument of the right
    type (increments still run, so the hot-path instruction count is
    identical) but nothing is registered and :meth:`snapshot` is empty.
    The ``metrics_overhead`` bench compares a stubbed bus against a real
    one to bound what full instrumentation costs.
    """

    def __init__(self, stub: bool = False):
        self.stub = stub
        self._instruments: Dict[str, Instrument] = {}
        if stub:
            self._stub_counter = Counter("_stub")
            self._stub_gauge = Gauge("_stub")
            self._stub_histogram = Histogram("_stub")

    # ------------------------------------------------------------------
    # get-or-create
    # ------------------------------------------------------------------
    def _get(self, name: str, kind: type) -> Optional[Instrument]:
        instrument = self._instruments.get(name)
        if instrument is None:
            return None
        if not isinstance(instrument, kind):
            raise ValueError(
                f"metric {name!r} is a {type(instrument).kind}, "
                f"not a {kind.kind}")
        return instrument

    def counter(self, name: str) -> Counter:
        if self.stub:
            return self._stub_counter
        instrument = self._get(name, Counter)
        if instrument is None:
            instrument = Counter(name)
            self._instruments[name] = instrument
        return instrument

    def gauge(self, name: str,
              source: Optional[Callable[[], Union[int, float]]] = None
              ) -> Gauge:
        if self.stub:
            return self._stub_gauge
        instrument = self._get(name, Gauge)
        if instrument is None:
            instrument = Gauge(name, source)
            self._instruments[name] = instrument
        elif source is not None:
            # a recreated owner re-points the gauge at its live state
            instrument.source = source
        return instrument

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        if self.stub:
            return self._stub_histogram
        instrument = self._get(name, Histogram)
        if instrument is None:
            instrument = Histogram(name, bounds)
            self._instruments[name] = instrument
        return instrument

    def register(self, name: str, instrument: Instrument) -> Instrument:
        """Adopt an externally constructed instrument under ``name``.

        Components that must work detached (a :class:`WanLink` built
        before any router exists) create their instruments standalone
        and register them when a registry appears.  Registering the same
        object twice is a no-op; a *different* object under a taken name
        is an error — two components may not share a name by accident.
        """
        if self.stub:
            return instrument
        existing = self._instruments.get(name)
        if existing is instrument:
            return instrument
        if existing is not None:
            raise ValueError(f"metric {name!r} is already registered")
        instrument.name = name
        self._instruments[name] = instrument
        return instrument

    # ------------------------------------------------------------------
    # views and maintenance
    # ------------------------------------------------------------------
    def scope(self, prefix: str) -> "MetricsScope":
        """A view that prefixes every name with ``prefix.``."""
        return MetricsScope(self, prefix)

    def names(self) -> List[str]:
        return list(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def drop_prefix(self, prefix: str) -> int:
        """Unregister every instrument under ``prefix`` (volatile state:
        a restarted daemon's per-session reliable counters must start
        from zero, like the sessions themselves).  Returns the count."""
        doomed = [name for name in self._instruments
                  if name.startswith(prefix)]
        for name in doomed:
            del self._instruments[name]
        return len(doomed)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """The whole registry as plain self-describing dicts, keyed by
        instrument name — directly marshallable by :mod:`repro.objects`
        for publication on ``_bus.stat.*`` subjects."""
        return {name: instrument.snapshot()
                for name, instrument in self._instruments.items()}

    def __len__(self) -> int:
        return len(self._instruments)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flavor = "stub " if self.stub else ""
        return f"<MetricsRegistry {flavor}{len(self._instruments)} instruments>"


class MetricsScope:
    """A prefixing view over a registry (``scope("daemon.node00")``)."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str):
        self._registry = registry
        self._prefix = prefix

    @property
    def prefix(self) -> str:
        return self._prefix

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str,
              source: Optional[Callable[[], Union[int, float]]] = None
              ) -> Gauge:
        return self._registry.gauge(f"{self._prefix}.{name}", source)

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._registry.histogram(f"{self._prefix}.{name}", bounds)

    def register(self, name: str, instrument: Instrument) -> Instrument:
        return self._registry.register(f"{self._prefix}.{name}", instrument)

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self._registry, f"{self._prefix}.{prefix}")


class MetricsPublisher:
    """Periodically renders a registry and hands the snapshot to a sink.

    The sink (``publish``) is typically
    :meth:`repro.core.daemon.BusDaemon.publish_stats` — which wraps the
    snapshot in a self-describing payload and broadcasts it on the
    reserved ``_bus.stat.<host>.*`` subject space, flow-controlled by
    the daemon's bounded stat queue.  The publisher itself only owns the
    timer; what "publish" means (and how its self-traffic is kept out of
    the counters) is the sink's contract.
    """

    def __init__(self, sim: Simulator, registry: MetricsRegistry,
                 publish: Callable[[Dict[str, Dict[str, Any]]], None],
                 interval: float, name: str = "metrics.publish"):
        if interval <= 0:
            raise ValueError(f"interval must be positive (got {interval})")
        self.registry = registry
        self.interval = interval
        self._publish = publish
        #: snapshots taken so far — a plain attribute, deliberately NOT a
        #: registry instrument: the publisher must not publish stats
        #: about its own publishing (the echo-amplification guard)
        self.snapshots_published = 0
        self._timer = PeriodicTimer(sim, interval, self._fire, name=name)

    def _fire(self) -> None:
        self.snapshots_published += 1
        self._publish(self.registry.snapshot())

    def stop(self) -> None:
        self._timer.stop()

    @property
    def stopped(self) -> bool:
        return self._timer.stopped


def sum_counters(snapshot: Dict[str, Dict[str, Any]],
                 suffixes: Iterable[str]) -> int:
    """Sum every counter in ``snapshot`` whose name ends with one of
    ``suffixes`` — the aggregation primitive ``bus_top()``-style views
    are built from (see :mod:`repro.apps.bus_browser`)."""
    ends = tuple(suffixes)
    return sum(entry.get("value", 0)
               for name, entry in snapshot.items()
               if entry.get("type") == "counter" and name.endswith(ends))


__all__.append("sum_counters")
