"""Outbound message batching.

The Appendix: "The Information Bus has a batch parameter that increases
throughput by delaying small messages, and gathering them together."
Figures 6-8 were measured with batching ON; Figure 5 (latency) with it
OFF, "to avoid intentionally delaying the publications".

The :class:`Batcher` is a pipeline stage over a shared
:class:`~repro.core.flow.BoundedQueue`: envelopes admitted by the
daemon's flow-control layer accumulate in the queue until either the
payload reaches ``batch_bytes``, the count reaches ``max_messages``, or
``batch_delay`` elapses since the first queued envelope — then one
batch (at most ``max_messages`` envelopes) is handed to the flush
callback, which packs it into one datagram.  A disabled batcher passes
every envelope through immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.kernel import Event, Simulator
from .flow import BoundedQueue, POLICY_BLOCK
from .message import Envelope

__all__ = ["Batcher", "BatchConfig"]


@dataclass
class BatchConfig:
    """Batching tunables.  ``enabled=False`` is a pure pass-through."""

    enabled: bool = False
    #: Flush once the queued payload bytes reach this threshold (chosen to
    #: fill one MTU-sized datagram).
    batch_bytes: int = 1400
    #: Flush this long after the first envelope was queued, even if small.
    batch_delay: float = 0.002
    #: Never hold more than this many envelopes regardless of size.
    max_messages: int = 64


class Batcher:
    """The gather stage of one daemon's outbound pipeline.

    ``queue`` is the stage buffer; the daemon hands in a queue wired to
    its tracer so gather depth shares the ``flow.*`` stats surface.  When
    none is given (unit tests, standalone use) the batcher makes its own.
    The queue never sheds: :meth:`add` flushes at the thresholds, so
    depth stays below ``max_messages`` by construction.
    """

    def __init__(self, sim: Simulator, config: BatchConfig,
                 flush: Callable[[List[Envelope]], None],
                 queue: Optional[BoundedQueue] = None):
        self.sim = sim
        self.config = config
        self._flush_cb = flush
        self.queue = queue if queue is not None else BoundedQueue(
            "batch.gather", capacity=max(config.max_messages, 1),
            policy=POLICY_BLOCK)
        self._queued_bytes = 0
        self._timer: Optional[Event] = None
        self.batches_flushed = 0
        self.messages_batched = 0

    def add(self, envelope: Envelope) -> None:
        """Queue ``envelope``; may flush synchronously on threshold."""
        if not self.config.enabled:
            self.batches_flushed += 1
            self.messages_batched += 1
            self._flush_cb([envelope])
            return
        self.queue.offer(envelope)
        self._queued_bytes += envelope.size
        if (self._queued_bytes >= self.config.batch_bytes
                or len(self.queue) >= self.config.max_messages):
            self.flush()
        elif self._timer is None:
            self._timer = self.sim.schedule(self.config.batch_delay,
                                            self.flush, name="batch.delay")

    def flush(self) -> None:
        """Emit one batch of everything queued.  Safe to call when empty.

        The queue is drained *before* the callback runs, so a re-entrant
        publish from inside a flush callback lands in the next batch
        rather than the one being emitted.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self.queue:
            return
        batch = self.queue.drain(self.config.max_messages)
        # running counter: subtract what left rather than re-summing the
        # remaining queue (that re-walk was O(backlog) per flush).  The
        # queue never sheds, so drains and :meth:`shutdown` are the only
        # exits and the counter cannot drift.
        for envelope in batch:
            self._queued_bytes -= envelope.size
        self.batches_flushed += 1
        self.messages_batched += len(batch)
        self._flush_cb(batch)
        if self.queue and self._timer is None:
            # a re-entrant add (or an oversized drain remainder) left
            # envelopes behind; they get their own delay window
            self._timer = self.sim.schedule(self.config.batch_delay,
                                            self.flush, name="batch.delay")

    def shutdown(self) -> None:
        """Drop queued envelopes and cancel the timer (host crash)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.queue.clear()
        self._queued_bytes = 0

    @property
    def pending(self) -> int:
        return len(self.queue)
