"""Outbound message batching.

The Appendix: "The Information Bus has a batch parameter that increases
throughput by delaying small messages, and gathering them together."
Figures 6-8 were measured with batching ON; Figure 5 (latency) with it
OFF, "to avoid intentionally delaying the publications".

The :class:`Batcher` gathers envelopes until either the accumulated
payload reaches ``batch_bytes`` or ``batch_delay`` elapses since the
first queued envelope, then hands the batch to its flush callback (which
packs them into one datagram).  A disabled batcher passes every envelope
through immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.kernel import Event, Simulator
from .message import Envelope

__all__ = ["Batcher", "BatchConfig"]


@dataclass
class BatchConfig:
    """Batching tunables.  ``enabled=False`` is a pure pass-through."""

    enabled: bool = False
    #: Flush once the queued payload bytes reach this threshold (chosen to
    #: fill one MTU-sized datagram).
    batch_bytes: int = 1400
    #: Flush this long after the first envelope was queued, even if small.
    batch_delay: float = 0.002
    #: Never hold more than this many envelopes regardless of size.
    max_messages: int = 64


class Batcher:
    """Gathers envelopes into batches for one daemon's outbound path."""

    def __init__(self, sim: Simulator, config: BatchConfig,
                 flush: Callable[[List[Envelope]], None]):
        self.sim = sim
        self.config = config
        self._flush_cb = flush
        self._queue: List[Envelope] = []
        self._queued_bytes = 0
        self._timer: Optional[Event] = None
        self.batches_flushed = 0
        self.messages_batched = 0

    def add(self, envelope: Envelope) -> None:
        """Queue ``envelope``; may flush synchronously on threshold."""
        if not self.config.enabled:
            self._flush_cb([envelope])
            self.batches_flushed += 1
            self.messages_batched += 1
            return
        self._queue.append(envelope)
        self._queued_bytes += envelope.size
        if (self._queued_bytes >= self.config.batch_bytes
                or len(self._queue) >= self.config.max_messages):
            self.flush()
        elif self._timer is None:
            self._timer = self.sim.schedule(self.config.batch_delay,
                                            self.flush, name="batch.delay")

    def flush(self) -> None:
        """Emit everything queued.  Safe to call when empty."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._queue:
            return
        batch, self._queue = self._queue, []
        self._queued_bytes = 0
        self.batches_flushed += 1
        self.messages_batched += len(batch)
        self._flush_cb(batch)

    def shutdown(self) -> None:
        """Drop queued envelopes and cancel the timer (host crash)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._queue.clear()
        self._queued_bytes = 0

    @property
    def pending(self) -> int:
        return len(self._queue)
