"""The Information Bus core: subject-based pub/sub, QoS, discovery, RMI,
and WAN routers."""

from .subjects import (BadSubjectError, SubjectTrie, is_admin_subject,
                       is_valid_pattern, is_valid_subject, split_subject,
                       subject_matches, validate_pattern, validate_subject)
from .message import Envelope, MessageInfo, Packet, PacketKind, QoS
from .wire import (CorruptFrame, EnvelopeView, FrameDigest, StringTable,
                   UnresolvedStringId, UnresolvedTypeId,
                   decode_packet, encode_envelope, encode_packet,
                   envelope_wire_size, packet_wire_size, read_digest)
from .typeplane import PeerTypeView, TypeTable
from .flow import (Admission, BoundedBuffer, BoundedQueue, FlowConfig,
                   FlowStats, OVERFLOW_POLICIES, POLICY_BLOCK,
                   POLICY_DROP_NEWEST, POLICY_DROP_OLDEST, PublishReceipt)
from .reliable import (ReliableConfig, ReliableReceiver, ReliableSender,
                       SessionStats)
from .metrics import (Counter, Gauge, Histogram, MetricsPublisher,
                      MetricsRegistry, MetricsScope, sum_counters)
from .batching import BatchConfig, Batcher
from .guaranteed import GuaranteedConsumer, GuaranteedPublisher, LedgerEntry
from .daemon import (ADVERT_SUBJECT, DAEMON_PORT, STAT_PORT,
                     STAT_SUBJECT_PREFIX, BusConfig, BusDaemon,
                     BusDownError)
from .sharding import ShardMap, ShardedDaemon
from .client import BusClient, Subscription
from .bus import InformationBus
from .discovery import DiscoveredService, Inquiry, Responder, inquiry_subject
from .rmi import (ExactlyOnceRmiClient, RmiClient, RmiError, RmiServer,
                  ServerGroup)
from .namespace import FAB_SENSOR_SCHEME, NEWS_SCHEME, SubjectScheme
from .router import Router, RouterLeg, WanLink

__all__ = [
    "ADVERT_SUBJECT", "Admission", "BadSubjectError", "BatchConfig",
    "Batcher", "BoundedBuffer", "BoundedQueue",
    "BusClient", "BusConfig", "BusDaemon", "BusDownError", "CorruptFrame",
    "Counter", "DAEMON_PORT", "DiscoveredService", "Envelope",
    "EnvelopeView", "FrameDigest", "read_digest", "Gauge",
    "Histogram", "MetricsPublisher", "MetricsRegistry", "MetricsScope",
    "STAT_PORT", "STAT_SUBJECT_PREFIX", "sum_counters",
    "FlowConfig", "FlowStats", "OVERFLOW_POLICIES", "POLICY_BLOCK",
    "POLICY_DROP_NEWEST", "POLICY_DROP_OLDEST", "PublishReceipt",
    "GuaranteedConsumer", "GuaranteedPublisher", "InformationBus",
    "Inquiry", "LedgerEntry", "MessageInfo", "Packet",
    "ExactlyOnceRmiClient", "FAB_SENSOR_SCHEME", "NEWS_SCHEME",
    "PacketKind", "QoS", "ReliableConfig", "SubjectScheme",
    "ReliableReceiver", "decode_packet", "encode_envelope",
    "encode_packet", "envelope_wire_size", "packet_wire_size",
    "ReliableSender", "Responder", "RmiClient", "RmiError", "RmiServer",
    "PeerTypeView", "Router", "RouterLeg", "ServerGroup", "SessionStats",
    "ShardMap", "ShardedDaemon",
    "StringTable", "SubjectTrie", "Subscription", "TypeTable",
    "UnresolvedStringId", "UnresolvedTypeId", "WanLink",
    "inquiry_subject", "is_admin_subject",
    "is_valid_pattern", "is_valid_subject", "split_subject",
    "subject_matches", "validate_pattern", "validate_subject",
]
