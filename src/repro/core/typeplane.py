"""The session type plane: define-once-per-session type metadata.

The paper's P2 makes objects self-describing on the wire; the naive
rendering (``marshal.encode(..., inline_types=True)``) prepends the full
type-description closure to *every* payload, so a million news stories
carry a million identical copies of the ``story`` schema.  This module
applies the same discipline the string table (PR 6) applies to header
strings one layer up, to type metadata:

* The publishing daemon keeps one :class:`TypeTable` per session.  The
  marshaller (:func:`repro.objects.marshal.encode_typed`) interns every
  type in the payload's dependency closure and writes objects with the
  ``O`` tag — a dense varint id instead of a type-name string and no
  ``M`` metadata block.
* The wire layer rides the matching definitions in-band, in a typedef
  region on the frames themselves: a DATA frame defines ids on their
  first wire appearance; a RETRANS frame re-defines *all* ids its
  envelopes reference, so repairs and late joiners decode with zero
  receiver state (exactly the string-table rules).
* Receivers accumulate learned ``{id: description-bytes}`` maps per
  session; :class:`PeerTypeView` wraps one such map as the
  ``type_resolver`` the marshaller uses to register types on first
  sight.  An unknown id is a decode failure → drop + NACK arming via
  :class:`repro.core.wire.UnresolvedTypeId` — never a crash.

Ids are assigned to descriptor *fingerprints*
(:meth:`TypeDescriptor.fingerprint`), not names: a TDL ``defclass``
that changes a type's shape mid-session hashes differently, takes a
fresh id, and is re-defined in-band on next use — the paper's dynamic
evolution (Section 5.2) with none of the per-message freight.

Definitions travel as opaque marshalled ``describe()`` dicts (plain
containers — no object tags), so the wire layer never interprets them
and the decode memo can validate them by byte equality.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..objects.marshal import decode as _marshal_decode
from ..objects.marshal import encode as _marshal_encode
from ..objects.types import TypeDescriptor

__all__ = ["TypeTable", "PeerTypeView"]


class TypeTable:
    """Sender-side session type table: fingerprint → dense varint id.

    ``intern`` assigns ids in first-use order at marshal time;
    ``pending_defs`` is consulted later, at *packet encode* time, so an
    envelope shed by outbound admission can never consume a first-use
    definition that then never reaches the wire.

    Also implements the resolver protocol (``description``/``named``)
    for deliveries that loop back to clients on the publishing daemon
    itself.
    """

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}          # fingerprint -> id
        self._descriptions: List[Dict] = []     # id -> describe() dict
        self._blobs: List[bytes] = []           # id -> marshalled dict
        self._names: Dict[str, int] = {}        # name -> latest id
        #: ids whose definition has been written into a DATA frame
        self.wire_defined: set = set()

    def __len__(self) -> int:
        return len(self._blobs)

    def intern(self, descriptor: TypeDescriptor) -> int:
        """Id for ``descriptor``, assigning the next dense id on first use."""
        fp = descriptor.fingerprint()
        tid = self._ids.get(fp)
        if tid is not None:
            return tid
        tid = len(self._blobs)
        desc = descriptor.describe()
        self._ids[fp] = tid
        self._descriptions.append(desc)
        self._blobs.append(_marshal_encode(desc))
        self._names[desc["name"]] = tid
        return tid

    def blob(self, tid: int) -> bytes:
        """Wire bytes of the definition for ``tid``."""
        return self._blobs[tid]

    def pending_defs(self, refs) -> List[int]:
        """The subset of ``refs`` not yet defined on the wire, marking
        them defined.  Called exactly once per DATA frame encode."""
        fresh = [tid for tid in refs if tid not in self.wire_defined]
        self.wire_defined.update(fresh)
        return fresh

    # -- resolver protocol (local loop-back deliveries) -----------------
    def description(self, tid: int) -> Optional[Dict]:
        if 0 <= tid < len(self._descriptions):
            return self._descriptions[tid]
        return None

    def named(self, name: str) -> Optional[Dict]:
        tid = self._names.get(name)
        return None if tid is None else self._descriptions[tid]


class PeerTypeView:
    """Receiver-side resolver over one session's learned typedef blobs.

    Wraps the ``{id: definition-bytes}`` map the wire layer accumulates
    (and keeps mutating) for a peer session, decoding definitions
    lazily: a daemon that skips every frame of a feed via the interest
    gate still learns the raw blobs, but never pays to parse them.
    """

    def __init__(self, raw: Dict[int, bytes]) -> None:
        self._raw = raw
        self._described: Dict[int, Dict] = {}

    def description(self, tid: int) -> Optional[Dict]:
        desc = self._described.get(tid)
        if desc is not None:
            return desc
        blob = self._raw.get(tid)
        if blob is None:
            return None
        desc = _marshal_decode(blob, None)
        self._described[tid] = desc
        return desc

    def named(self, name: str) -> Optional[Dict]:
        """Latest-defined description carrying ``name`` (highest id wins:
        under mid-session redefinition the newest shape is the one a
        dependency reference means)."""
        best: Optional[Tuple[int, Dict]] = None
        for tid in self._raw:
            desc = self.description(tid)
            if desc is not None and desc.get("name") == name:
                if best is None or tid > best[0]:
                    best = (tid, desc)
        return None if best is None else best[1]
