"""Dynamic discovery over publish/subscribe (Section 3.2).

    "One participant publishes 'Who's out there?' under a subject.  The
    other participants publish 'I am' and other information describing
    their state, if they serve the subject in question. ... We are
    effectively using the network itself as a name service."

No name server, no boot-strapping: a :class:`Responder` subscribes to the
inquiry subject derived from a service subject; an :class:`Inquiry`
publishes the question, collects "I am" answers for a window, and hands
the respondent descriptions to its callback.  Both messages are ordinary
bus publications, preserving P4 (anonymous communication).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from .client import BusClient, Subscription

__all__ = ["DiscoveredService", "Inquiry", "Responder", "inquiry_subject"]

_inquiry_ids = itertools.count(1)

#: Prefix under which discovery traffic for a service subject travels.
_DISCOVERY_PREFIX = "_discovery"


def inquiry_subject(service_subject: str) -> str:
    """The well-known subject on which a service's discovery runs."""
    return f"{_DISCOVERY_PREFIX}.{service_subject}"


@dataclass
class DiscoveredService:
    """One "I am" answer."""

    service_subject: str
    responder: str          # client id of the respondent
    info: Dict[str, Any]    # service-specific state description

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "DiscoveredService":
        return cls(payload["service"], payload["responder"],
                   dict(payload.get("info", {})))


class Responder:
    """Answers "Who's out there?" for one service subject.

    ``info`` may be a dict or a zero-argument callable returning one —
    the paper notes respondents describe "their state", which changes.
    """

    def __init__(self, client: BusClient, service_subject: str,
                 info: Any = None,
                 should_answer: Optional[Callable[[], bool]] = None):
        self.client = client
        self.service_subject = service_subject
        self._info = info
        self._should_answer = should_answer
        self.answered = 0
        self._subscription: Optional[Subscription] = client.subscribe(
            inquiry_subject(service_subject), self._on_inquiry)

    def _current_info(self) -> Dict[str, Any]:
        info = self._info() if callable(self._info) else self._info
        return dict(info or {})

    def _on_inquiry(self, subject: str, payload: Any, _info) -> None:
        if not isinstance(payload, dict) or payload.get("kind") != "who":
            return
        if self._should_answer is not None and not self._should_answer():
            return   # e.g. a standby member of an exclusive server group
        self.answered += 1
        self.client.publish(subject, {
            "kind": "iam",
            "inquiry_id": payload.get("inquiry_id"),
            "service": self.service_subject,
            "responder": self.client.id,
            "info": self._current_info(),
        })

    def stop(self) -> None:
        if self._subscription is not None:
            self.client.unsubscribe(self._subscription)
            self._subscription = None


class Inquiry:
    """One "Who's out there?" round.

    Collects responses for ``window`` simulated seconds, then invokes
    ``on_complete(list_of_discovered)`` exactly once.  If ``enough`` is
    given, completes early once that many respondents have answered.
    """

    def __init__(self, client: BusClient, service_subject: str,
                 on_complete: Callable[[List[DiscoveredService]], None],
                 window: float = 0.25, enough: Optional[int] = None):
        self.client = client
        self.service_subject = service_subject
        self.inquiry_id = f"{client.id}?{next(_inquiry_ids)}"
        self._on_complete = on_complete
        self._enough = enough
        self._responses: List[DiscoveredService] = []
        self._seen: set = set()
        self._done = False
        subject = inquiry_subject(service_subject)
        self._subscription = client.subscribe(subject, self._on_message)
        client.publish(subject, {"kind": "who",
                                 "inquiry_id": self.inquiry_id,
                                 "service": service_subject})
        self._timeout = client.sim.schedule(window, self._complete,
                                            name="discovery.window")

    @property
    def responses(self) -> List[DiscoveredService]:
        return list(self._responses)

    def _on_message(self, subject: str, payload: Any, _info) -> None:
        if self._done or not isinstance(payload, dict):
            return
        if payload.get("kind") != "iam":
            return
        if payload.get("inquiry_id") != self.inquiry_id:
            return   # an answer to someone else's (or an older) inquiry
        responder = payload.get("responder")
        if responder in self._seen:
            return
        self._seen.add(responder)
        self._responses.append(DiscoveredService.from_payload(payload))
        if self._enough is not None and len(self._responses) >= self._enough:
            self._complete()

    def _complete(self) -> None:
        if self._done:
            return
        self._done = True
        self._timeout.cancel()
        self.client.unsubscribe(self._subscription)
        self._on_complete(list(self._responses))

    def cancel(self) -> None:
        """Abandon the inquiry without invoking the callback."""
        if self._done:
            return
        self._done = True
        self._timeout.cancel()
        self.client.unsubscribe(self._subscription)
