"""The reliable-delivery layer: "UDP packets in combination with a
retransmission protocol" (Section 3.1).

Semantics implemented (quoting the paper):

    "Under normal operation, if a sender and receiver do not crash and
    the network does not suffer a long-term partition, then messages are
    delivered exactly once in the order sent by the same sender; messages
    from different senders are not ordered.  If the sender or receiver
    crashes, or there is a network partition, then messages will be
    delivered at most once."

Mechanism: every daemon stamps outgoing envelopes with a per-*session*
sequence number (a session is one incarnation of a daemon; it dies with a
crash, so sequence state is never resurrected ambiguously).  Receivers
deliver in sequence order per session, buffer out-of-order arrivals, and
send unicast NACKs to repair gaps from the sender's bounded retention
buffer.  Idle senders broadcast heartbeats so a lost *final* message is
still detected.  A gap that cannot be repaired after ``nack_max``
attempts (sender crashed, retention expired, long partition) is skipped —
degrading to at-most-once exactly as specified.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.kernel import Event, Simulator
from ..sim.trace import Tracer
from .flow import BoundedBuffer, POLICY_DROP_NEWEST, POLICY_DROP_OLDEST
from .message import Envelope
from .metrics import MetricsRegistry

__all__ = ["ReliableConfig", "ReliableSender", "ReliableReceiver",
           "SessionStats"]


@dataclass
class ReliableConfig:
    """Tunables for the retransmission protocol."""

    #: Envelopes a sender retains for NACK repair (count bound).
    retention: int = 4096
    #: Optional age bound: envelopes older than this are unrepairable
    #: even if the count bound would keep them (classic 60-second
    #: reliability windows work this way).  None = count bound only.
    retention_seconds: Optional[float] = None
    #: Delay before a detected gap triggers the first NACK (lets simple
    #: reordering resolve itself without traffic).
    nack_delay: float = 0.005
    #: NACK retries before the receiver gives up and skips the gap.
    #: Generous because a saturated sender serializes the repair behind
    #: its outbound data queue - impatience turns congestion into loss.
    nack_max: int = 20
    #: Backoff multiplier between NACK attempts.
    nack_backoff: float = 2.0
    #: Ceiling on the inter-NACK delay once backoff has grown.
    nack_backoff_cap: float = 0.5
    #: Idle-sender heartbeat period.
    heartbeat_interval: float = 0.25
    #: Out-of-order envelopes a receiver buffers per session.
    receive_buffer: int = 1024
    #: What a full reorder buffer sheds: ``drop-newest`` sheds whichever
    #: envelope carries the highest sequence number (incoming or
    #: buffered — gap-fillers are always admitted), ``drop-oldest``
    #: evicts the lowest-sequence buffered envelope (preferring fresh
    #: data; the evictee stays NACK-repairable from sender retention).
    #: A receiver cannot block a datagram network, so ``block`` is
    #: treated as ``drop-newest``.  Every shed is counted in
    #: :attr:`SessionStats.overflow_dropped` and traced as ``flow.drop``.
    overflow_policy: str = POLICY_DROP_NEWEST


class ReliableSender:
    """Per-daemon send side: sequence stamping, retention, NACK service.

    The retention window is a :class:`~repro.core.flow.BoundedBuffer`
    stage: stamping inserts, the count bound rolls the oldest entry out
    (observable in ``retention_stats``), and the optional age bound
    expires from the front.  ``now`` is a clock callable used for the
    time-based bound; pass ``sim.now`` via a lambda (or leave the
    default for count-only retention).
    """

    def __init__(self, session: str, config: ReliableConfig,
                 now: Callable[[], float] = lambda: 0.0,
                 metrics: Optional[MetricsRegistry] = None):
        self.session = session
        self.config = config
        self.now = now
        self.next_seq = 1
        # per-sender envelope identities: a module-global counter would
        # leak across runs and (as a wire varint) perturb packet sizes
        self._envelope_ids = itertools.count(1)
        # seq -> (envelope, stamp time); drop-oldest IS the rolling
        # repair window, so the buffer's eviction counters double as
        # "how much repairability the retention bound cost us"
        self._retention = BoundedBuffer(
            f"reliable.retention[{session}]",
            capacity=max(config.retention, 1), policy=POLICY_DROP_OLDEST,
            metrics=metrics)
        if metrics is None:
            metrics = MetricsRegistry()
        self._retransmissions = metrics.counter(
            f"reliable.send[{session}].retransmissions")

    @property
    def last_seq(self) -> int:
        return self.next_seq - 1

    @property
    def retransmissions(self) -> int:
        """Envelopes re-sent to serve NACK repairs (an int view over
        the ``reliable.send[<session>].retransmissions`` counter)."""
        return self._retransmissions.value

    @property
    def retention_stats(self):
        """The retention window's :class:`~repro.core.flow.FlowStats`."""
        return self._retention.stats

    def stamp(self, envelope: Envelope) -> Envelope:
        """Assign the next sequence number and retain for repair."""
        envelope.session = self.session
        envelope.seq = self.next_seq
        if envelope.envelope_id == 0:
            envelope.envelope_id = next(self._envelope_ids)
        self.next_seq += 1
        self._retention.insert(envelope.seq, (envelope, self.now()))
        self._expire()
        return envelope

    def forget(self, seq: int) -> None:
        """Drop ``seq`` from retention (its envelope was shed upstream
        before ever reaching the wire; NACKs must not resurrect it)."""
        self._retention.pop(seq)

    def _expire(self) -> None:
        limit = self.config.retention_seconds
        if limit is None:
            return
        horizon = self.now() - limit
        while self._retention:
            _seq, (_, stamped) = self._retention.oldest()
            if stamped >= horizon:
                break
            self._retention.pop_oldest()

    def retained(self) -> int:
        """How many envelopes are currently repairable."""
        self._expire()
        return len(self._retention)

    def repair(self, first: int, last: int) -> List[Envelope]:
        """Envelopes for a NACKed range still present in retention."""
        self._expire()
        found = []
        for seq in range(first, last + 1):
            entry = self._retention.get(seq)
            if entry is not None:
                found.append(entry[0])
        self._retransmissions.value += len(found)
        return found


class SessionStats:
    """Receiver-side accounting for one remote session (benches, tests).

    A view over ``reliable.recv[<session>].<field>`` instruments in the
    receiving daemon's :class:`~repro.core.metrics.MetricsRegistry`
    (or a detached private registry for standalone receivers).  The
    int-returning properties keep the historical dataclass read surface.
    """

    _FIELDS = ("delivered", "duplicates", "buffered", "nacks_sent",
               "gaps_skipped", "messages_lost", "overflow_dropped")

    __slots__ = tuple(f"_{name}" for name in _FIELDS)

    def __init__(self, session: str = "",
                 metrics: Optional[MetricsRegistry] = None):
        if metrics is None:
            metrics = MetricsRegistry()
        scope = metrics.scope(f"reliable.recv[{session}]")
        for name in self._FIELDS:
            setattr(self, f"_{name}", scope.counter(name))

    @property
    def delivered(self) -> int:
        return self._delivered.value

    @property
    def duplicates(self) -> int:
        return self._duplicates.value

    @property
    def buffered(self) -> int:
        return self._buffered.value

    @property
    def nacks_sent(self) -> int:
        return self._nacks_sent.value

    @property
    def gaps_skipped(self) -> int:
        return self._gaps_skipped.value

    @property
    def messages_lost(self) -> int:
        return self._messages_lost.value

    @property
    def overflow_dropped(self) -> int:
        """Envelopes shed because the reorder buffer was full (the
        policy-driven bound; a shed buffered envelope may still be
        NACK-repaired later, so this is pressure, not necessarily loss).
        """
        return self._overflow_dropped.value


class _SessionState:
    __slots__ = ("session", "expected", "buffer", "nack_event",
                 "nack_attempts", "known_last", "sync_event", "stats")

    def __init__(self, session: str,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.session = session
        self.expected: Optional[int] = None
        self.buffer: Dict[int, Tuple[Envelope, bool]] = {}
        self.nack_event: Optional[Event] = None
        self.nack_attempts = 0
        #: highest sequence number known to exist (data or heartbeat)
        self.known_last = 0
        #: pending end-of-sync-window event (first contact, seq > 1)
        self.sync_event: Optional[Event] = None
        self.stats = SessionStats(session, metrics)

    def last_missing(self) -> int:
        """End of the first contiguous missing run (minimal NACK range)."""
        if self.buffer:
            return min(self.buffer) - 1
        return self.known_last

    def has_gap(self) -> bool:
        return (self.expected is not None
                and self.expected <= self.last_missing())


class ReliableReceiver:
    """Per-daemon receive side: ordering, dedupe, gap repair, give-up.

    ``deliver`` is called exactly once per delivered envelope, in per-
    session sequence order.  ``send_nack(session, first, last)`` must
    transmit a NACK packet toward the session's daemon.
    """

    def __init__(self, sim: Simulator, config: ReliableConfig,
                 deliver: Callable[[Envelope, bool], None],
                 send_nack: Callable[[str, int, int], None],
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.sim = sim
        self.config = config
        self._deliver = deliver
        self._send_nack = send_nack
        self._tracer = tracer
        self._metrics = metrics
        self._sessions: Dict[str, _SessionState] = {}
        #: when this receiver came up; sessions born after this are fully
        #: recoverable from seq 1 (we must have been within earshot)
        self.started_at = sim.now

    # ------------------------------------------------------------------
    # public API (driven by the daemon)
    # ------------------------------------------------------------------
    def handle_envelope(self, envelope: Envelope,
                        retransmitted: bool = False,
                        session_start: Optional[float] = None) -> None:
        state = self._state(envelope.session)
        seq = envelope.seq
        state.known_last = max(state.known_last, seq)
        if state.expected is None:
            # First contact with this session.  Sessions always start at
            # seq 1, so a higher first-heard seq means either the early
            # messages were lost/reordered (recover them: the paper
            # promises exactly-once under normal operation) or this
            # receiver genuinely joined after the session began (history
            # is not replayed: "a new subscriber ... receives new
            # objects").  The session's start time disambiguates.
            if seq == 1:
                state.expected = 1
            elif session_start is not None \
                    and session_start >= self.started_at:
                # the session is younger than us: everything from seq 1
                # should have reached us — treat the hole as loss
                state.expected = 1
                state.buffer[seq] = (envelope, retransmitted)
                state.stats._buffered.value += 1
                self._arm_nack(envelope.session, state)
                return
            else:
                # genuinely late join (or unknown): sync-window baseline
                state.buffer[seq] = (envelope, retransmitted)
                if state.sync_event is None:
                    state.sync_event = self.sim.schedule(
                        self.config.nack_delay, self._end_sync,
                        envelope.session, name="reliable.sync")
                return
        if state.sync_event is not None:
            # syncing ended implicitly: seq 1 showed up
            state.sync_event.cancel()
            state.sync_event = None
            self._drain(state)
        if seq < state.expected:
            state.stats._duplicates.value += 1
            return
        if seq == state.expected:
            self._deliver_in_order(state, envelope, retransmitted)
            self._drain(state)
            self._refresh_gap(state)
            return
        # gap: buffer and arrange repair
        if seq in state.buffer:
            state.stats._duplicates.value += 1
            return
        if len(state.buffer) >= self.config.receive_buffer:
            if not self._shed(state, envelope):
                return   # the incoming envelope itself was shed
        state.buffer[seq] = (envelope, retransmitted)
        state.stats._buffered.value += 1
        self._arm_nack(envelope.session, state)

    def _shed(self, state: _SessionState, incoming: Envelope) -> bool:
        """Apply the overflow policy to a full reorder buffer.

        Returns True when room was made for ``incoming`` (a buffered
        envelope was evicted), False when ``incoming`` was the victim.
        Either way the shed is counted and traced — never silent.
        """
        if self.config.overflow_policy == POLICY_DROP_OLDEST:
            victim = min(state.buffer)
        else:
            # drop-newest (and ``block``, which a datagram receiver
            # cannot honour): shed the highest sequence number in play,
            # so a gap-filling arrival always displaces younger data
            victim = max(state.buffer)
            if incoming.seq > victim:
                victim = incoming.seq
        state.stats._overflow_dropped.value += 1
        if self._tracer:
            self._tracer.emit(self.sim.now, "flow.drop",
                              queue="reliable.reorder",
                              session=state.session, seq=victim,
                              end=("oldest" if self.config.overflow_policy
                                   == POLICY_DROP_OLDEST else "newest"),
                              depth=len(state.buffer))
        if victim == incoming.seq:
            return False
        del state.buffer[victim]
        return True

    def try_skip(self, entries: List[Tuple[str, int]]) -> bool:
        """Advance session windows for a frame whose bodies will not be
        decoded (the interest gate — see
        :meth:`repro.core.daemon.BusDaemon._gate_datagram`).

        ``entries`` is the frame's digest: one ``(session, seq)`` per
        envelope, in frame order.  All-or-nothing: commits and returns
        True only when every entry would have taken the trivial
        duplicate or contiguous in-order path through
        :meth:`handle_envelope` — nothing buffered, no timer armed,
        cancelled, or re-aimed — so that for a daemon with no matching
        subscription, skipping is *observably identical* (stats, traces,
        scheduled events) to decoding.  Anything else — first contact
        with a session, an open sync window, buffered out-of-order data,
        an armed NACK, a gap before or after the frame — returns False
        untouched and the caller runs the full decode path.
        """
        cursors: Dict[str, List] = {}
        for session, seq in entries:
            cur = cursors.get(session)
            if cur is None:
                state = self._sessions.get(session)
                if (state is None or state.expected is None
                        or state.sync_event is not None
                        or state.nack_event is not None
                        or state.buffer or state.has_gap()):
                    return False
                # [state, running expected, delivered, duplicates]
                cur = cursors[session] = [state, state.expected, 0, 0]
            if seq == cur[1]:
                cur[1] += 1
                cur[2] += 1
            elif 0 < seq < cur[1]:
                cur[3] += 1
            else:
                return False    # seq 0, or a gap this frame would open
        for state, expected, delivered, duplicates in cursors.values():
            if duplicates:
                state.stats._duplicates.value += duplicates
            if delivered:
                state.expected = expected
                if expected - 1 > state.known_last:
                    state.known_last = expected - 1
                state.stats._delivered.value += delivered
                # mirror _refresh_gap after an in-order delivery: no gap
                # remains (pre-flight guaranteed none existed and the
                # frame was contiguous), so only the attempt counter
                # reset is observable
                state.nack_attempts = 0
        return True

    def note_undecodable(self, session: str, first_seq: int, last_seq: int,
                         session_start: Optional[float] = None) -> None:
        """A frame from ``session`` arrived intact but could not be
        resolved (compressed header ids this receiver never learned —
        see :class:`~repro.core.wire.UnresolvedStringId`).

        The frame was dropped, so its envelopes never reached
        :meth:`handle_envelope`; without this hook the hole would only be
        noticed when a *later* decodable frame or heartbeat exposed the
        gap.  Treat it as loss: record how far the session is known to
        extend and arm a NACK — the RETRANS repair is self-contained
        (defines every id it references), so it always resolves.
        """
        state = self._state(session)
        if last_seq > state.known_last:
            state.known_last = last_seq
        if state.expected is None:
            if state.sync_event is not None:
                return   # mid sync window: buffered data will baseline
            if session_start is not None \
                    and session_start >= self.started_at:
                state.expected = 1          # young session: recover it all
            else:
                # late joiner: history is not replayed, but *this* frame
                # is new data we were meant to hear — repair from it.
                # (NOT ``last_seq + 1``: that would skip the frame and
                # leave a receiver whose every frame is unresolvable
                # permanently deaf.)
                state.expected = first_seq
        if state.has_gap():
            self._arm_nack(session, state)

    def handle_heartbeat(self, session: str, last_seq: int,
                         session_start: Optional[float] = None) -> None:
        state = self._state(session)
        if state.expected is None:
            state.known_last = max(state.known_last, last_seq)
            if state.sync_event is not None:
                return   # mid sync window: let the buffered data baseline
            if session_start is not None \
                    and session_start >= self.started_at:
                # young session: its entire history is recoverable
                state.expected = 1
                if state.has_gap():
                    self._arm_nack(session, state)
                return
            # late joiner: nothing published since we arrived is missing
            state.expected = last_seq + 1
            return
        state.known_last = max(state.known_last, last_seq)
        if state.has_gap():
            self._arm_nack(session, state)

    def stats(self, session: str) -> SessionStats:
        return self._state(session).stats

    def sessions(self) -> List[str]:
        return list(self._sessions)

    def shutdown(self) -> None:
        """Cancel all pending timers (daemon stopping or host crashing)."""
        for state in self._sessions.values():
            for event in (state.nack_event, state.sync_event):
                if event is not None:
                    event.cancel()
            state.nack_event = None
            state.sync_event = None
        self._sessions.clear()

    def _end_sync(self, session: str) -> None:
        state = self._sessions.get(session)
        if state is None or state.expected is not None:
            return
        state.sync_event = None
        if not state.buffer:
            return
        state.expected = min(state.buffer)
        self._drain(state)
        self._refresh_gap(state)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _state(self, session: str) -> _SessionState:
        state = self._sessions.get(session)
        if state is None:
            state = _SessionState(session, self._metrics)
            self._sessions[session] = state
        return state

    def _deliver_in_order(self, state: _SessionState, envelope: Envelope,
                          retransmitted: bool) -> None:
        state.expected = envelope.seq + 1
        state.stats._delivered.value += 1
        self._deliver(envelope, retransmitted)

    def _drain(self, state: _SessionState) -> None:
        while state.expected in state.buffer:
            envelope, retransmitted = state.buffer.pop(state.expected)
            self._deliver_in_order(state, envelope, retransmitted)

    def _gap(self, state: _SessionState) -> Optional[Tuple[int, int]]:
        if not state.buffer:
            return None
        return (state.expected, max(state.buffer) - 1) \
            if max(state.buffer) > state.expected else None

    def _refresh_gap(self, state: _SessionState) -> None:
        """After progress, cancel or re-aim the outstanding NACK timer."""
        if state.nack_event is not None:
            state.nack_event.cancel()
            state.nack_event = None
        state.nack_attempts = 0
        if state.has_gap():
            # there is still a hole (below the buffer, or a lost tail)
            self._arm_nack(state.session, state)

    def _arm_nack(self, session: str, state: _SessionState) -> None:
        if state.nack_event is not None:
            return
        delay = min(self.config.nack_delay
                    * (self.config.nack_backoff ** state.nack_attempts),
                    self.config.nack_backoff_cap)
        state.nack_event = self.sim.schedule(
            delay, self._fire_nack, session, name="reliable.nack")

    def _fire_nack(self, session: str) -> None:
        state = self._sessions.get(session)
        if state is None:
            return
        state.nack_event = None
        if not state.has_gap():
            return
        if state.nack_attempts >= self.config.nack_max:
            self._give_up(state)
            return
        state.nack_attempts += 1
        state.stats._nacks_sent.value += 1
        self._send_nack(session, state.expected, state.last_missing())
        self._arm_nack(session, state)

    def _give_up(self, state: _SessionState) -> None:
        """Unrepairable gap: skip it (at-most-once under failure)."""
        state.stats._gaps_skipped.value += 1
        if state.buffer:
            lowest = min(state.buffer)
            state.stats._messages_lost.value += lowest - state.expected
            state.expected = lowest
        else:
            # a lost tail the (dead or amnesiac) sender cannot repair
            state.stats._messages_lost.value += state.known_last - state.expected + 1
            state.expected = state.known_last + 1
        state.nack_attempts = 0
        self._drain(state)
        if state.has_gap():
            self._arm_nack(state.session, state)
