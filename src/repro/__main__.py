"""``python -m repro`` — run the example walk-throughs.

Usage::

    python -m repro                 # list the examples
    python -m repro quickstart      # run one
    python -m repro all             # run every example in order
"""

from __future__ import annotations

import importlib.util
import os
import sys

EXAMPLES = ["quickstart", "trading_floor", "fab_floor",
            "dynamic_evolution", "operations_console", "wan_trading",
            "market_data"]


def _examples_dir() -> str:
    # installed editable from a checkout: examples/ sits next to src/
    here = os.path.dirname(os.path.abspath(__file__))
    for candidate in (
            os.path.join(os.path.dirname(os.path.dirname(here)),
                         "examples"),
            os.path.join(os.getcwd(), "examples")):
        if os.path.isdir(candidate):
            return candidate
    raise SystemExit("cannot locate the examples/ directory; "
                     "run from a checkout")


def run(name: str) -> None:
    path = os.path.join(_examples_dir(), f"{name}.py")
    if not os.path.exists(path):
        raise SystemExit(f"no such example: {name}\n"
                         f"available: {', '.join(EXAMPLES)}")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


def main(argv) -> int:
    if not argv:
        print(__doc__.strip())
        print("\navailable examples:")
        for name in EXAMPLES:
            print(f"  {name}")
        return 0
    targets = EXAMPLES if argv[0] == "all" else argv
    for index, name in enumerate(targets):
        if index:
            print("\n" + "=" * 72 + "\n")
        print(f">>> {name}\n")
        run(name)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
