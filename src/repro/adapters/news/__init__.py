"""News-wire adapters for the trading-floor example (Figure 3)."""

from .story import (DOWJONES_STORY_TYPE, REUTERS_STORY_TYPE, STORY_TYPE,
                    news_subject, register_news_types)
from .feeds import DowJonesFeed, ReutersFeed, TOPICS
from .dowjones import DowJonesAdapter
from .reuters import ReutersAdapter

__all__ = ["DOWJONES_STORY_TYPE", "DowJonesAdapter", "DowJonesFeed",
           "REUTERS_STORY_TYPE", "ReutersAdapter", "ReutersFeed",
           "STORY_TYPE", "TOPICS", "news_subject", "register_news_types"]
