"""The Story type hierarchy from the trading-floor example (Section 5).

    "Each adapter parses the received data into an appropriate
    vendor-specific subtype of a common Story supertype, and publishes
    each story on the Information Bus under a subject describing the
    story's primary topic (for example, 'news.equity.gmc')."

A story "is a highly structured object containing other objects such as
lists of 'industry groups', 'sources', and 'country codes'" — exactly the
attributes declared here, which is what makes the Object Repository's
decomposition non-trivial.
"""

from __future__ import annotations

from ...objects import AttributeSpec, TypeDescriptor, TypeRegistry

__all__ = ["STORY_TYPE", "DOWJONES_STORY_TYPE", "REUTERS_STORY_TYPE",
           "register_news_types", "news_subject"]

STORY_TYPE = "story"
DOWJONES_STORY_TYPE = "dowjones_story"
REUTERS_STORY_TYPE = "reuters_story"


def register_news_types(registry: TypeRegistry) -> None:
    """Register the common supertype and both vendor subtypes (idempotent)."""
    if not registry.has(STORY_TYPE):
        registry.register(TypeDescriptor(
            STORY_TYPE,
            attributes=[
                AttributeSpec("headline", "string"),
                AttributeSpec("body", "string", required=False),
                AttributeSpec("category", "string",
                              doc="primary category, e.g. 'equity'"),
                AttributeSpec("topic", "string",
                              doc="primary topic, e.g. 'gmc'"),
                AttributeSpec("industry_groups", "list<string>",
                              required=False),
                AttributeSpec("sources", "list<string>", required=False),
                AttributeSpec("country_codes", "list<string>",
                              required=False),
            ],
            doc="a news story (common supertype across wire vendors)"))
    if not registry.has(DOWJONES_STORY_TYPE):
        registry.register(TypeDescriptor(
            DOWJONES_STORY_TYPE, supertype=STORY_TYPE,
            attributes=[
                AttributeSpec("djcode", "string",
                              doc="Dow Jones story code"),
                AttributeSpec("page", "string", required=False,
                              doc="newswire page reference"),
            ],
            doc="a story as delivered by the Dow Jones feed"))
    if not registry.has(REUTERS_STORY_TYPE):
        registry.register(TypeDescriptor(
            REUTERS_STORY_TYPE, supertype=STORY_TYPE,
            attributes=[
                AttributeSpec("ric", "string",
                              doc="Reuters instrument code"),
                AttributeSpec("priority", "int", required=False,
                              doc="wire priority, 1 = flash"),
            ],
            doc="a story as delivered by the Reuters feed"))


def news_subject(category: str, topic: str) -> str:
    """The bus subject for a story: ``news.<category>.<topic>``."""
    return f"news.{category}.{topic}"
