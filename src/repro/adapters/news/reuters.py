"""The Reuters news adapter: multi-line wire text -> reuters_story objects."""

from __future__ import annotations

from typing import Dict, Optional

from ...core import BusClient
from ...objects import DataObject
from ..base import Adapter
from .story import REUTERS_STORY_TYPE, news_subject, register_news_types

__all__ = ["ReutersAdapter"]


class ReutersAdapter(Adapter):
    """Parses the RTR key/value wire format and publishes stories."""

    def __init__(self, client: BusClient, name: str = "reuters_adapter"):
        super().__init__(client, name)
        register_news_types(client.registry)

    def feed_sink(self, raw: str) -> None:
        story = self.parse(raw)
        if story is None:
            return
        self.inbound += 1
        self.client.publish(
            news_subject(story.get("category"), story.get("topic")), story)

    def parse(self, raw: str) -> Optional[DataObject]:
        """One raw record -> a ``reuters_story``, or None on junk input."""
        lines = [line for line in raw.splitlines() if line.strip()]
        if not lines or not lines[0].startswith("RTR "):
            self.record_error(f"not an RTR record: {raw[:60]!r}")
            return None
        header = lines[0].split()
        if len(header) < 3 or not header[2].startswith("P"):
            self.record_error(f"bad RTR header: {lines[0]!r}")
            return None
        ric = header[1]
        try:
            priority = int(header[2][1:])
        except ValueError:
            self.record_error(f"bad RTR priority: {header[2]!r}")
            return None
        fields: Dict[str, str] = {}
        for line in lines[1:]:
            if line == "ENDS":
                break
            if ": " not in line:
                self.record_error(f"bad RTR field line: {line!r}")
                return None
            key, value = line.split(": ", 1)
            fields[key] = value
        required = ("CAT", "TOP", "HEADLINE")
        if any(key not in fields for key in required):
            self.record_error(f"missing RTR fields in: {raw[:60]!r}")
            return None
        attrs = {
            "ric": ric,
            "priority": priority,
            "category": fields["CAT"],
            "topic": fields["TOP"],
            "headline": fields["HEADLINE"],
            "sources": ["Reuters"],
        }
        if "BODY" in fields:
            attrs["body"] = fields["BODY"]
        if "GROUPS" in fields:
            attrs["industry_groups"] = \
                [g for g in fields["GROUPS"].split(";") if g]
        if "COUNTRY" in fields:
            attrs["country_codes"] = \
                [c for c in fields["COUNTRY"].split(";") if c]
        try:
            return DataObject(self.client.registry, REUTERS_STORY_TYPE,
                              attrs)
        except Exception as error:
            self.record_error(f"RTR validation: {error}")
            return None
