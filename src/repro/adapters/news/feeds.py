"""Simulated raw news feeds (the paper's Dow Jones / Reuters wires).

Each feed generates deterministic synthetic stories in its own vendor
wire format and pushes the *raw text* to a sink callback on a timer —
exactly the shape of "communication feeds connected to outside news
services" that the adapters in :mod:`repro.adapters.news` must parse.

The two formats are intentionally dissimilar (one pipe-delimited single
line, one multi-line key: value) so the adapters genuinely translate
heterogeneous legacy schemas, per requirement R3.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ...sim.kernel import PeriodicTimer, Simulator

__all__ = ["DowJonesFeed", "ReutersFeed", "TOPICS"]

#: (category, topic, company name) triples the generators draw from.
TOPICS: List[Tuple[str, str, str]] = [
    ("equity", "gmc", "General Motors"),
    ("equity", "ibm", "IBM"),
    ("equity", "tsm", "Taiwan Semiconductor"),
    ("bond", "us10y", "10-Year Treasury"),
    ("fx", "usdjpy", "Dollar-Yen"),
    ("commodity", "crude", "Crude Oil"),
]

_VERBS = ["rises", "falls", "surges", "slips", "steadies", "rallies"]
_REASONS = ["on earnings", "after fab5 yield report", "on rate outlook",
            "as volumes spike", "on export data", "amid chip shortage"]
_GROUPS = ["semis", "autos", "banks", "energy", "tech"]
_COUNTRIES = ["us", "jp", "de", "tw", "uk"]


class _FeedBase:
    """Shared machinery: a timer that emits one raw story per period."""

    def __init__(self, sim: Simulator, sink: Callable[[str], None],
                 interval: float, rng_stream: str):
        self.sim = sim
        self.sink = sink
        self.rng = sim.rng(rng_stream)
        self.emitted = 0
        self._timer: Optional[PeriodicTimer] = PeriodicTimer(
            sim, interval, self._emit, name=rng_stream)

    def _emit(self) -> None:
        self.emitted += 1
        self.sink(self.generate())

    def generate(self) -> str:
        raise NotImplementedError

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def _pick_story_parts(self):
        category, topic, company = self.rng.choice(TOPICS)
        verb = self.rng.choice(_VERBS)
        reason = self.rng.choice(_REASONS)
        headline = f"{company} {verb} {reason}"
        body = (f"{company} {verb} {reason}. Desk analysts note trading "
                f"volume of {self.rng.randint(1, 99)}M shares. "
                f"More to follow.")
        groups = sorted(self.rng.sample(_GROUPS, self.rng.randint(1, 3)))
        countries = sorted(self.rng.sample(_COUNTRIES,
                                           self.rng.randint(1, 3)))
        return category, topic, headline, body, groups, countries


class DowJonesFeed(_FeedBase):
    """Pipe-delimited single-line wire format::

        DJ|<code>|<category>|<topic>|<headline>|<body>|IG:a,b|CC:us,jp|PG:N7
    """

    def __init__(self, sim: Simulator, sink: Callable[[str], None],
                 interval: float = 0.5):
        super().__init__(sim, sink, interval, "feed.dowjones")

    def generate(self) -> str:
        category, topic, headline, body, groups, countries = \
            self._pick_story_parts()
        code = f"DJ{self.emitted:06d}"
        page = f"N{self.rng.randint(1, 9)}"
        return "|".join([
            "DJ", code, category, topic, headline, body,
            "IG:" + ",".join(groups),
            "CC:" + ",".join(countries),
            "PG:" + page,
        ])


class ReutersFeed(_FeedBase):
    """Multi-line key/value wire format::

        RTR <ric> P<priority>
        CAT: equity
        TOP: gmc
        HEADLINE: ...
        BODY: ...
        GROUPS: a;b
        COUNTRY: us;jp
        ENDS
    """

    def __init__(self, sim: Simulator, sink: Callable[[str], None],
                 interval: float = 0.7):
        super().__init__(sim, sink, interval, "feed.reuters")

    def generate(self) -> str:
        category, topic, headline, body, groups, countries = \
            self._pick_story_parts()
        ric = f"{topic.upper()}.N"
        priority = self.rng.randint(1, 4)
        return "\n".join([
            f"RTR {ric} P{priority}",
            f"CAT: {category}",
            f"TOP: {topic}",
            f"HEADLINE: {headline}",
            f"BODY: {body}",
            "GROUPS: " + ";".join(groups),
            "COUNTRY: " + ";".join(countries),
            "ENDS",
        ])
