"""The Dow Jones news adapter: raw wire text -> dowjones_story objects.

One of the two "news adapters [that] receive news stories from
communication feeds connected to outside news services" in Figure 3.
Thanks to P1 (minimal core semantics), the raw feed "does not have to
support complex semantics" — the adapter does all the translation.
"""

from __future__ import annotations

from typing import Optional

from ...core import BusClient
from ...objects import DataObject
from ..base import Adapter
from .story import DOWJONES_STORY_TYPE, news_subject, register_news_types

__all__ = ["DowJonesAdapter"]


class DowJonesAdapter(Adapter):
    """Parses the pipe-delimited DJ wire format and publishes stories."""

    def __init__(self, client: BusClient, name: str = "dowjones_adapter"):
        super().__init__(client, name)
        register_news_types(client.registry)

    def feed_sink(self, raw: str) -> None:
        """Entry point wired to a :class:`~repro.adapters.news.feeds.
        DowJonesFeed`."""
        story = self.parse(raw)
        if story is None:
            return
        self.inbound += 1
        self.client.publish(
            news_subject(story.get("category"), story.get("topic")), story)

    def parse(self, raw: str) -> Optional[DataObject]:
        """One raw line -> a ``dowjones_story``, or None on junk input."""
        parts = raw.split("|")
        if len(parts) < 6 or parts[0] != "DJ":
            self.record_error(f"malformed DJ record: {raw[:60]!r}")
            return None
        code, category, topic, headline, body = parts[1:6]
        if not (code and category and topic and headline):
            self.record_error(f"missing DJ fields: {raw[:60]!r}")
            return None
        attrs = {
            "djcode": code,
            "category": category,
            "topic": topic,
            "headline": headline,
            "body": body,
            "sources": ["Dow Jones"],
        }
        for extra in parts[6:]:
            if extra.startswith("IG:"):
                attrs["industry_groups"] = \
                    [g for g in extra[3:].split(",") if g]
            elif extra.startswith("CC:"):
                attrs["country_codes"] = \
                    [c for c in extra[3:].split(",") if c]
            elif extra.startswith("PG:"):
                attrs["page"] = extra[3:]
        try:
            return DataObject(self.client.registry, DOWJONES_STORY_TYPE,
                              attrs)
        except Exception as error:
            self.record_error(f"DJ validation: {error}")
            return None
