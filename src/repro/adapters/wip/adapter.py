"""The WIP adapter: a "virtual user" at the legacy terminal.

It bridges two worlds (Section 4): on the bus side it subscribes to
``fab5.wip.command`` objects and publishes ``wip_lot`` status objects; on
the legacy side it types menu selections and form fields into the
:class:`~repro.adapters.wip.terminal.WipTerminal` and screen-scrapes the
fixed-width replies back into data objects.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ...core import BusClient, MessageInfo
from ...objects import AttributeSpec, DataObject, TypeDescriptor, TypeRegistry
from ..base import Adapter
from .terminal import WipTerminal

__all__ = ["WIP_COMMAND_TYPE", "WIP_LOT_TYPE", "WipAdapter",
           "register_wip_types", "COMMAND_SUBJECT", "status_subject"]

WIP_LOT_TYPE = "wip_lot"
WIP_COMMAND_TYPE = "wip_command"

#: Commands to the WIP system arrive here.
COMMAND_SUBJECT = "fab5.wip.command"


def status_subject(lot_id: str) -> str:
    """Lot status updates are published per-lot: ``fab5.wip.status.<lot>``."""
    return f"fab5.wip.status.{lot_id.lower()}"


def register_wip_types(registry: TypeRegistry) -> None:
    """Register the WIP object types (idempotent)."""
    if not registry.has(WIP_LOT_TYPE):
        registry.register(TypeDescriptor(
            WIP_LOT_TYPE,
            attributes=[
                AttributeSpec("lot_id", "string"),
                AttributeSpec("product", "string"),
                AttributeSpec("step", "string"),
                AttributeSpec("qty", "int"),
                AttributeSpec("status", "string"),
            ],
            doc="one lot as tracked by the legacy WIP system"))
    if not registry.has(WIP_COMMAND_TYPE):
        registry.register(TypeDescriptor(
            WIP_COMMAND_TYPE,
            attributes=[
                AttributeSpec("verb", "string",
                              doc="inquire | track_in | track_out | hold "
                                  "| new_lot | list_lots"),
                AttributeSpec("lot_id", "string", required=False),
                AttributeSpec("step", "string", required=False),
                AttributeSpec("product", "string", required=False),
                AttributeSpec("qty", "int", required=False),
            ],
            doc="a request to the WIP system"))


#: How each bus verb is typed at the terminal: (menu choice, field builder)
_VERB_MENU = {"inquire": "1", "track_in": "2", "track_out": "3",
              "hold": "4", "new_lot": "5", "list_lots": "6"}

_FIELD_RE = re.compile(r"^\* (LOT ID|PRODUCT|STEP|QTY|STATUS)\s*: (.*?)\s*\*?$")


class WipAdapter(Adapter):
    """Drives the terminal as a virtual user; speaks objects on the bus."""

    def __init__(self, client: BusClient, terminal: WipTerminal,
                 name: str = "wip_adapter"):
        super().__init__(client, name)
        self.terminal = terminal
        register_wip_types(client.registry)
        self.track_subscription(
            client.subscribe(COMMAND_SUBJECT, self._on_command))

    # ------------------------------------------------------------------
    # bus -> terminal
    # ------------------------------------------------------------------
    def _on_command(self, subject: str, obj, info: MessageInfo) -> None:
        if not (isinstance(obj, DataObject) and obj.is_a(WIP_COMMAND_TYPE)):
            self.record_error(f"non-command on {subject}")
            return
        self.outbound += 1
        verb = obj.get("verb")
        menu_choice = _VERB_MENU.get(verb)
        if menu_choice is None:
            self.record_error(f"unknown WIP verb {verb!r}")
            self._publish_error(obj.get("lot_id") or "unknown",
                                f"unknown verb {verb!r}")
            return
        self.terminal.send(menu_choice)
        if verb == "list_lots":
            self._scrape_and_publish_list()
            return
        self.terminal.send(self._form_line(verb, obj))
        self._scrape_and_publish(obj.get("lot_id"))

    def _form_line(self, verb: str, obj: DataObject) -> str:
        lot_id = obj.get("lot_id", "")
        if verb == "track_out":
            return f"{lot_id},{obj.get('step', '')}"
        if verb == "new_lot":
            return (f"{lot_id},{obj.get('product', '')},"
                    f"{obj.get('step', '')},{obj.get('qty', 0)}")
        return lot_id

    # ------------------------------------------------------------------
    # terminal -> bus (screen scraping)
    # ------------------------------------------------------------------
    def scrape_lot(self) -> Optional[Dict[str, str]]:
        """Parse the LOT DETAIL screen currently displayed, if any."""
        fields: Dict[str, str] = {}
        for line in self.terminal.screen():
            match = _FIELD_RE.match(line.rstrip())
            if match:
                fields[match.group(1)] = match.group(2).strip()
        if {"LOT ID", "PRODUCT", "STEP", "QTY", "STATUS"} <= set(fields):
            return fields
        return None

    def scrape_error(self) -> Optional[str]:
        for line in self.terminal.screen():
            if "*** ERROR" in line:
                start = line.index("*** ERROR")
                return line[start:].strip(" *")
        return None

    def _scrape_and_publish(self, lot_id: str) -> None:
        fields = self.scrape_lot()
        if fields is not None:
            lot = DataObject(self.client.registry, WIP_LOT_TYPE, {
                "lot_id": fields["LOT ID"],
                "product": fields["PRODUCT"],
                "step": fields["STEP"],
                "qty": int(fields["QTY"]),
                "status": fields["STATUS"],
            })
            self.inbound += 1
            self.client.publish(status_subject(fields["LOT ID"]), lot)
            self.terminal.send("")   # return to the menu
            return
        error = self.scrape_error()
        self._publish_error(lot_id or "unknown",
                            error or "unrecognized screen")
        self.terminal.send("")

    _ROW_RE = re.compile(
        r"^\* ([A-Z0-9\-]+)\s+([A-Z0-9\-]+)\s+([A-Z0-9\-]+)\s+"
        r"(\d+)\s+(QUEUED|PROC|HOLD|DONE)\s*\*?$")

    def scrape_lot_list(self) -> List[Dict[str, str]]:
        """Parse the LOT LIST REPORT screen into one dict per row."""
        rows: List[Dict[str, str]] = []
        for line in self.terminal.screen():
            match = self._ROW_RE.match(line.rstrip())
            if match:
                rows.append({"LOT ID": match.group(1),
                             "PRODUCT": match.group(2),
                             "STEP": match.group(3),
                             "QTY": match.group(4),
                             "STATUS": match.group(5)})
        return rows

    def _scrape_and_publish_list(self) -> None:
        """Publish every lot on the report as a wip_lot object."""
        rows = self.scrape_lot_list()
        for fields in rows:
            lot = DataObject(self.client.registry, WIP_LOT_TYPE, {
                "lot_id": fields["LOT ID"],
                "product": fields["PRODUCT"],
                "step": fields["STEP"],
                "qty": int(fields["QTY"]),
                "status": fields["STATUS"],
            })
            self.inbound += 1
            self.client.publish(status_subject(fields["LOT ID"]), lot)
        self.client.publish("fab5.wip.report",
                            {"lots": len(rows)})
        self.terminal.send("")

    def _publish_error(self, lot_id: str, message: str) -> None:
        self.record_error(message)
        self.client.publish(status_subject(lot_id),
                            {"error": message, "lot_id": lot_id})
