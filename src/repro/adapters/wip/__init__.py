"""The legacy WIP system and its virtual-user adapter (Section 4)."""

from .terminal import WipLotRecord, WipTerminal
from .adapter import (COMMAND_SUBJECT, WIP_COMMAND_TYPE, WIP_LOT_TYPE,
                      WipAdapter, register_wip_types, status_subject)

__all__ = ["COMMAND_SUBJECT", "WIP_COMMAND_TYPE", "WIP_LOT_TYPE",
           "WipAdapter", "WipLotRecord", "WipTerminal",
           "register_wip_types", "status_subject"]
