"""The legacy Work-In-Progress tracking system.

Section 4: "our customer already had a Work In Progress (WIP) system with
its own data schemas ... the existing WIP system is written in Cobol, and
there is only a primitive terminal interface.  The adapter must act as a
virtual user to the terminal interface."

This module is that legacy system: a lot-tracking database behind a
menu-driven, fixed-width, all-caps terminal interface.  There is no API —
the only way in or out is :meth:`WipTerminal.send` (type a line) and
:meth:`WipTerminal.screen` (read the 80-column display), which is exactly
the interface the adapter must screen-scrape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["WipLotRecord", "WipTerminal"]

_WIDTH = 80


@dataclass
class WipLotRecord:
    """One lot in the legacy system's flat-file 'database'."""

    lot_id: str
    product: str
    step: str
    qty: int
    status: str   # QUEUED | PROC | HOLD | DONE


class WipTerminal:
    """The 1970s-style terminal front-end to the WIP flat files.

    Screens: MAIN MENU -> (1) LOT INQUIRY, (2) TRACK IN, (3) TRACK OUT,
    (4) HOLD LOT, (5) NEW LOT.  Every interaction is a typed line; every
    response is a full 80-column screen repaint.  Case-insensitive input,
    SHOUTING output.
    """

    def __init__(self) -> None:
        self._lots: Dict[str, WipLotRecord] = {}
        self._screen: List[str] = []
        self._mode = "menu"
        self._pending: List[str] = []   # fields collected in a form mode
        self.commands_processed = 0
        self._paint_menu()

    # ------------------------------------------------------------------
    # the whole legacy interface: two methods
    # ------------------------------------------------------------------
    def screen(self) -> List[str]:
        """The current 80-column screen contents."""
        return list(self._screen)

    def send(self, line: str) -> None:
        """Type one line at the terminal."""
        self.commands_processed += 1
        text = line.strip().upper()
        if self._mode == "menu":
            self._from_menu(text)
        elif self._mode in ("inquiry", "trackin", "trackout", "hold",
                            "newlot"):
            self._collect_field(text)
        else:   # pragma: no cover - defensive
            self._paint_menu()

    # ------------------------------------------------------------------
    # direct (non-terminal) access for tests that set up fixtures
    # ------------------------------------------------------------------
    def seed_lot(self, record: WipLotRecord) -> None:
        self._lots[record.lot_id.upper()] = record

    def lot_count(self) -> int:
        return len(self._lots)

    # ------------------------------------------------------------------
    # screens
    # ------------------------------------------------------------------
    def _paint(self, lines: List[str]) -> None:
        framed = ["*" * _WIDTH]
        for line in lines:
            framed.append(("* " + line).ljust(_WIDTH - 1) + "*")
        framed.append("*" * _WIDTH)
        self._screen = framed

    def _paint_menu(self) -> None:
        self._mode = "menu"
        self._pending = []
        self._paint([
            "ACME FAB5  WORK-IN-PROGRESS TRACKING  V2.3  (C)1979",
            "",
            "MAIN MENU",
            "  1. LOT INQUIRY",
            "  2. TRACK IN",
            "  3. TRACK OUT",
            "  4. HOLD LOT",
            "  5. NEW LOT",
            "  6. LOT LIST REPORT",
            "",
            "ENTER SELECTION:",
        ])

    def _prompt(self, mode: str, prompt: str) -> None:
        self._mode = mode
        self._paint([f"FAB5 WIP - {mode.upper()}", "", prompt])

    def _from_menu(self, text: str) -> None:
        if text == "":
            self._paint_menu()   # "PRESS ENTER FOR MENU"
        elif text == "1":
            self._prompt("inquiry", "ENTER LOT ID:")
        elif text == "2":
            self._prompt("trackin", "ENTER LOT ID:")
        elif text == "3":
            self._prompt("trackout", "ENTER LOT ID, STEP (COMMA SEP):")
        elif text == "4":
            self._prompt("hold", "ENTER LOT ID:")
        elif text == "5":
            self._prompt("newlot",
                         "ENTER LOT ID, PRODUCT, STEP, QTY (COMMA SEP):")
        elif text == "6":
            self._show_lot_list()
        else:
            self._paint(["INVALID SELECTION", "", "PRESS ANY KEY"])
            self._mode = "menu"

    # ------------------------------------------------------------------
    # form handling
    # ------------------------------------------------------------------
    def _collect_field(self, text: str) -> None:
        mode = self._mode
        if mode == "inquiry":
            self._do_inquiry(text)
        elif mode == "trackin":
            self._do_trackin(text)
        elif mode == "trackout":
            self._do_trackout(text)
        elif mode == "hold":
            self._do_hold(text)
        elif mode == "newlot":
            self._do_newlot(text)

    def _show_lot(self, record: WipLotRecord, note: str = "") -> None:
        lines = [
            "FAB5 WIP - LOT DETAIL",
            "",
            f"LOT ID  : {record.lot_id.upper():<12}",
            f"PRODUCT : {record.product.upper():<12}",
            f"STEP    : {record.step.upper():<12}",
            f"QTY     : {record.qty:>6d}",
            f"STATUS  : {record.status:<8}",
        ]
        if note:
            lines += ["", note]
        lines += ["", "PRESS ENTER FOR MENU"]
        self._paint(lines)
        self._mode = "menu"   # any further input returns to the menu

    def _not_found(self, lot_id: str) -> None:
        self._paint([f"*** ERROR 404: LOT {lot_id} NOT ON FILE ***", "",
                     "PRESS ENTER FOR MENU"])
        self._mode = "menu"

    def _show_lot_list(self) -> None:
        """The batch report screen: one fixed-width row per lot."""
        lines = ["FAB5 WIP - LOT LIST REPORT",
                 "",
                 "LOT ID       PRODUCT      STEP         QTY    STATUS",
                 "-" * 56]
        for lot_id in sorted(self._lots):
            record = self._lots[lot_id]
            lines.append(f"{record.lot_id.upper():<12} "
                         f"{record.product.upper():<12} "
                         f"{record.step.upper():<12} "
                         f"{record.qty:>5d}  {record.status:<8}")
        if not self._lots:
            lines.append("*** NO LOTS ON FILE ***")
        lines += ["", f"TOTAL LOTS: {len(self._lots)}",
                  "PRESS ENTER FOR MENU"]
        self._paint(lines)
        self._mode = "menu"

    def _do_inquiry(self, lot_id: str) -> None:
        record = self._lots.get(lot_id)
        if record is None:
            self._not_found(lot_id)
        else:
            self._show_lot(record)

    def _do_trackin(self, lot_id: str) -> None:
        record = self._lots.get(lot_id)
        if record is None:
            self._not_found(lot_id)
            return
        if record.status == "HOLD":
            self._paint([f"*** ERROR 409: LOT {lot_id} ON HOLD ***", "",
                         "PRESS ENTER FOR MENU"])
            self._mode = "menu"
            return
        record.status = "PROC"
        self._show_lot(record, "TRACK-IN COMPLETE")

    def _do_trackout(self, text: str) -> None:
        parts = [p.strip() for p in text.split(",")]
        if len(parts) != 2 or not all(parts):
            self._paint(["*** ERROR 400: EXPECTED LOT ID, STEP ***", "",
                         "PRESS ENTER FOR MENU"])
            self._mode = "menu"
            return
        lot_id, next_step = parts
        record = self._lots.get(lot_id)
        if record is None:
            self._not_found(lot_id)
            return
        record.step = next_step
        record.status = "QUEUED" if next_step != "SHIP" else "DONE"
        self._show_lot(record, "TRACK-OUT COMPLETE")

    def _do_hold(self, lot_id: str) -> None:
        record = self._lots.get(lot_id)
        if record is None:
            self._not_found(lot_id)
            return
        record.status = "HOLD"
        self._show_lot(record, "LOT PLACED ON HOLD")

    def _do_newlot(self, text: str) -> None:
        parts = [p.strip() for p in text.split(",")]
        if len(parts) != 4 or not all(parts):
            self._paint([
                "*** ERROR 400: EXPECTED LOT ID, PRODUCT, STEP, QTY ***",
                "", "PRESS ENTER FOR MENU"])
            self._mode = "menu"
            return
        lot_id, product, step, qty_text = parts
        try:
            qty = int(qty_text)
        except ValueError:
            self._paint(["*** ERROR 400: QTY MUST BE NUMERIC ***", "",
                         "PRESS ENTER FOR MENU"])
            self._mode = "menu"
            return
        if lot_id in self._lots:
            self._paint([f"*** ERROR 409: LOT {lot_id} EXISTS ***", "",
                         "PRESS ENTER FOR MENU"])
            self._mode = "menu"
            return
        record = WipLotRecord(lot_id, product, step, qty, "QUEUED")
        self._lots[lot_id] = record
        self._show_lot(record, "LOT CREATED")
