"""The adapter framework (Section 4).

    "To integrate existing applications into the Information Bus we use
    software modules called adapters.  These adapters convert information
    from the data objects of the Information Bus into data understood by
    the applications, and vice versa.  Adapters must live in two worlds
    at once, translating communication mechanisms and data schemas."

:class:`Adapter` is the shared skeleton: a bus client on one side, an
arbitrary legacy endpoint on the other, and counters that every concrete
adapter (news feeds, the WIP terminal, the Object Repository) reports
through.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import BusClient, Subscription

__all__ = ["Adapter"]


class Adapter:
    """Base class for bus ↔ legacy-system bridges."""

    def __init__(self, client: BusClient, name: Optional[str] = None):
        self.client = client
        self.name = name or type(self).__name__
        self.inbound = 0      # legacy -> bus translations
        self.outbound = 0     # bus -> legacy translations
        self.errors = 0
        self.last_error: Optional[str] = None
        self._subscriptions: List[Subscription] = []
        self._running = True

    @property
    def sim(self):
        return self.client.sim

    # ------------------------------------------------------------------
    def track_subscription(self, subscription: Subscription) -> Subscription:
        self._subscriptions.append(subscription)
        return subscription

    def record_error(self, message: str) -> None:
        self.errors += 1
        self.last_error = message

    def stop(self) -> None:
        """Detach from the bus.  Concrete adapters extend this to also
        close their legacy side."""
        if not self._running:
            return
        self._running = False
        for subscription in self._subscriptions:
            self.client.unsubscribe(subscription)
        self._subscriptions = []

    @property
    def running(self) -> bool:
        return self._running

    def stats(self) -> dict:
        return {"name": self.name, "inbound": self.inbound,
                "outbound": self.outbound, "errors": self.errors}
