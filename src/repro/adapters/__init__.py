"""Adapters: bridges between legacy systems and the Information Bus
(Section 4)."""

from .base import Adapter
from .news.story import (DOWJONES_STORY_TYPE, REUTERS_STORY_TYPE, STORY_TYPE,
                         news_subject, register_news_types)
from .news.feeds import DowJonesFeed, ReutersFeed, TOPICS
from .news.dowjones import DowJonesAdapter
from .news.reuters import ReutersAdapter
from .wip.terminal import WipLotRecord, WipTerminal
from .wip.adapter import (COMMAND_SUBJECT, WIP_COMMAND_TYPE, WIP_LOT_TYPE,
                          WipAdapter, register_wip_types, status_subject)

__all__ = [
    "Adapter", "COMMAND_SUBJECT", "DOWJONES_STORY_TYPE", "DowJonesAdapter",
    "DowJonesFeed", "REUTERS_STORY_TYPE", "ReutersAdapter", "ReutersFeed",
    "STORY_TYPE", "TOPICS", "WIP_COMMAND_TYPE", "WIP_LOT_TYPE", "WipAdapter",
    "WipLotRecord", "WipTerminal", "news_subject", "register_news_types",
    "register_wip_types", "status_subject",
]
