"""Text-mode widget toolkit for the application builder.

The paper's builder produced Motif-style GUIs; ours renders 1993-honest
text forms (see DESIGN.md substitutions).  What matters architecturally
is preserved: widgets are plain objects a script can compose, fields
carry values, buttons carry actions, and a form renders itself.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["Button", "Form", "Label", "ListView", "TextField", "Widget",
           "WidgetError"]


class WidgetError(RuntimeError):
    """Unknown widget names, duplicate names, bad interactions."""


class Widget:
    """Base widget: everything has a name and renders to lines."""

    def __init__(self, name: str):
        self.name = name

    def render(self) -> List[str]:
        raise NotImplementedError


class Label(Widget):
    """Static (but settable) text."""

    def __init__(self, name: str, text: str = ""):
        super().__init__(name)
        self.text = text

    def set(self, text: str) -> None:
        self.text = text

    def render(self) -> List[str]:
        return [self.text]


class TextField(Widget):
    """A named input field."""

    def __init__(self, name: str, label: Optional[str] = None,
                 value: str = ""):
        super().__init__(name)
        self.label = label if label is not None else name
        self.value = value

    def set(self, value: Any) -> None:
        self.value = "" if value is None else str(value)

    def render(self) -> List[str]:
        return [f"{self.label}: [{self.value}]"]


class Button(Widget):
    """A named action.  ``press`` invokes it with the owning form."""

    def __init__(self, name: str, label: Optional[str] = None,
                 action: Optional[Callable[["Form"], None]] = None):
        super().__init__(name)
        self.label = label if label is not None else name
        self.action = action
        self.presses = 0

    def render(self) -> List[str]:
        return [f"<{self.label}>"]


class ListView(Widget):
    """A scrolling list of rows with fixed columns."""

    def __init__(self, name: str, columns: Sequence[str],
                 widths: Optional[Sequence[int]] = None,
                 max_rows: int = 100):
        super().__init__(name)
        self.columns = list(columns)
        self.widths = list(widths) if widths else [16] * len(self.columns)
        if len(self.widths) != len(self.columns):
            raise WidgetError(
                f"{name}: {len(self.columns)} columns but "
                f"{len(self.widths)} widths")
        self.max_rows = max_rows
        self.rows: List[List[str]] = []
        self.selected: Optional[int] = None
        self._on_select: Optional[Callable[[int], None]] = None

    def add_row(self, values: Sequence[Any]) -> None:
        if len(values) != len(self.columns):
            raise WidgetError(
                f"{self.name}: row has {len(values)} values, expected "
                f"{len(self.columns)}")
        self.rows.append([str(v) for v in values])
        if len(self.rows) > self.max_rows:
            self.rows.pop(0)
            if self.selected is not None:
                self.selected = max(0, self.selected - 1)

    def clear(self) -> None:
        self.rows = []
        self.selected = None

    def on_select(self, callback: Callable[[int], None]) -> None:
        self._on_select = callback

    def select(self, index: int) -> None:
        if not 0 <= index < len(self.rows):
            raise WidgetError(f"{self.name}: no row {index}")
        self.selected = index
        if self._on_select is not None:
            self._on_select(index)

    def _fit(self, text: str, width: int) -> str:
        return text[:width].ljust(width)

    def render(self) -> List[str]:
        header = " | ".join(self._fit(c, w)
                            for c, w in zip(self.columns, self.widths))
        lines = [header, "-" * len(header)]
        for index, row in enumerate(self.rows):
            marker = ">" if index == self.selected else " "
            lines.append(marker + " | ".join(
                self._fit(v, w) for v, w in zip(row, self.widths)))
        return lines


class Form(Widget):
    """A titled stack of widgets with name-based access."""

    def __init__(self, name: str, title: Optional[str] = None):
        super().__init__(name)
        self.title = title if title is not None else name
        self._widgets: Dict[str, Widget] = {}
        self._order: List[str] = []

    def add(self, widget: Widget) -> Widget:
        if widget.name in self._widgets:
            raise WidgetError(f"duplicate widget name {widget.name!r}")
        self._widgets[widget.name] = widget
        self._order.append(widget.name)
        return widget

    def widget(self, name: str) -> Widget:
        try:
            return self._widgets[name]
        except KeyError:
            raise WidgetError(f"form {self.name!r} has no widget "
                              f"{name!r}") from None

    def widgets(self) -> List[Widget]:
        return [self._widgets[n] for n in self._order]

    def set_field(self, name: str, value: Any) -> None:
        widget = self.widget(name)
        if not isinstance(widget, TextField):
            raise WidgetError(f"{name!r} is not a text field")
        widget.set(value)

    def field_value(self, name: str) -> str:
        widget = self.widget(name)
        if not isinstance(widget, TextField):
            raise WidgetError(f"{name!r} is not a text field")
        return widget.value

    def press(self, name: str) -> None:
        widget = self.widget(name)
        if not isinstance(widget, Button):
            raise WidgetError(f"{name!r} is not a button")
        widget.presses += 1
        if widget.action is not None:
            widget.action(self)

    def render(self) -> List[str]:
        bar = "=" * max(len(self.title) + 4, 20)
        lines = [bar, f"  {self.title}", bar]
        for name in self._order:
            lines.extend("  " + line
                         for line in self._widgets[name].render())
        return lines

    def render_text(self) -> str:
        return "\n".join(self.render())
