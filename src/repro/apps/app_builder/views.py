"""Views: declarative object-to-row formatting.

Section 5: the News Monitor's summary list "is defined by a 'view' that
specifies a set of named attributes from incoming objects and formatting
information."  A :class:`View` is exactly that — attribute names plus
column widths — applied through the meta-object protocol, so it works on
any object type, including ones defined after the view was.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

from ...objects import DataObject

__all__ = ["View", "ViewColumn"]


@dataclass(frozen=True)
class ViewColumn:
    """One column: which attribute, how wide, optional header override."""

    attribute: str
    width: int = 16
    header: str = ""

    def title(self) -> str:
        return self.header or self.attribute


class View:
    """A named attribute projection with formatting information."""

    def __init__(self, name: str, columns: Sequence[ViewColumn]):
        if not columns:
            raise ValueError(f"view {name!r} needs at least one column")
        self.name = name
        self.columns = list(columns)

    @classmethod
    def of(cls, name: str, *specs: Tuple[str, int]) -> "View":
        """Shorthand: ``View.of("headlines", ("headline", 40), ...)``."""
        return cls(name, [ViewColumn(attr, width) for attr, width in specs])

    def header(self) -> str:
        return " | ".join(c.title()[: c.width].ljust(c.width)
                          for c in self.columns)

    def row(self, obj: DataObject) -> str:
        """Format one object.  Undeclared/unset attributes render blank —
        the view never fails on a type it has not seen before."""
        cells: List[str] = []
        for column in self.columns:
            cells.append(self._cell(obj, column))
        return " | ".join(cells)

    def _cell(self, obj: DataObject, column: ViewColumn) -> str:
        value: Any = ""
        if isinstance(obj, DataObject):
            try:
                value = obj.get(column.attribute)
            except Exception:
                value = ""   # attribute not declared on this type
        if value is None:
            value = ""
        elif isinstance(value, list):
            value = ",".join(str(v) for v in value)
        return str(value)[: column.width].ljust(column.width)

    def table(self, objects: Sequence[DataObject]) -> List[str]:
        lines = [self.header(), "-" * len(self.header())]
        lines.extend(self.row(obj) for obj in objects)
        return lines
