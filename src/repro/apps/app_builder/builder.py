"""The Graphical Application Builder (Section 5.1).

    "The application builder is an interpreter-driven, user interface
    toolkit. ... All high-level application behavior is encoded in the
    interpreted language; only low-level behavior that is common to many
    applications is actually compiled. ... Services are self-describing,
    so users can inspect the interface description for each service.
    Using that information, a user can quickly construct a basic user
    interface for any service."

Two capabilities implement that paragraph:

* :meth:`ApplicationBuilder.form_for_service` — generate a working form
  (field per parameter, button per operation) purely from a discovered
  service's interface metadata; pressing the button performs the RMI
  call and writes the result into the form.  No compilation, no stubs.
* TDL scripting — the builder installs widget builtins (``make-form``,
  ``add-field!``, ``press!`` ...) into a TDL interpreter so application
  behavior is written in the interpreted language.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ...core import RmiClient
from ...objects import DataObject, render
from ...tdl import Interpreter
from .views import View
from .widgets import Button, Form, Label, ListView, TextField, WidgetError

__all__ = ["ApplicationBuilder"]


def _parse_field(value: str, type_name: str) -> Any:
    """Best-effort conversion of typed-in text to the declared type."""
    if type_name == "int":
        return int(value)
    if type_name == "float":
        return float(value)
    if type_name == "bool":
        return value.strip().lower() in ("t", "true", "yes", "1")
    if type_name.startswith("list<"):
        return [v.strip() for v in value.split(",") if v.strip()]
    return value   # strings and anything else pass through


class ApplicationBuilder:
    """Builds interactive applications from metadata and TDL scripts."""

    def __init__(self, tdl: Optional[Interpreter] = None):
        self.tdl = tdl if tdl is not None else Interpreter()
        self.forms: Dict[str, Form] = {}
        self._install_tdl_builtins()

    # ------------------------------------------------------------------
    # metadata-driven UI generation
    # ------------------------------------------------------------------
    def form_for_service(self, rmi: RmiClient,
                         name: Optional[str] = None) -> Form:
        """A form for a discovered service, one section per operation.

        Requires the RMI client to have completed at least one discovery
        (so ``rmi.server_interface`` is populated); or call
        :meth:`form_for_interface` with an interface description.
        """
        interface = rmi.server_interface
        if interface is None:
            raise WidgetError(
                "service interface not yet discovered; make a call first "
                "or pass the interface explicitly")
        return self.form_for_interface(interface, rmi,
                                       name or rmi.service_subject)

    def form_for_interface(self, interface: Dict, rmi: RmiClient,
                           name: str) -> Form:
        form = Form(name, title=f"Service: {interface.get('name', name)}")
        for op in interface.get("operations", []):
            op_name = op["name"]
            form.add(Label(f"{op_name}__head",
                           f"-- {op_name} -> {op.get('result', 'void')}"))
            for param in op.get("params", []):
                form.add(TextField(f"{op_name}.{param['name']}",
                                   label=f"{param['name']} "
                                         f"({param['type']})"))
            result_label = Label(f"{op_name}.result", "(not called)")

            def action(form_, op=op, result_label=result_label):
                self._invoke(form_, rmi, op, result_label)

            form.add(Button(f"{op_name}.call", label=f"Call {op_name}",
                            action=action))
            form.add(result_label)
        self.forms[form.name] = form
        return form

    def _invoke(self, form: Form, rmi: RmiClient, op: Dict,
                result_label: Label) -> None:
        args: Dict[str, Any] = {}
        for param in op.get("params", []):
            raw = form.field_value(f"{op['name']}.{param['name']}")
            try:
                args[param["name"]] = _parse_field(raw, param["type"])
            except ValueError:
                result_label.set(
                    f"error: {param['name']} must be {param['type']}")
                return
        result_label.set("(pending)")

        def on_result(value: Any, error: Optional[str]) -> None:
            if error is not None:
                result_label.set(f"error: {error}")
            elif isinstance(value, DataObject):
                result_label.set(render(value))
            elif isinstance(value, list):
                result_label.set(f"[{len(value)} results] " + "; ".join(
                    (v.get("headline", v.oid)
                     if isinstance(v, DataObject) else str(v))
                    for v in value[:5]))
            else:
                result_label.set(str(value))

        rmi.call(op["name"], args, on_result)

    def form_for_object(self, obj: DataObject,
                        name: Optional[str] = None) -> Form:
        """An editor form for any data object, one field per attribute."""
        form = Form(name or f"edit-{obj.oid}",
                    title=f"Object {obj.oid} <{obj.type_name}>")
        for attr_name in obj.attribute_names():
            field = TextField(
                attr_name,
                label=f"{attr_name} ({obj.attribute_type(attr_name)})")
            value = obj.get(attr_name)
            if value is not None and not isinstance(value, DataObject):
                field.set(value if not isinstance(value, list)
                          else ",".join(map(str, value)))
            form.add(field)
        self.forms[form.name] = form
        return form

    # ------------------------------------------------------------------
    # TDL scripting surface
    # ------------------------------------------------------------------
    def run_script(self, source: str) -> Any:
        """Run a TDL script with the widget builtins available."""
        return self.tdl.eval_text(source)

    def _install_tdl_builtins(self) -> None:
        tdl = self.tdl

        def make_form(name, title=None):
            form = Form(str(name), title=str(title) if title else None)
            self.forms[form.name] = form
            return form

        tdl.define("make-form", make_form)
        tdl.define("get-form", lambda name: self.forms[str(name)])
        tdl.define("add-label!", lambda form, name, text="":
                   form.add(Label(str(name), str(text))))
        tdl.define("add-field!", lambda form, name, label=None:
                   form.add(TextField(str(name))))
        tdl.define("add-button!", lambda form, name, fn:
                   form.add(Button(str(name),
                                   action=lambda f: fn(f))))
        tdl.define("add-list!", lambda form, name, columns:
                   form.add(ListView(str(name),
                                     [str(c) for c in columns])))
        tdl.define("set-field!", lambda form, name, value:
                   form.set_field(str(name), value))
        tdl.define("field-value", lambda form, name:
                   form.field_value(str(name)))
        tdl.define("set-label!", lambda form, name, text:
                   form.widget(str(name)).set(str(text)))
        tdl.define("press!", lambda form, name: form.press(str(name)))
        tdl.define("add-row!", lambda listview, values:
                   listview.add_row(values))
        tdl.define("get-widget", lambda form, name: form.widget(str(name)))
        tdl.define("render-form", lambda form: form.render_text())
        tdl.define("make-view", lambda name, *specs: View.of(
            str(name), *[(str(s[0]), int(s[1])) for s in specs]))
        tdl.define("view-row", lambda view, obj: view.row(obj))
