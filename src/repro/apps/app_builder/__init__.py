"""The interpreter-driven application builder (Section 5.1)."""

from .widgets import (Button, Form, Label, ListView, TextField, Widget,
                      WidgetError)
from .views import View, ViewColumn
from .builder import ApplicationBuilder

__all__ = ["ApplicationBuilder", "Button", "Form", "Label", "ListView",
           "TextField", "View", "ViewColumn", "Widget", "WidgetError"]
