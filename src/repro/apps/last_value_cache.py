"""A last-value cache (LVC) service.

Anonymous pub/sub deliberately gives late joiners no history: "a new
subscriber ... will start receiving immediately new objects" (Section
3.1) — and nothing older.  For market-data-style subjects where the
*current* value is what matters, the classic companion service (which
the Information Bus's commercial descendants shipped as exactly this)
is a cache that subscribes to everything, remembers the latest object
per subject, and answers snapshot requests over RMI.

A late joiner then does snapshot-then-subscribe:

1. subscribe to the live subjects (start buffering),
2. RMI the LVC for current values,
3. apply the snapshot, then the buffered updates.

:class:`LastValueCache` is the server; :func:`snapshot_then_subscribe`
packages the client-side pattern.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..core import BusClient, MessageInfo, RmiClient, RmiServer
from ..objects import (OperationSpec, ParamSpec, ServiceObject,
                       TypeDescriptor)

__all__ = ["LVC_SERVICE_TYPE", "LastValueCache", "snapshot_then_subscribe"]

LVC_SERVICE_TYPE = "last_value_cache_service"


def _register_service_type(registry) -> None:
    if registry.has(LVC_SERVICE_TYPE):
        return
    registry.register(TypeDescriptor(
        LVC_SERVICE_TYPE,
        operations=[
            OperationSpec("current",
                          params=(ParamSpec("subject", "string"),),
                          result_type="any",
                          doc="the most recent object on a subject, or "
                              "nil if never seen"),
            OperationSpec("snapshot",
                          params=(ParamSpec("pattern", "string"),),
                          result_type="map<any>",
                          doc="subject -> latest object for every cached "
                              "subject matching the pattern"),
            OperationSpec("cached_subjects", result_type="list<string>"),
        ],
        doc="current-value snapshots for bus subjects"))


class LastValueCache:
    """Caches the latest object per subject; serves snapshots over RMI."""

    def __init__(self, client: BusClient, patterns: List[str],
                 service_subject: str = "svc.lvc",
                 max_subjects: int = 100_000):
        self.client = client
        self.max_subjects = max_subjects
        self.updates_seen = 0
        self._latest: Dict[str, Any] = {}
        self._subscriptions = [client.subscribe(p, self._on_message)
                               for p in patterns]
        _register_service_type(client.registry)
        service = ServiceObject(client.registry, LVC_SERVICE_TYPE)
        service.implement("current", self._current)
        service.implement("snapshot", self._snapshot)
        service.implement("cached_subjects",
                          lambda: sorted(self._latest))
        self.rmi = RmiServer(client, service_subject, service)

    def _on_message(self, subject: str, obj: Any,
                    info: MessageInfo) -> None:
        if subject not in self._latest and \
                len(self._latest) >= self.max_subjects:
            return   # bounded: refuse new subjects rather than grow
        self._latest[subject] = obj
        self.updates_seen += 1

    def _current(self, subject: str) -> Any:
        return self._latest.get(subject)

    def _snapshot(self, pattern: str) -> Dict[str, Any]:
        from ..core import subject_matches
        return {subject: obj for subject, obj in self._latest.items()
                if subject_matches(pattern, subject)}

    def __len__(self) -> int:
        return len(self._latest)

    def stop(self) -> None:
        for subscription in self._subscriptions:
            self.client.unsubscribe(subscription)
        self._subscriptions = []
        self.rmi.stop()


def snapshot_then_subscribe(
        client: BusClient, pattern: str,
        on_value: Callable[[str, Any, bool], None],
        lvc_subject: str = "svc.lvc",
        on_ready: Optional[Callable[[], None]] = None) -> None:
    """The late-joiner pattern: live subscribe, fetch a snapshot, replay.

    ``on_value(subject, obj, is_snapshot)`` fires once per snapshot entry
    and then for every live update.  Updates arriving while the snapshot
    is in flight are buffered and applied afterwards (skipping subjects
    the buffer already superseded is left to the caller — values are
    delivered oldest-first, so applying in order is always correct).
    """
    state = {"ready": False, "buffer": []}

    def on_live(subject: str, obj: Any, info: MessageInfo) -> None:
        if state["ready"]:
            on_value(subject, obj, False)
        else:
            state["buffer"].append((subject, obj))

    client.subscribe(pattern, on_live)
    rmi = RmiClient(client, lvc_subject)

    def on_snapshot(values: Optional[Dict[str, Any]],
                    error: Optional[str]) -> None:
        for subject in sorted(values or {}):
            on_value(subject, (values or {})[subject], True)
        state["ready"] = True
        for subject, obj in state["buffer"]:
            on_value(subject, obj, False)
        state["buffer"] = []
        rmi.close()
        if on_ready is not None:
            on_ready()

    rmi.call("snapshot", {"pattern": pattern}, on_snapshot)
