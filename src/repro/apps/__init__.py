"""Applications built on the Information Bus (Section 5)."""

from .news_monitor import DEFAULT_HEADLINE_VIEW, NewsMonitor
from .bus_browser import BusBrowser, ServiceEntry, SubjectStats
from .news_monitor_form import NewsMonitorForm
from .last_value_cache import (LVC_SERVICE_TYPE, LastValueCache,
                               snapshot_then_subscribe)
from .keyword_generator import (DEFAULT_CATEGORIES, KEYWORD_SERVICE_TYPE,
                                KeywordGenerator)
from .app_builder import ApplicationBuilder, Form, View
from .factory import (ALARM_TYPE, CellController, EQUIPMENT_CONFIG_TYPE,
                      Equipment, FactoryConfigSystem, SENSOR_READING_TYPE,
                      register_config_types, register_factory_types,
                      sensor_subject)

__all__ = [
    "ALARM_TYPE", "ApplicationBuilder", "BusBrowser", "CellController",
    "DEFAULT_CATEGORIES", "DEFAULT_HEADLINE_VIEW", "EQUIPMENT_CONFIG_TYPE",
    "Equipment", "FactoryConfigSystem", "Form", "KEYWORD_SERVICE_TYPE",
    "KeywordGenerator", "LVC_SERVICE_TYPE", "LastValueCache",
    "NewsMonitor", "NewsMonitorForm", "snapshot_then_subscribe",
    "SENSOR_READING_TYPE", "View",
    "ServiceEntry", "SubjectStats", "register_config_types",
    "register_factory_types", "sensor_subject",
]
