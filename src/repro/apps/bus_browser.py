"""The bus browser: a directory and traffic monitor for one bus.

Section 5.1: "It is possible to examine the list of available services
on the Information Bus by using various name services.  Services are
self-describing, so users can inspect the interface description for
each service."

The :class:`BusBrowser` is such a tool:

* a **service directory** built from the ``_svc.advert`` announcements
  every :class:`~repro.core.rmi.RmiServer` publishes (up / periodic
  presence / down) — services whose presence lapses are marked stale;
* a **traffic monitor** counting messages and bytes per subject prefix
  for everything its wildcard subscriptions can see;
* a **telemetry console** subscribed to the reserved ``_bus.stat.>``
  space: every daemon (and router) publishing registry snapshots shows
  up in :meth:`telemetry`, and :meth:`bus_top` aggregates the fleet's
  headline counters — the bus monitored through the bus itself;
* :meth:`inspect` fetches a live service's full interface description
  through the ordinary discovery protocol, so a user can go from "what
  exists?" to "what operations does it have?" to driving it via the
  application builder, all from metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core import BusClient, Inquiry, MessageInfo, STAT_SUBJECT_PREFIX
from ..core.metrics import sum_counters
from ..core.rmi import SERVICE_ADVERT_SUBJECT

__all__ = ["BusBrowser", "HostTelemetry", "ServiceEntry", "SubjectStats"]

#: A service is stale after missing this many presence periods.
_STALE_AFTER = 3.0


@dataclass
class ServiceEntry:
    """One advertised service implementation."""

    service_subject: str
    server: str                 # client id of the serving application
    interface_name: str
    operations: List[str]
    first_seen: float
    last_seen: float
    down: bool = False

    def alive(self, now: float) -> bool:
        return not self.down and now - self.last_seen < _STALE_AFTER


@dataclass
class SubjectStats:
    """Traffic accounting for one concrete subject."""

    subject: str
    messages: int = 0
    bytes: int = 0
    senders: set = field(default_factory=set)
    first_seen: float = 0.0
    last_seen: float = 0.0

    def rate(self, now: float) -> float:
        window = max(now - self.first_seen, 1e-9)
        return self.messages / window


@dataclass
class HostTelemetry:
    """The latest ``_bus.stat.*`` snapshot from one publishing source.

    On a sharded host every shard plane is its own source (subject
    ``..daemon.s<k>``, one snapshot stream per plane); ``shard`` labels
    which plane this row describes, ``None`` for unsharded publishers.
    """

    source: str                  # "node00.daemon", "node00.daemon.s1", ...
    interval: float              # the publisher's advertised period
    first_seen: float
    last_seen: float
    metrics: Dict[str, Any] = field(default_factory=dict)
    snapshots: int = 0
    shard: Optional[int] = None

    def alive(self, now: float) -> bool:
        """Fresh iff a snapshot arrived within ~3 publisher periods
        (missing that many means the publisher is down or unreachable)."""
        period = self.interval if self.interval > 0 else 1.0
        return now - self.last_seen < _STALE_AFTER * period


class BusBrowser:
    """A monitoring application: service directory + per-subject traffic."""

    def __init__(self, client: BusClient,
                 watch_patterns: Optional[List[str]] = None):
        self.client = client
        self.services: Dict[tuple, ServiceEntry] = {}
        self.subjects: Dict[str, SubjectStats] = {}
        #: telemetry sources keyed by "<host>.<kind>" (subject suffix)
        self.stats: Dict[str, HostTelemetry] = {}
        self._subscriptions = [
            client.subscribe(SERVICE_ADVERT_SUBJECT, self._on_advert),
            # reserved subjects are invisible to plain ">" — the
            # telemetry plane must be watched explicitly
            client.subscribe(f"{STAT_SUBJECT_PREFIX}.>", self._on_stat),
        ]
        for pattern in (watch_patterns or [">"]):
            self._subscriptions.append(
                client.subscribe(pattern, self._on_traffic))

    # ------------------------------------------------------------------
    # service directory
    # ------------------------------------------------------------------
    def _on_advert(self, subject: str, payload: Any,
                   info: MessageInfo) -> None:
        if not isinstance(payload, dict) or "service" not in payload:
            return
        key = (payload["service"], payload.get("server"))
        now = self.client.sim.now
        entry = self.services.get(key)
        if entry is None:
            entry = ServiceEntry(
                service_subject=payload["service"],
                server=payload.get("server", "?"),
                interface_name=payload.get("interface_name", "?"),
                operations=list(payload.get("operations", [])),
                first_seen=now, last_seen=now)
            self.services[key] = entry
        entry.last_seen = now
        entry.operations = list(payload.get("operations",
                                            entry.operations))
        if payload.get("action") == "down":
            entry.down = True
        elif entry.down:
            entry.down = False   # the service came back

    def live_services(self) -> List[ServiceEntry]:
        """Currently alive services, one row per (subject, server)."""
        now = self.client.sim.now
        return sorted((e for e in self.services.values() if e.alive(now)),
                      key=lambda e: (e.service_subject, e.server))

    def service_subjects(self) -> List[str]:
        """Distinct subjects with at least one live server."""
        return sorted({e.service_subject for e in self.live_services()})

    def inspect(self, service_subject: str,
                on_result: Callable[[List[dict]], None],
                window: float = 0.3) -> None:
        """Fetch the live interface descriptions for a service subject.

        Uses the ordinary discovery protocol; ``on_result`` receives the
        interface description dicts of every responding server.
        """
        Inquiry(self.client, service_subject,
                lambda responses: on_result(
                    [r.info.get("interface") for r in responses
                     if r.info.get("interface")]),
                window=window)

    # ------------------------------------------------------------------
    # traffic monitoring
    # ------------------------------------------------------------------
    def _on_traffic(self, subject: str, payload: Any,
                    info: MessageInfo) -> None:
        stats = self.subjects.get(subject)
        now = self.client.sim.now
        if stats is None:
            stats = SubjectStats(subject=subject, first_seen=now)
            self.subjects[subject] = stats
        stats.messages += 1
        stats.bytes += info.size
        stats.senders.add(info.sender)
        stats.last_seen = now

    def top_subjects(self, n: int = 10) -> List[SubjectStats]:
        return sorted(self.subjects.values(), key=lambda s: -s.messages)[:n]

    def total_messages(self) -> int:
        return sum(s.messages for s in self.subjects.values())

    # ------------------------------------------------------------------
    # telemetry (the reserved ``_bus.stat.*`` space)
    # ------------------------------------------------------------------
    def _on_stat(self, subject: str, payload: Any,
                 info: MessageInfo) -> None:
        if not isinstance(payload, dict) or "metrics" not in payload:
            return
        source = subject.split(".", 2)[-1]   # "_bus.stat.<host>.<kind>"
        now = self.client.sim.now
        entry = self.stats.get(source)
        if entry is None:
            entry = HostTelemetry(source=source,
                                  interval=payload.get("interval", 0.0),
                                  first_seen=now, last_seen=now)
            self.stats[source] = entry
        entry.interval = payload.get("interval", entry.interval)
        entry.metrics = payload["metrics"]
        entry.shard = payload.get("shard", entry.shard)
        entry.last_seen = now
        entry.snapshots += 1

    def telemetry(self) -> List[HostTelemetry]:
        """Telemetry sources with a fresh snapshot, sorted by source.

        A sharded host contributes one row per shard plane (the shard
        id is on the row); :meth:`bus_top` sums across them, so fleet
        totals cover every plane without double counting.
        """
        now = self.client.sim.now
        return sorted((t for t in self.stats.values() if t.alive(now)),
                      key=lambda t: t.source)

    def bus_top(self) -> Dict[str, int]:
        """A ``top``-style fleet aggregate over every fresh snapshot.

        Sums the headline counters of all live telemetry sources —
        daemons and routers alike, across router-bridged segments when
        stat bridging is on — so one browser shows the whole bus.
        """
        totals = {"hosts": 0, "published": 0, "delivered": 0,
                  "dropped": 0, "deferred": 0, "retransmissions": 0}
        for entry in self.telemetry():
            totals["hosts"] += 1
            metrics = entry.metrics
            # the reliable layer re-counts deliveries per session and
            # router legs mirror their WAN queue's counters, so sums are
            # scoped by family to count each event exactly once
            daemon = {n: e for n, e in metrics.items()
                      if n.startswith("daemon.")}
            flow = {n: e for n, e in metrics.items()
                    if n.startswith("flow.")}
            totals["published"] += sum_counters(daemon, [".published"])
            totals["delivered"] += sum_counters(daemon, [".delivered"])
            totals["dropped"] += sum_counters(
                flow, [".dropped_newest", ".dropped_oldest"])
            totals["dropped"] += sum_counters(
                metrics, [".corrupt_dropped", ".unresolved_dropped",
                          ".messages_dropped"])
            totals["deferred"] += sum_counters(flow, [".deferred"])
            totals["deferred"] += sum_counters(daemon,
                                               [".guaranteed_deferred"])
            totals["retransmissions"] += sum_counters(
                metrics, [".retransmissions"])
        return totals

    # ------------------------------------------------------------------
    def report(self) -> str:
        """A human-readable snapshot (what an operator console shows)."""
        now = self.client.sim.now
        lines = ["== services =="]
        for entry in self.live_services():
            lines.append(f"  {entry.service_subject:<28} {entry.server:<22}"
                         f" ops={','.join(entry.operations)}")
        if len(lines) == 1:
            lines.append("  (none)")
        lines.append("== busiest subjects ==")
        for stats in self.top_subjects(8):
            lines.append(f"  {stats.subject:<32} {stats.messages:>7} msgs"
                         f" {stats.bytes:>10} B"
                         f" {stats.rate(now):>8.1f}/s"
                         f" senders={len(stats.senders)}")
        if len(self.subjects) == 0:
            lines.append("  (no traffic)")
        lines.append("== telemetry ==")
        live = self.telemetry()
        if live:
            top = self.bus_top()
            lines.append(
                f"  {top['hosts']} sources:"
                f" pub={top['published']} dlv={top['delivered']}"
                f" drop={top['dropped']} defer={top['deferred']}"
                f" rexmit={top['retransmissions']}")
            for entry in live:
                shard = (f" shard={entry.shard}"
                         if entry.shard is not None else "")
                lines.append(f"  {entry.source:<28}"
                             f" snapshots={entry.snapshots}"
                             f" instruments={len(entry.metrics)}{shard}")
        else:
            lines.append("  (no stat publishers)")
        return "\n".join(lines)

    def stop(self) -> None:
        for subscription in self._subscriptions:
            self.client.unsubscribe(subscription)
        self._subscriptions = []
