"""The Factory Configuration System (mentioned in Section 5.1).

"The system for storing factory control information": equipment
configurations live in an Object Repository store and are served over
RMI, so the application builder can generate its front-end from the
interface metadata — which is precisely what the paper says it was used
for ("the frontend to a Factory Configuration System").

Configuration changes are also *published* (on
``<plant>.config.<station>``), so running equipment picks up new recipes
without polling.
"""

from __future__ import annotations

from typing import List, Optional

from ...core import BusClient, RmiServer
from ...objects import (AttributeSpec, DataObject, OperationSpec, ParamSpec,
                        ServiceObject, TypeDescriptor, TypeRegistry)
from ...repository import Database, ObjectStore

__all__ = ["EQUIPMENT_CONFIG_TYPE", "FACTORY_CONFIG_SERVICE_TYPE",
           "FactoryConfigSystem", "register_config_types"]

EQUIPMENT_CONFIG_TYPE = "equipment_config"
FACTORY_CONFIG_SERVICE_TYPE = "factory_config_service"


def register_config_types(registry: TypeRegistry) -> None:
    """Register config object + service types (idempotent)."""
    if not registry.has(EQUIPMENT_CONFIG_TYPE):
        registry.register(TypeDescriptor(
            EQUIPMENT_CONFIG_TYPE,
            attributes=[
                AttributeSpec("plant", "string"),
                AttributeSpec("station", "string"),
                AttributeSpec("equipment_type", "string",
                              doc="e.g. 'litho', 'etch'"),
                AttributeSpec("recipe", "string",
                              doc="the active process recipe name"),
                AttributeSpec("parameters", "map<float>", required=False),
                AttributeSpec("online", "bool"),
            ],
            doc="control configuration for one station"))
    if not registry.has(FACTORY_CONFIG_SERVICE_TYPE):
        registry.register(TypeDescriptor(
            FACTORY_CONFIG_SERVICE_TYPE,
            operations=[
                OperationSpec("get_config",
                              params=(ParamSpec("station", "string"),),
                              result_type=EQUIPMENT_CONFIG_TYPE),
                OperationSpec("set_config",
                              params=(ParamSpec(
                                  "config", EQUIPMENT_CONFIG_TYPE),)),
                OperationSpec("stations", result_type="list<string>"),
                OperationSpec("take_offline",
                              params=(ParamSpec("station", "string"),)),
            ],
            doc="store and serve factory control information"))


class FactoryConfigSystem:
    """Stores equipment configs; serves them over RMI; publishes changes."""

    def __init__(self, client: BusClient, plant: str,
                 db: Optional[Database] = None,
                 service_subject: Optional[str] = None):
        self.client = client
        self.plant = plant
        register_config_types(client.registry)
        self.store = ObjectStore(db or Database(f"{plant}.config"),
                                 client.registry)
        service = ServiceObject(client.registry,
                                FACTORY_CONFIG_SERVICE_TYPE)
        service.implement("get_config", self._get_config)
        service.implement("set_config", self._set_config)
        service.implement("stations", self._stations)
        service.implement("take_offline", self._take_offline)
        self.rmi = RmiServer(client,
                             service_subject or f"svc.{plant}.config",
                             service)
        self.changes_published = 0

    # ------------------------------------------------------------------
    def _find(self, station: str) -> Optional[DataObject]:
        hits = self.store.query(EQUIPMENT_CONFIG_TYPE, station=station,
                                plant=self.plant)
        return hits[0] if hits else None

    def _get_config(self, station: str) -> DataObject:
        config = self._find(station)
        if config is None:
            raise KeyError(f"no configuration for station {station!r}")
        return config

    def _set_config(self, config: DataObject) -> None:
        existing = self._find(config.get("station"))
        if existing is not None and existing.oid != config.oid:
            self.store.delete(existing.oid)
        self.store.store(config)
        self._announce(config)

    def _stations(self) -> List[str]:
        return sorted(c.get("station")
                      for c in self.store.query(EQUIPMENT_CONFIG_TYPE,
                                                plant=self.plant))

    def _take_offline(self, station: str) -> None:
        config = self._get_config(station)
        config.set("online", False)
        self.store.store(config)
        self._announce(config)

    def _announce(self, config: DataObject) -> None:
        self.changes_published += 1
        self.client.publish(
            f"{self.plant}.config.{config.get('station')}", config)

    def stop(self) -> None:
        self.rmi.stop()
