"""Factory-floor equipment and the cell controller.

The paper's motivating subject "fab5.cc.litho8.thick" translates to
"plant fab5, cell controller, lithography station litho8, wafer
thickness" — so this module publishes exactly that traffic: simulated
process equipment emitting sensor readings on hierarchical subjects, and
a cell controller that watches them and raises alarms.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ...core import BusClient, MessageInfo
from ...objects import (AttributeSpec, DataObject, TypeDescriptor,
                        TypeRegistry)
from ...sim.kernel import PeriodicTimer

__all__ = ["Equipment", "CellController", "SENSOR_READING_TYPE",
           "ALARM_TYPE", "register_factory_types", "sensor_subject"]

SENSOR_READING_TYPE = "sensor_reading"
ALARM_TYPE = "equipment_alarm"


def register_factory_types(registry: TypeRegistry) -> None:
    """Register the factory data types (idempotent)."""
    if not registry.has(SENSOR_READING_TYPE):
        registry.register(TypeDescriptor(
            SENSOR_READING_TYPE,
            attributes=[
                AttributeSpec("plant", "string"),
                AttributeSpec("station", "string"),
                AttributeSpec("metric", "string"),
                AttributeSpec("value", "float"),
                AttributeSpec("units", "string", required=False),
            ],
            doc="one sensor sample from a piece of process equipment"))
    if not registry.has(ALARM_TYPE):
        registry.register(TypeDescriptor(
            ALARM_TYPE,
            attributes=[
                AttributeSpec("plant", "string"),
                AttributeSpec("station", "string"),
                AttributeSpec("metric", "string"),
                AttributeSpec("value", "float"),
                AttributeSpec("limit", "float"),
                AttributeSpec("direction", "string",
                              doc="'high' or 'low'"),
            ],
            doc="a threshold violation raised by the cell controller"))


def sensor_subject(plant: str, station: str, metric: str) -> str:
    """E.g. ``fab5.cc.litho8.thick`` — straight from the paper."""
    return f"{plant}.cc.{station}.{metric}"


class Equipment:
    """One station publishing sensor readings on a timer.

    ``metrics`` maps metric name to (nominal value, noise amplitude,
    units); readings wander deterministically around nominal using the
    simulator's seeded RNG.
    """

    def __init__(self, client: BusClient, plant: str, station: str,
                 metrics: Dict[str, Tuple[float, float, str]],
                 interval: float = 1.0, follow_config: bool = False):
        self.client = client
        self.plant = plant
        self.station = station
        self.metrics = dict(metrics)
        self.readings_published = 0
        self.recipe: Optional[str] = None
        self.online = True
        self.config_updates = 0
        register_factory_types(client.registry)
        self._rng = client.sim.rng(f"equipment.{plant}.{station}")
        self._config_subscription = None
        if follow_config:
            # live recipe distribution: the Factory Configuration System
            # publishes changes on <plant>.config.<station>; equipment
            # applies them without restarting (R2 on the factory floor)
            self._config_subscription = client.subscribe(
                f"{plant}.config.{station}", self._on_config)
        self._timer: Optional[PeriodicTimer] = PeriodicTimer(
            client.sim, interval, self._sample,
            name=f"equipment.{station}")

    def _on_config(self, subject: str, obj: Any,
                   info: MessageInfo) -> None:
        if not (isinstance(obj, DataObject)
                and obj.is_a("equipment_config")):
            return
        self.config_updates += 1
        self.recipe = obj.get("recipe")
        self.online = bool(obj.get("online"))
        # recipe parameters named after metrics retune their nominals
        for metric, value in (obj.get("parameters") or {}).items():
            if metric in self.metrics:
                _, noise, units = self.metrics[metric]
                self.metrics[metric] = (float(value), noise, units)

    def _sample(self) -> None:
        if not self.client.daemon.up or not self.online:
            return
        for metric, (nominal, noise, units) in self.metrics.items():
            value = nominal + (self._rng.random() * 2 - 1) * noise
            reading = DataObject(self.client.registry, SENSOR_READING_TYPE, {
                "plant": self.plant, "station": self.station,
                "metric": metric, "value": value, "units": units})
            self.client.publish(
                sensor_subject(self.plant, self.station, metric), reading)
            self.readings_published += 1

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        if self._config_subscription is not None:
            self.client.unsubscribe(self._config_subscription)
            self._config_subscription = None


class CellController:
    """Watches every station in a plant; raises alarms on limit breaches.

    Subscribes with a wildcard (``<plant>.cc.*.*``), so stations added to
    the plant later are monitored with no reconfiguration (P4 again).
    """

    def __init__(self, client: BusClient, plant: str,
                 limits: Optional[Dict[str, Tuple[float, float]]] = None):
        self.client = client
        self.plant = plant
        #: metric -> (low limit, high limit)
        self.limits: Dict[str, Tuple[float, float]] = dict(limits or {})
        self.latest: Dict[Tuple[str, str], float] = {}
        self.readings_seen = 0
        self.alarms_raised = 0
        register_factory_types(client.registry)
        self._subscription = client.subscribe(f"{plant}.cc.*.*",
                                              self._on_reading)

    def set_limit(self, metric: str, low: float, high: float) -> None:
        self.limits[metric] = (low, high)

    def _on_reading(self, subject: str, obj: Any,
                    info: MessageInfo) -> None:
        if not (isinstance(obj, DataObject)
                and obj.is_a(SENSOR_READING_TYPE)):
            return
        station, metric = obj.get("station"), obj.get("metric")
        value = obj.get("value")
        self.latest[(station, metric)] = value
        self.readings_seen += 1
        bounds = self.limits.get(metric)
        if bounds is None:
            return
        low, high = bounds
        direction = "low" if value < low else "high" if value > high \
            else None
        if direction is None:
            return
        self.alarms_raised += 1
        alarm = DataObject(self.client.registry, ALARM_TYPE, {
            "plant": self.plant, "station": station, "metric": metric,
            "value": value, "limit": low if direction == "low" else high,
            "direction": direction})
        self.client.publish(f"{self.plant}.alarm.{station}.{metric}",
                            alarm)

    def reading(self, station: str, metric: str) -> Optional[float]:
        return self.latest.get((station, metric))

    def stop(self) -> None:
        self.client.unsubscribe(self._subscription)
