"""Factory-floor applications: equipment, cell controller, config system."""

from .equipment import (ALARM_TYPE, CellController, Equipment,
                        SENSOR_READING_TYPE, register_factory_types,
                        sensor_subject)
from .config_system import (EQUIPMENT_CONFIG_TYPE,
                            FACTORY_CONFIG_SERVICE_TYPE,
                            FactoryConfigSystem, register_config_types)

__all__ = ["ALARM_TYPE", "CellController", "EQUIPMENT_CONFIG_TYPE",
           "Equipment", "FACTORY_CONFIG_SERVICE_TYPE",
           "FactoryConfigSystem", "SENSOR_READING_TYPE",
           "register_config_types", "register_factory_types",
           "sensor_subject"]
