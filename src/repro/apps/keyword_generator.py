"""The Keyword Generator (Section 5.2, Figure 4).

    "The Keyword Generator subscribes to stories on major subjects and
    searches the text of each story for 'keywords' that have been
    designated under several major 'categories.'  For each Story object,
    a list of keywords is constructed as a named Property object of the
    Story object and published under the same subject.  It also supports
    an interactive interface that allows clients to browse categories
    and associated keywords."

It can come on-line at any time; existing monitors start receiving its
Property objects immediately (P4) with no reconfiguration anywhere.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core import BusClient, MessageInfo, RmiServer
from ..objects import (DataObject, OperationSpec, ParamSpec, ServiceObject,
                       TypeDescriptor, is_property, make_property)

__all__ = ["KeywordGenerator", "KEYWORD_SERVICE_TYPE",
           "DEFAULT_CATEGORIES"]

#: The interactive interface's service type ("an instance of a new
#: service type" that monitors can drive via introspection).
KEYWORD_SERVICE_TYPE = "keyword_service"

DEFAULT_CATEGORIES: Dict[str, List[str]] = {
    "semiconductors": ["chip", "fab", "wafer", "yield", "litho",
                       "semiconductor"],
    "markets": ["earnings", "shares", "volume", "rally", "rate"],
    "geography": ["export", "japan", "taiwan", "treasury"],
}


def _register_service_type(registry) -> None:
    if registry.has(KEYWORD_SERVICE_TYPE):
        return
    registry.register(TypeDescriptor(
        KEYWORD_SERVICE_TYPE,
        operations=[
            OperationSpec("categories", result_type="list<string>",
                          doc="the designated keyword categories"),
            OperationSpec("keywords_in",
                          params=(ParamSpec("category", "string"),),
                          result_type="list<string>",
                          doc="the keywords designated under a category"),
            OperationSpec("add_keyword",
                          params=(ParamSpec("category", "string"),
                                  ParamSpec("word", "string")),
                          doc="designate a new keyword at run time"),
        ],
        doc="browse and extend the keyword designations"))


class KeywordGenerator:
    """Annotates stories with keyword properties; serves its config."""

    def __init__(self, client: BusClient,
                 categories: Optional[Dict[str, List[str]]] = None,
                 subjects: Optional[List[str]] = None,
                 service_subject: str = "svc.keywords"):
        self.client = client
        self.categories: Dict[str, List[str]] = {
            category: list(words)
            for category, words in (categories
                                    or DEFAULT_CATEGORIES).items()}
        self.stories_scanned = 0
        self.properties_published = 0
        self._subscriptions = [
            client.subscribe(pattern, self._on_story)
            for pattern in (subjects or ["news.>"])]
        # the interactive interface, exposed over RMI
        _register_service_type(client.registry)
        service = ServiceObject(client.registry, KEYWORD_SERVICE_TYPE)
        service.implement("categories", lambda: sorted(self.categories))
        service.implement("keywords_in", self._keywords_in)
        service.implement("add_keyword", self._add_keyword)
        self.rmi = RmiServer(client, service_subject, service)

    # ------------------------------------------------------------------
    # annotation
    # ------------------------------------------------------------------
    def _on_story(self, subject: str, obj: Any, info: MessageInfo) -> None:
        if not isinstance(obj, DataObject) or is_property(obj):
            return   # ignore scalars and (our own) property publications
        text = self._story_text(obj)
        if text is None:
            return
        self.stories_scanned += 1
        found = self.scan(text)
        if not found:
            return
        prop = make_property(self.client.registry, "keywords", found,
                             ref=obj.oid)
        self.client.publish(subject, prop)   # "under the same subject"
        self.properties_published += 1

    def _story_text(self, obj: DataObject) -> Optional[str]:
        parts = []
        for attr in ("headline", "body"):
            try:
                value = obj.get(attr)
            except Exception:
                continue   # this type does not declare the attribute
            if isinstance(value, str):
                parts.append(value)
        # an object with neither attribute is not story-shaped: skip it
        return " ".join(parts).lower() if parts else None

    def scan(self, text: str) -> Dict[str, List[str]]:
        """Keywords found in ``text``, grouped by category."""
        found: Dict[str, List[str]] = {}
        for category, words in self.categories.items():
            hits = sorted({w for w in words if w in text})
            if hits:
                found[category] = hits
        return found

    # ------------------------------------------------------------------
    # the interactive interface
    # ------------------------------------------------------------------
    def _keywords_in(self, category: str) -> List[str]:
        if category not in self.categories:
            raise KeyError(f"no category {category!r}")
        return sorted(self.categories[category])

    def _add_keyword(self, category: str, word: str) -> None:
        self.categories.setdefault(category, []).append(word.lower())

    def stop(self) -> None:
        for subscription in self._subscriptions:
            self.client.unsubscribe(subscription)
        self._subscriptions = []
        self.rmi.stop()
