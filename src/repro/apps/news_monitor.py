"""The News Monitor (Section 5, Figures 3 and 4).

    "The News Monitor subscribes to and displays all stories of interest
    to its user.  Incoming stories are first displayed in a 'headline
    summary list' ... When the user selects a story in the summary list,
    the entire story is displayed ... by using the object's metadata to
    iterate through all of its attributes and display them (P2)."

And the evolution half (Section 5.2): when a Keyword Generator comes
on-line and starts publishing Property objects on the same subjects, the
monitor "will be able to receive the new data immediately" (P4), and is
"configured to accept Property objects, to associate them with the
objects they reference, and to display them along with the attributes of
an object" — see :meth:`NewsMonitor.select`.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..core import BusClient, MessageInfo
from ..objects import DataObject, PropertyIndex, is_property, render
from .app_builder.views import View

__all__ = ["NewsMonitor", "DEFAULT_HEADLINE_VIEW"]

#: The default headline-summary view: attribute names + widths.
DEFAULT_HEADLINE_VIEW = View.of("headlines",
                                ("topic", 8), ("headline", 48),
                                ("sources", 14))


class NewsMonitor:
    """Subscribes to story subjects and maintains the summary list."""

    def __init__(self, client: BusClient, subjects: Optional[List[str]] = None,
                 view: Optional[View] = None, max_stories: int = 500):
        self.client = client
        self.view = view or DEFAULT_HEADLINE_VIEW
        self.max_stories = max_stories
        self.stories: List[DataObject] = []
        self.properties = PropertyIndex()
        self.stories_received = 0
        self.properties_received = 0
        self.ignored = 0
        self._subscriptions = [
            client.subscribe(pattern, self._on_message)
            for pattern in (subjects or ["news.>"])]

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def _on_message(self, subject: str, obj: Any, info: MessageInfo) -> None:
        if is_property(obj):
            # the Keyword Generator (or any future annotator) at work
            self.properties.add(obj)
            self.properties_received += 1
            return
        if not isinstance(obj, DataObject):
            self.ignored += 1
            return
        self.stories.append(obj)
        self.stories_received += 1
        if len(self.stories) > self.max_stories:
            self.stories.pop(0)

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def headlines(self) -> List[str]:
        """The headline summary list, formatted by the view."""
        return self.view.table(self.stories)

    def select(self, index: int) -> str:
        """Full display of one story: every attribute via the MOP, plus
        any properties other services have attached to it."""
        if not 0 <= index < len(self.stories):
            raise IndexError(f"no story {index}")
        story = self.stories[index]
        lines = [render(story)]
        attached = self.properties.properties_of(story.oid)
        if attached:
            lines.append("")
            lines.append("properties:")
            for prop in attached:
                lines.append(f"  {prop.get('name')}: {prop.get('value')!r}")
        return "\n".join(lines)

    def story_at(self, index: int) -> DataObject:
        return self.stories[index]

    def keywords_for(self, index: int) -> Any:
        """Convenience: the 'keywords' property of story ``index``."""
        story = self.stories[index]
        return self.properties.property_value(story.oid, "keywords")

    def stop(self) -> None:
        for subscription in self._subscriptions:
            self.client.unsubscribe(subscription)
        self._subscriptions = []
