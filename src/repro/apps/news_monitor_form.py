"""The News Monitor's interactive front-end, built with the application
builder's widgets.

Mirrors the paper's description of the monitor UI (Section 5): incoming
stories appear in a headline summary list; selecting a row displays the
entire story — rendered from metadata — together with any Property
objects other services have attached.  The form is an ordinary widget
tree, so TDL scripts can drive it like anything else the builder makes.
"""

from __future__ import annotations

from typing import Optional

from .app_builder.views import View
from .app_builder.widgets import Button, Form, Label, ListView
from .news_monitor import DEFAULT_HEADLINE_VIEW, NewsMonitor

__all__ = ["NewsMonitorForm"]


class NewsMonitorForm:
    """A live form over a :class:`~repro.apps.news_monitor.NewsMonitor`."""

    def __init__(self, monitor: NewsMonitor,
                 view: Optional[View] = None, max_rows: int = 50):
        self.monitor = monitor
        self.view = view or monitor.view or DEFAULT_HEADLINE_VIEW
        self.form = Form("news_monitor", title="News Monitor")
        self._summary = ListView(
            "headlines",
            columns=[c.title() for c in self.view.columns],
            widths=[c.width for c in self.view.columns],
            max_rows=max_rows)
        self._summary.on_select(self._on_select)
        self._detail = Label("detail", "(select a story)")
        self._status = Label("status", "0 stories")
        self.form.add(self._status)
        self.form.add(self._summary)
        self.form.add(Button("refresh", action=lambda f: self.refresh()))
        self.form.add(self._detail)
        self._shown = 0

    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Rebuild the summary list from the monitor's current stories."""
        selected = self._summary.selected
        self._summary.clear()
        for story in self.monitor.stories:
            self._summary.add_row(
                [self.view._cell(story, column).strip() or "-"
                 for column in self.view.columns])
        self._shown = len(self.monitor.stories)
        self._status.set(
            f"{self.monitor.stories_received} stories, "
            f"{self.monitor.properties_received} properties")
        if selected is not None and selected < len(self._summary.rows):
            self._summary.selected = selected

    def _on_select(self, index: int) -> None:
        # the list is a window over the tail of the story list
        offset = max(0, len(self.monitor.stories) - len(self._summary.rows))
        self._detail.set(self.monitor.select(offset + index))

    def select(self, index: int) -> str:
        """Programmatic selection (what a key press would do)."""
        self.refresh()
        self._summary.select(index)
        return self._detail.text

    def render_text(self) -> str:
        self.refresh()
        return self.form.render_text()
