"""Tests for factory equipment, the cell controller, and the config system."""

import pytest

from repro.apps import (CellController, Equipment, FactoryConfigSystem,
                        register_config_types, sensor_subject)
from repro.core import InformationBus, RmiClient
from repro.objects import DataObject
from repro.sim import CostModel


@pytest.fixture
def bus():
    b = InformationBus(seed=1, cost=CostModel.ideal())
    b.add_hosts(4)
    return b


def test_sensor_subject_matches_paper_example():
    assert sensor_subject("fab5", "litho8", "thick") == \
        "fab5.cc.litho8.thick"


def test_equipment_publishes_readings(bus):
    equipment = Equipment(bus.client("node00", "litho8"), "fab5", "litho8",
                          {"thick": (9.0, 0.2, "um")}, interval=0.5)
    received = []
    bus.client("node01", "logger").subscribe(
        "fab5.cc.litho8.*", lambda s, o, i: received.append(o))
    bus.run_for(3.0)
    equipment.stop()
    bus.settle()
    assert len(received) == 6
    assert all(o.is_a("sensor_reading") for o in received)
    assert all(8.5 < o.get("value") < 9.5 for o in received)


def test_cell_controller_tracks_latest_and_new_stations(bus):
    controller = CellController(bus.client("node01", "cc"), "fab5")
    eq1 = Equipment(bus.client("node00", "litho8"), "fab5", "litho8",
                    {"thick": (9.0, 0.1, "um")}, interval=0.5)
    bus.run_for(1.2)
    assert controller.reading("litho8", "thick") is not None
    # a station added later is picked up with zero reconfiguration (P4)
    eq2 = Equipment(bus.client("node02", "etch3"), "fab5", "etch3",
                    {"temp": (350.0, 5.0, "C")}, interval=0.5)
    bus.run_for(1.2)
    assert controller.reading("etch3", "temp") is not None
    eq1.stop()
    eq2.stop()


def test_alarms_on_limit_breach(bus):
    controller = CellController(bus.client("node01", "cc"), "fab5",
                                limits={"thick": (8.9, 9.1)})
    alarms = []
    bus.client("node02", "pager").subscribe(
        "fab5.alarm.>", lambda s, o, i: alarms.append(o))
    equipment = Equipment(bus.client("node00", "litho8"), "fab5", "litho8",
                          {"thick": (9.0, 0.5, "um")},   # noisy: breaches
                          interval=0.25)
    bus.run_for(5.0)
    equipment.stop()
    bus.settle()
    assert controller.alarms_raised > 0
    assert len(alarms) == controller.alarms_raised
    alarm = alarms[0]
    assert alarm.is_a("equipment_alarm")
    assert alarm.get("direction") in ("low", "high")


def test_no_alarms_within_limits(bus):
    controller = CellController(bus.client("node01", "cc"), "fab5",
                                limits={"thick": (8.0, 10.0)})
    equipment = Equipment(bus.client("node00", "litho8"), "fab5", "litho8",
                          {"thick": (9.0, 0.1, "um")}, interval=0.25)
    bus.run_for(3.0)
    equipment.stop()
    assert controller.alarms_raised == 0
    assert controller.readings_seen > 0


def config_obj(registry, station, recipe="std", online=True):
    register_config_types(registry)
    return DataObject(registry, "equipment_config", {
        "plant": "fab5", "station": station, "equipment_type": "litho",
        "recipe": recipe, "online": online,
        "parameters": {"dose": 21.5}})


def test_config_system_rmi_roundtrip(bus):
    system = FactoryConfigSystem(bus.client("node01", "config"), "fab5")
    operator = bus.client("node02", "operator")
    register_config_types(operator.registry)
    rmi = RmiClient(operator, "svc.fab5.config")
    out = {}
    rmi.call("set_config", {"config": config_obj(operator.registry,
                                                 "litho8")},
             lambda v, e: out.update(set=(v, e)))
    bus.run_for(2.0)
    assert out["set"][1] is None
    rmi.call("stations", {}, lambda v, e: out.update(stations=(v, e)))
    bus.run_for(2.0)
    assert out["stations"][0] == ["litho8"]
    rmi.call("get_config", {"station": "litho8"},
             lambda v, e: out.update(get=(v, e)))
    bus.run_for(2.0)
    config = out["get"][0]
    assert config.get("recipe") == "std"
    assert config.get("parameters")["dose"] == 21.5


def test_config_changes_are_published(bus):
    system = FactoryConfigSystem(bus.client("node01", "config"), "fab5")
    changes = []
    bus.client("node03", "station-agent").subscribe(
        "fab5.config.*", lambda s, o, i: changes.append((s, o)))
    operator = bus.client("node02", "operator")
    register_config_types(operator.registry)
    rmi = RmiClient(operator, "svc.fab5.config")
    out = {}
    rmi.call("set_config",
             {"config": config_obj(operator.registry, "litho8")},
             lambda v, e: out.update(set=(v, e)))
    bus.run_for(2.0)
    rmi.call("take_offline", {"station": "litho8"},
             lambda v, e: out.update(off=(v, e)))
    bus.run_for(2.0)
    assert out["off"][1] is None
    assert [s for s, _ in changes] == ["fab5.config.litho8"] * 2
    assert changes[-1][1].get("online") is False


def test_get_unknown_station_errors(bus):
    FactoryConfigSystem(bus.client("node01", "config"), "fab5")
    rmi = RmiClient(bus.client("node02", "operator"), "svc.fab5.config")
    out = {}
    rmi.call("get_config", {"station": "ghost"},
             lambda v, e: out.update(r=(v, e)))
    bus.run_for(2.0)
    assert out["r"][0] is None
    assert "KeyError" in out["r"][1]


def test_set_config_replaces_existing(bus):
    system = FactoryConfigSystem(bus.client("node01", "config"), "fab5")
    operator = bus.client("node02", "operator")
    register_config_types(operator.registry)
    rmi = RmiClient(operator, "svc.fab5.config")
    out = {}
    rmi.call("set_config",
             {"config": config_obj(operator.registry, "litho8", "std")},
             lambda v, e: out.update(a=(v, e)))
    bus.run_for(2.0)
    rmi.call("set_config",
             {"config": config_obj(operator.registry, "litho8", "deep-uv")},
             lambda v, e: out.update(b=(v, e)))
    bus.run_for(2.0)
    rmi.call("get_config", {"station": "litho8"},
             lambda v, e: out.update(get=(v, e)))
    bus.run_for(2.0)
    assert out["get"][0].get("recipe") == "deep-uv"
    assert system.store.count("equipment_config") == 1


def test_equipment_follows_published_config(bus):
    """Live recipe distribution: a config change retunes a running
    station with no restart."""
    system = FactoryConfigSystem(bus.client("node01", "config"), "fab5")
    equipment = Equipment(bus.client("node00", "litho8"), "fab5", "litho8",
                          {"thick": (9.0, 0.01, "um")}, interval=0.25,
                          follow_config=True)
    readings = []
    bus.client("node03", "probe").subscribe(
        "fab5.cc.litho8.thick", lambda s, o, i: readings.append(
            o.get("value")))
    bus.run_for(2.0)
    assert all(8.9 < v < 9.1 for v in readings)
    before = len(readings)

    operator = bus.client("node02", "operator")
    register_config_types(operator.registry)
    rmi = RmiClient(operator, "svc.fab5.config")
    out = {}
    new_config = DataObject(operator.registry, "equipment_config", {
        "plant": "fab5", "station": "litho8", "equipment_type": "litho",
        "recipe": "deep-uv-12um", "online": True,
        "parameters": {"thick": 12.0}})
    rmi.call("set_config", {"config": new_config},
             lambda v, e: out.update(set=e))
    bus.run_for(2.0)
    assert out["set"] is None
    assert equipment.recipe == "deep-uv-12um"
    assert equipment.config_updates == 1
    bus.run_for(2.0)
    equipment.stop()
    bus.settle(1.0)
    assert any(11.9 < v < 12.1 for v in readings[before:])


def test_take_offline_stops_publication(bus):
    FactoryConfigSystem(bus.client("node01", "config"), "fab5")
    equipment = Equipment(bus.client("node00", "litho8"), "fab5", "litho8",
                          {"thick": (9.0, 0.01, "um")}, interval=0.25,
                          follow_config=True)
    operator = bus.client("node02", "operator")
    register_config_types(operator.registry)
    rmi = RmiClient(operator, "svc.fab5.config")
    out = {}
    config = DataObject(operator.registry, "equipment_config", {
        "plant": "fab5", "station": "litho8", "equipment_type": "litho",
        "recipe": "std", "online": True})
    rmi.call("set_config", {"config": config},
             lambda v, e: out.update(a=e))
    bus.run_for(1.5)
    rmi.call("take_offline", {"station": "litho8"},
             lambda v, e: out.update(b=e))
    bus.run_for(1.5)
    assert equipment.online is False
    count = equipment.readings_published
    bus.run_for(2.0)
    assert equipment.readings_published == count   # silent while offline
    equipment.stop()
