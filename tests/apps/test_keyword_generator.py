"""Tests for the Keyword Generator and the Figure 4 evolution scenario."""

import pytest

from repro.adapters import register_news_types
from repro.apps import KeywordGenerator, NewsMonitor
from repro.core import InformationBus, RmiClient
from repro.objects import DataObject
from repro.sim import CostModel


@pytest.fixture
def world():
    bus = InformationBus(seed=1, cost=CostModel.ideal())
    bus.add_hosts(4)
    feed = bus.client("node00", "feed")
    register_news_types(feed.registry)
    monitor = NewsMonitor(bus.client("node01", "monitor"))
    return bus, feed, monitor


def story(feed, headline, body=""):
    return DataObject(feed.registry, "story", {
        "headline": headline, "body": body, "category": "equity",
        "topic": "gmc"})


def test_scan_groups_by_category(world):
    bus, feed, monitor = world
    generator = KeywordGenerator(bus.client("node02", "kwgen"))
    found = generator.scan("chip yields rally as fab volume grows")
    assert found == {"semiconductors": ["chip", "fab", "yield"],
                     "markets": ["rally", "volume"]}
    assert generator.scan("nothing relevant here") == {}


def test_generator_annotates_published_stories(world):
    bus, feed, monitor = world
    generator = KeywordGenerator(bus.client("node02", "kwgen"))
    s = story(feed, "Chip yields up at fab5", "Wafer volume strong.")
    feed.publish("news.equity.gmc", s)
    bus.settle(2.0)
    assert generator.stories_scanned == 1
    assert generator.properties_published == 1
    # Figure 4: the monitor associates the property with the story
    keywords = monitor.keywords_for(0)
    assert "semiconductors" in keywords
    assert "chip" in keywords["semiconductors"]


def test_monitor_enriched_only_after_generator_comes_online(world):
    """'As soon as the Keyword Generator service comes on-line, the
    user's world becomes much richer' — and not before."""
    bus, feed, monitor = world
    feed.publish("news.equity.gmc", story(feed, "chip news before"))
    bus.settle(2.0)
    assert monitor.keywords_for(0) is None        # nothing annotates yet
    KeywordGenerator(bus.client("node02", "kwgen"))
    feed.publish("news.equity.gmc", story(feed, "chip news after"))
    bus.settle(2.0)
    assert monitor.keywords_for(1)                # new stories enriched
    assert monitor.keywords_for(0) is None        # history untouched


def test_generator_ignores_its_own_properties(world):
    """The generator subscribes where it publishes; no feedback loop."""
    bus, feed, monitor = world
    generator = KeywordGenerator(bus.client("node02", "kwgen"))
    feed.publish("news.equity.gmc", story(feed, "chip chip chip"))
    bus.settle(3.0)
    assert generator.stories_scanned == 1
    assert generator.properties_published == 1


def test_generator_ignores_non_story_objects(world):
    bus, feed, monitor = world
    generator = KeywordGenerator(bus.client("node02", "kwgen"))
    feed.publish("news.tick", {"price": 1.0})
    bus.settle(2.0)
    assert generator.stories_scanned == 0


def test_interactive_interface_browsing(world):
    """'An interactive interface that allows clients to browse categories
    and associated keywords' — a brand-new service type, driven by RMI."""
    bus, feed, monitor = world
    KeywordGenerator(bus.client("node02", "kwgen"))
    rmi = RmiClient(bus.client("node03", "browser"), "svc.keywords")
    out = {}
    rmi.call("categories", {}, lambda v, e: out.update(cats=(v, e)))
    bus.run_for(2.0)
    assert out["cats"][1] is None
    assert "semiconductors" in out["cats"][0]
    rmi.call("keywords_in", {"category": "markets"},
             lambda v, e: out.update(kw=(v, e)))
    bus.run_for(2.0)
    assert "earnings" in out["kw"][0]
    rmi.call("add_keyword", {"category": "markets", "word": "dividend"},
             lambda v, e: out.update(add=(v, e)))
    bus.run_for(2.0)
    rmi.call("keywords_in", {"category": "markets"},
             lambda v, e: out.update(kw2=(v, e)))
    bus.run_for(2.0)
    assert "dividend" in out["kw2"][0]


def test_interface_is_discoverable_and_self_describing(world):
    bus, feed, monitor = world
    KeywordGenerator(bus.client("node02", "kwgen"))
    rmi = RmiClient(bus.client("node03", "browser"), "svc.keywords")
    out = {}
    rmi.call("categories", {}, lambda v, e: out.update(r=(v, e)))
    bus.run_for(2.0)
    ops = {o["name"] for o in rmi.server_interface["operations"]}
    assert ops == {"categories", "keywords_in", "add_keyword"}
