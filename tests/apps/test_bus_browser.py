"""Tests for the bus browser: service directory + traffic monitor."""

import pytest

from repro.apps import BusBrowser
from repro.core import InformationBus, RmiServer
from repro.objects import (OperationSpec, ParamSpec, ServiceObject,
                           TypeDescriptor, standard_registry)
from repro.sim import CostModel


def make_service(reg, name="quote_service"):
    if not reg.has(name):
        reg.register(TypeDescriptor(
            name,
            operations=[OperationSpec("last",
                                      params=(ParamSpec("s", "string"),),
                                      result_type="float"),
                        OperationSpec("symbols",
                                      result_type="list<string>")]))
    svc = ServiceObject(reg, name)
    svc.implement("last", lambda s: 1.0)
    svc.implement("symbols", lambda: ["GM"])
    return svc


@pytest.fixture
def world():
    bus = InformationBus(seed=1, cost=CostModel.ideal())
    bus.add_hosts(4)
    browser = BusBrowser(bus.client("node03", "browser"))
    return bus, browser


def test_directory_lists_advertised_services(world):
    bus, browser = world
    reg = standard_registry()
    RmiServer(bus.client("node01", "qsvc"), "svc.quotes",
              make_service(reg))
    bus.run_for(1.0)
    services = browser.live_services()
    assert len(services) == 1
    entry = services[0]
    assert entry.service_subject == "svc.quotes"
    assert entry.server == "node01.qsvc"
    assert entry.operations == ["last", "symbols"]
    assert browser.service_subjects() == ["svc.quotes"]


def test_stopped_service_leaves_the_directory(world):
    bus, browser = world
    reg = standard_registry()
    server = RmiServer(bus.client("node01", "qsvc"), "svc.quotes",
                       make_service(reg))
    bus.run_for(1.0)
    assert browser.service_subjects() == ["svc.quotes"]
    server.stop()
    bus.run_for(0.5)
    assert browser.service_subjects() == []


def test_crashed_service_goes_stale(world):
    bus, browser = world
    reg = standard_registry()
    RmiServer(bus.client("node01", "qsvc"), "svc.quotes",
              make_service(reg))
    bus.run_for(1.0)
    bus.crash_host("node01")
    bus.run_for(5.0)   # presence lapses
    assert browser.service_subjects() == []


def test_multiple_servers_one_subject(world):
    bus, browser = world
    reg = standard_registry()
    RmiServer(bus.client("node01", "qsvc"), "svc.quotes",
              make_service(reg))
    RmiServer(bus.client("node02", "qsvc"), "svc.quotes",
              make_service(reg))
    bus.run_for(1.0)
    assert len(browser.live_services()) == 2
    assert browser.service_subjects() == ["svc.quotes"]


def test_inspect_returns_interface_metadata(world):
    bus, browser = world
    reg = standard_registry()
    RmiServer(bus.client("node01", "qsvc"), "svc.quotes",
              make_service(reg))
    bus.run_for(0.5)
    out = []
    browser.inspect("svc.quotes", out.append)
    bus.run_for(1.0)
    assert len(out) == 1
    interfaces = out[0]
    assert len(interfaces) == 1
    ops = {o["name"] for o in interfaces[0]["operations"]}
    assert ops == {"last", "symbols"}


def test_traffic_accounting(world):
    bus, browser = world
    feed = bus.client("node00", "feed")
    for i in range(5):
        feed.publish("news.equity.gmc", {"n": i})
    feed.publish("news.bond.us10y", {"n": 99})
    bus.settle(1.0)
    assert browser.total_messages() == 6
    top = browser.top_subjects(1)[0]
    assert top.subject == "news.equity.gmc"
    assert top.messages == 5
    assert top.bytes > 0
    assert top.senders == {"node00.feed"}


def test_admin_chatter_not_counted_as_traffic(world):
    """Discovery and advert messages ride reserved subjects; the '>'
    traffic watcher must not see them."""
    bus, browser = world
    reg = standard_registry()
    RmiServer(bus.client("node01", "qsvc"), "svc.quotes",
              make_service(reg))
    bus.run_for(2.0)
    assert browser.total_messages() == 0
    assert len(browser.live_services()) == 1   # directory still populated


def test_report_renders(world):
    bus, browser = world
    reg = standard_registry()
    RmiServer(bus.client("node01", "qsvc"), "svc.quotes",
              make_service(reg))
    bus.client("node00", "feed").publish("x.y", 1)
    bus.settle(1.0)
    text = browser.report()
    assert "svc.quotes" in text
    assert "x.y" in text


def test_stop_detaches(world):
    bus, browser = world
    browser.stop()
    bus.client("node00", "feed").publish("x.y", 1)
    bus.settle(1.0)
    assert browser.total_messages() == 0
