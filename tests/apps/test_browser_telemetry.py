"""The browser as a telemetry console: ``_bus.stat.*`` consumption.

Satellite coverage for the telemetry plane: a late-joining browser sees
current gauges on the next snapshot, sources whose publisher goes away
age out of :meth:`telemetry`, and with router stat-bridging a browser on
one segment aggregates both segments through :meth:`bus_top`.
"""

from repro.apps import BusBrowser
from repro.core import BusConfig, InformationBus, Router
from repro.sim import CostModel, Simulator


def stat_config(interval=0.1):
    return BusConfig(stat_interval=interval, advert_interval=0.5)


def test_late_joining_browser_sees_current_gauges():
    bus = InformationBus(seed=2, cost=CostModel.ideal(),
                         config=stat_config())
    bus.add_hosts(2)
    pub = bus.client("node00", "pub")
    sub = bus.client("node01", "sub")
    sub.subscribe("feed.>", lambda *a: None)
    for n in range(25):
        pub.publish("feed.x", {"n": n})
    bus.run_for(1.0)
    # the browser attaches long after the traffic happened...
    browser = BusBrowser(bus.client("node01", "browser"))
    assert browser.telemetry() == []
    bus.run_for(0.5)
    # ...and the very next snapshots carry the daemons' current state
    sources = {t.source for t in browser.telemetry()}
    assert sources == {"node00.daemon", "node01.daemon"}
    node00 = browser.stats["node00.daemon"].metrics
    assert node00["daemon.node00.published"]["value"] == 25
    assert node00["daemon.node00.clients"]["value"] == 1
    top = browser.bus_top()
    assert top["hosts"] == 2
    # >= : node01's subscription adverts are published messages too
    assert top["published"] >= 25
    assert top["delivered"] >= 25
    assert "telemetry" in browser.report()


def test_sources_age_out_when_their_publisher_dies():
    bus = InformationBus(seed=4, cost=CostModel.ideal(),
                         config=stat_config(interval=0.1))
    bus.add_hosts(2)
    browser = BusBrowser(bus.client("node01", "browser"))
    bus.run_for(1.0)
    assert {t.source for t in browser.telemetry()} == {
        "node00.daemon", "node01.daemon"}
    bus.crash_host("node00")
    # within ~3 publisher periods the dead source goes stale
    bus.run_for(1.0)
    assert {t.source for t in browser.telemetry()} == {"node01.daemon"}
    # the stale entry is retained (history), just no longer "live"
    assert "node00.daemon" in browser.stats
    bus.recover_host("node00")
    bus.run_for(1.0)
    assert {t.source for t in browser.telemetry()} == {
        "node00.daemon", "node01.daemon"}


def test_browser_aggregates_router_bridged_segments():
    sim = Simulator(seed=6)
    east = InformationBus(cost=CostModel.ideal(), name="east", sim=sim,
                          config=stat_config())
    west = InformationBus(cost=CostModel.ideal(), name="west", sim=sim,
                          config=stat_config())
    east.add_hosts(2, prefix="e")
    west.add_hosts(2, prefix="w")
    router = Router(bridge_stats=True, stat_interval=0.25)
    router.add_leg(east)
    router.add_leg(west)
    # data traffic on the east segment only
    pub = east.client("e00", "pub")
    east.client("e01", "sub").subscribe("feed.>", lambda *a: None)
    # the browser watches from the WEST segment
    browser = BusBrowser(west.client("w01", "browser"))
    sim.run_until(1.0)
    for n in range(10):
        pub.publish("feed.x", {"n": n})
    sim.run_until(4.0)
    sources = {t.source for t in browser.telemetry()}
    # local daemons, bridged east daemons, and the router itself
    for expected in ("w00.daemon", "w01.daemon", "e00.daemon",
                     "e01.daemon", f"{router.name}.router"):
        assert expected in sources, sources
    top = browser.bus_top()
    assert top["hosts"] >= 5
    assert top["published"] >= 10        # east's traffic, seen from west
    east_pub = browser.stats["e00.daemon"].metrics
    assert east_pub["daemon.e00.published"]["value"] >= 10
    # the router's own registry crossed too (leg forwarding counters)
    router_metrics = browser.stats[f"{router.name}.router"].metrics
    assert any(name.endswith(".forwarded") for name in router_metrics)
