"""Tests for the News Monitor and its views."""

import pytest

from repro.adapters import register_news_types
from repro.apps import NewsMonitor, View
from repro.apps.app_builder.views import ViewColumn
from repro.core import InformationBus
from repro.objects import DataObject, make_property
from repro.sim import CostModel


@pytest.fixture
def world():
    bus = InformationBus(seed=1, cost=CostModel.ideal())
    bus.add_hosts(3)
    feed = bus.client("node00", "feed")
    register_news_types(feed.registry)
    monitor = NewsMonitor(bus.client("node01", "monitor"))
    return bus, feed, monitor


def story(feed, headline, topic="gmc", **extra):
    return DataObject(feed.registry, "story", dict(
        {"headline": headline, "category": "equity", "topic": topic,
         "sources": ["Test"]}, **extra))


def test_headline_summary_list(world):
    bus, feed, monitor = world
    for i in range(3):
        feed.publish(f"news.equity.gmc", story(feed, f"Headline {i}"))
    bus.settle()
    assert monitor.stories_received == 3
    lines = monitor.headlines()
    assert "headline" in lines[0]            # view header
    assert any("Headline 0" in line for line in lines)
    assert any("Headline 2" in line for line in lines)


def test_select_renders_all_attributes_via_mop(world):
    bus, feed, monitor = world
    feed.publish("news.equity.gmc",
                 story(feed, "Big news", industry_groups=["semis"]))
    bus.settle()
    detail = monitor.select(0)
    assert "<story>" in detail
    assert '"Big news"' in detail
    assert "semis" in detail
    assert "industry_groups" in detail


def test_select_out_of_range(world):
    bus, feed, monitor = world
    with pytest.raises(IndexError):
        monitor.select(0)


def test_properties_associated_with_stories(world):
    """Figure 4's behavior, driven manually (keyword generator has its
    own tests)."""
    bus, feed, monitor = world
    s = story(feed, "GM chips")
    feed.publish("news.equity.gmc", s)
    bus.settle()
    prop = make_property(feed.registry, "keywords",
                         {"semiconductors": ["chip"]}, ref=s.oid)
    feed.publish("news.equity.gmc", prop)
    bus.settle()
    assert monitor.properties_received == 1
    assert monitor.stories_received == 1     # property not shown as story
    detail = monitor.select(0)
    assert "keywords" in detail
    assert monitor.keywords_for(0) == {"semiconductors": ["chip"]}


def test_monitor_handles_unknown_types_via_view(world):
    """A view renders blanks for attributes a type does not declare."""
    bus, feed, monitor = world
    view = View("v", [ViewColumn("headline", 20), ViewColumn("ghost", 5)])
    monitor.view = view
    feed.publish("news.equity.gmc", story(feed, "X"))
    bus.settle()
    row = monitor.headlines()[2]
    assert "X" in row


def test_bounded_story_list(world):
    bus, feed, monitor = world
    monitor.max_stories = 5
    for i in range(8):
        feed.publish("news.equity.gmc", story(feed, f"h{i}"))
    bus.settle()
    assert len(monitor.stories) == 5
    assert monitor.stories[0].get("headline") == "h3"


def test_stop_unsubscribes(world):
    bus, feed, monitor = world
    monitor.stop()
    feed.publish("news.equity.gmc", story(feed, "late"))
    bus.settle()
    assert monitor.stories_received == 0


def test_view_of_shorthand_and_list_rendering(world):
    view = View.of("v", ("headline", 10), ("sources", 12))
    bus, feed, monitor = world
    s = story(feed, "A very long headline indeed")
    row = view.row(s)
    assert row.startswith("A very lon")
    assert "Test" in row


# ----------------------------------------------------------------------
# the interactive form
# ----------------------------------------------------------------------

def test_monitor_form_summary_and_selection(world):
    from repro.apps import NewsMonitorForm
    from repro.objects import make_property
    bus, feed, monitor = world
    form = NewsMonitorForm(monitor)
    s = story(feed, "Chips up at fab5", topic="tsm")
    feed.publish("news.equity.tsm", s)
    feed.publish("news.equity.tsm",
                 make_property(feed.registry, "keywords", ["chips"],
                               ref=s.oid))
    bus.settle()
    text = form.render_text()
    assert "Chips up at fab5" in text
    assert "1 stories, 1 properties" in text
    detail = form.select(0)
    assert "<story>" in detail
    assert "keywords" in detail          # attached property displayed
    assert "keywords" in form.form.widget("detail").text


def test_monitor_form_windowed_selection(world):
    from repro.apps import NewsMonitorForm
    bus, feed, monitor = world
    form = NewsMonitorForm(monitor, max_rows=3)
    for i in range(5):
        feed.publish("news.equity.gmc", story(feed, f"h{i}"))
    bus.settle()
    form.refresh()
    assert len(form._summary.rows) == 3          # windowed to the tail
    detail = form.select(0)                      # first visible row = h2
    assert '"h2"' in detail


def test_monitor_form_refresh_button(world):
    from repro.apps import NewsMonitorForm
    bus, feed, monitor = world
    form = NewsMonitorForm(monitor)
    feed.publish("news.equity.gmc", story(feed, "hello"))
    bus.settle()
    form.form.press("refresh")
    assert any("hello" in "".join(r) for r in form._summary.rows)
