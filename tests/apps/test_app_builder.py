"""Tests for the widget toolkit and the metadata-driven app builder."""

import pytest

from repro.apps import ApplicationBuilder
from repro.apps.app_builder import (Button, Form, Label, ListView,
                                    TextField, WidgetError)
from repro.core import InformationBus, RmiClient, RmiServer
from repro.objects import (AttributeSpec, DataObject, OperationSpec,
                           ParamSpec, ServiceObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel


# ----------------------------------------------------------------------
# widgets
# ----------------------------------------------------------------------

def test_form_renders_widgets_in_order():
    form = Form("f", title="Test Form")
    form.add(Label("l1", "Hello"))
    form.add(TextField("name", value="ada"))
    form.add(Button("ok"))
    text = form.render_text()
    assert "Test Form" in text
    assert text.index("Hello") < text.index("name: [ada]") < \
        text.index("<ok>")


def test_field_set_and_get():
    form = Form("f")
    form.add(TextField("name"))
    form.set_field("name", 42)
    assert form.field_value("name") == "42"
    with pytest.raises(WidgetError):
        form.set_field("ghost", "x")
    form.add(Label("lab"))
    with pytest.raises(WidgetError):
        form.set_field("lab", "not a field")


def test_button_press_invokes_action():
    pressed = []
    form = Form("f")
    form.add(Button("go", action=lambda f: pressed.append(f.name)))
    form.press("go")
    assert pressed == ["f"]
    assert form.widget("go").presses == 1
    with pytest.raises(WidgetError):
        form.press("ghost")


def test_duplicate_widget_name_rejected():
    form = Form("f")
    form.add(Label("x"))
    with pytest.raises(WidgetError):
        form.add(Label("x"))


def test_listview_rows_and_selection():
    lv = ListView("stories", ["topic", "headline"], [6, 20])
    lv.add_row(["gmc", "GM rises"])
    lv.add_row(["ibm", "IBM falls"])
    selected = []
    lv.on_select(selected.append)
    lv.select(1)
    assert selected == [1]
    lines = lv.render()
    assert lines[0].startswith("topic")
    assert lines[3].startswith(">")          # selection marker
    with pytest.raises(WidgetError):
        lv.select(9)
    with pytest.raises(WidgetError):
        lv.add_row(["only-one"])


def test_listview_bounded():
    lv = ListView("l", ["a"], max_rows=3)
    for i in range(5):
        lv.add_row([i])
    assert [r[0] for r in lv.rows] == ["2", "3", "4"]


# ----------------------------------------------------------------------
# metadata-driven service UI ("a basic user interface for any service")
# ----------------------------------------------------------------------

@pytest.fixture
def service_world():
    bus = InformationBus(seed=1, cost=CostModel.ideal())
    bus.add_hosts(3)
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "calc_service",
        operations=[
            OperationSpec("add", params=(ParamSpec("a", "int"),
                                         ParamSpec("b", "int")),
                          result_type="int"),
            OperationSpec("motto", result_type="string"),
        ]))
    svc = ServiceObject(reg, "calc_service")
    svc.implement("add", lambda a, b: a + b)
    svc.implement("motto", lambda: "publish and subscribe")
    RmiServer(bus.client("node01", "calc"), "svc.calc", svc)
    rmi = RmiClient(bus.client("node00", "user"), "svc.calc")
    # prime discovery so the interface metadata is known
    done = []
    rmi.call("motto", {}, lambda v, e: done.append(v))
    bus.run_for(2.0)
    assert done == ["publish and subscribe"]
    return bus, rmi


def test_form_generated_from_interface(service_world):
    bus, rmi = service_world
    builder = ApplicationBuilder()
    form = builder.form_for_service(rmi)
    text = form.render_text()
    assert "add" in text and "motto" in text
    assert "a (int)" in text and "b (int)" in text


def test_generated_form_performs_calls(service_world):
    bus, rmi = service_world
    builder = ApplicationBuilder()
    form = builder.form_for_service(rmi)
    form.set_field("add.a", "20")
    form.set_field("add.b", "22")
    form.press("add.call")
    assert "pending" in form.widget("add.result").text
    bus.run_for(2.0)
    assert form.widget("add.result").text == "42"


def test_generated_form_reports_bad_input(service_world):
    bus, rmi = service_world
    builder = ApplicationBuilder()
    form = builder.form_for_service(rmi)
    form.set_field("add.a", "not-a-number")
    form.set_field("add.b", "2")
    form.press("add.call")
    assert "must be int" in form.widget("add.result").text


def test_form_for_service_requires_discovery():
    bus = InformationBus(seed=2, cost=CostModel.ideal())
    bus.add_hosts(2)
    rmi = RmiClient(bus.client("node00", "u"), "svc.ghost")
    with pytest.raises(WidgetError):
        ApplicationBuilder().form_for_service(rmi)


def test_form_for_object():
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "recipe", attributes=[AttributeSpec("name", "string"),
                              AttributeSpec("steps", "list<string>",
                                            required=False)]))
    obj = DataObject(reg, "recipe", name="etch-a", steps=["etch", "rinse"])
    form = ApplicationBuilder().form_for_object(obj)
    text = form.render_text()
    assert "name (string): [etch-a]" in text
    assert "steps (list<string>): [etch,rinse]" in text


# ----------------------------------------------------------------------
# TDL scripting ("all high-level application behavior is interpreted")
# ----------------------------------------------------------------------

def test_tdl_script_builds_and_drives_a_form():
    builder = ApplicationBuilder()
    result = builder.run_script("""
        (define f (make-form "hello" "Hello Form"))
        (add-field! f "who")
        (add-label! f "greeting" "")
        (add-button! f "greet"
          (lambda (form)
            (set-label! form "greeting"
                        (concat "hello, " (field-value form "who")))))
        (set-field! f "who" "fab5")
        (press! f "greet")
        (render-form f)
    """)
    assert "hello, fab5" in result
    assert "hello" in builder.forms


def test_tdl_views():
    builder = ApplicationBuilder()
    builder.tdl.eval_text("""
        (defclass note (object) ((title :type string)))
    """)
    row = builder.run_script("""
        (define v (make-view "notes" (list "title" 10)))
        (view-row v (make-instance 'note :title "remember"))
    """)
    assert row.startswith("remember")
