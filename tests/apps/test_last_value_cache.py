"""Tests for the last-value cache and the snapshot-then-subscribe pattern."""

import pytest

from repro.apps import LastValueCache, snapshot_then_subscribe
from repro.core import InformationBus, RmiClient
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.sim import CostModel


@pytest.fixture
def world():
    bus = InformationBus(seed=1, cost=CostModel.ideal())
    bus.add_hosts(4)
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "quote", attributes=[AttributeSpec("symbol", "string"),
                             AttributeSpec("price", "float")]))
    feed = bus.client("node00", "feed", registry=reg)
    lvc = LastValueCache(bus.client("node01", "lvc"), ["quotes.>"])
    return bus, reg, feed, lvc


def quote(reg, symbol, price):
    return DataObject(reg, "quote", symbol=symbol, price=price)


def publish_quotes(bus, reg, feed, prices):
    for symbol, price in prices:
        feed.publish(f"quotes.equity.{symbol}", quote(reg, symbol, price))
    bus.settle(1.0)


def test_cache_keeps_only_latest(world):
    bus, reg, feed, lvc = world
    publish_quotes(bus, reg, feed,
                   [("gmc", 41.0), ("ibm", 58.0), ("gmc", 42.5)])
    assert len(lvc) == 2
    assert lvc.updates_seen == 3
    assert lvc._current("quotes.equity.gmc").get("price") == 42.5


def test_rmi_current_and_snapshot(world):
    bus, reg, feed, lvc = world
    publish_quotes(bus, reg, feed, [("gmc", 41.0), ("ibm", 58.0)])
    rmi = RmiClient(bus.client("node02", "trader"), "svc.lvc")
    out = {}
    rmi.call("current", {"subject": "quotes.equity.gmc"},
             lambda v, e: out.update(cur=(v, e)))
    bus.run_for(2.0)
    value, error = out["cur"]
    assert error is None and value.get("price") == 41.0
    rmi.call("current", {"subject": "quotes.equity.never"},
             lambda v, e: out.update(missing=(v, e)))
    bus.run_for(2.0)
    assert out["missing"] == (None, None)
    rmi.call("snapshot", {"pattern": "quotes.>"},
             lambda v, e: out.update(snap=(v, e)))
    bus.run_for(2.0)
    snap = out["snap"][0]
    assert set(snap) == {"quotes.equity.gmc", "quotes.equity.ibm"}
    rmi.call("cached_subjects", {},
             lambda v, e: out.update(subjects=(v, e)))
    bus.run_for(2.0)
    assert out["subjects"][0] == ["quotes.equity.gmc",
                                  "quotes.equity.ibm"]


def test_snapshot_pattern_filters(world):
    bus, reg, feed, lvc = world
    publish_quotes(bus, reg, feed, [("gmc", 41.0)])
    feed.publish("quotes.bond.us10y", quote(reg, "us10y", 99.0))
    bus.settle(1.0)
    rmi = RmiClient(bus.client("node02", "trader"), "svc.lvc")
    out = {}
    rmi.call("snapshot", {"pattern": "quotes.equity.*"},
             lambda v, e: out.update(snap=v))
    bus.run_for(2.0)
    assert set(out["snap"]) == {"quotes.equity.gmc"}


def test_late_joiner_gets_snapshot_then_live(world):
    """The whole point: a subscriber that joins late still sees current
    values, then live updates, in order."""
    bus, reg, feed, lvc = world
    publish_quotes(bus, reg, feed, [("gmc", 41.0), ("ibm", 58.0)])

    seen = []
    ready = []
    late = bus.client("node02", "late_trader")
    snapshot_then_subscribe(
        late, "quotes.>",
        lambda s, o, is_snap: seen.append((s, o.get("price"), is_snap)),
        on_ready=lambda: ready.append(True))
    bus.run_for(2.0)
    assert ready == [True]
    snapshot_part = [e for e in seen if e[2]]
    assert {(s, p) for s, p, _ in snapshot_part} == {
        ("quotes.equity.gmc", 41.0), ("quotes.equity.ibm", 58.0)}
    # now a live update arrives as live
    publish_quotes(bus, reg, feed, [("gmc", 43.0)])
    assert seen[-1] == ("quotes.equity.gmc", 43.0, False)


def test_updates_during_snapshot_are_buffered_not_lost(world):
    bus, reg, feed, lvc = world
    publish_quotes(bus, reg, feed, [("gmc", 41.0)])
    seen = []
    late = bus.client("node02", "late_trader")
    snapshot_then_subscribe(
        late, "quotes.>",
        lambda s, o, is_snap: seen.append((o.get("price"), is_snap)))
    # publish immediately, while the snapshot RMI is still in flight
    feed.publish("quotes.equity.gmc", quote(reg, "gmc", 41.5))
    bus.run_for(3.0)
    # the in-flight update is not lost: it arrives as a live delivery
    # after the snapshot entries (which may already reflect it)
    assert seen[-1] == (41.5, False)
    assert seen[0][1] is True             # snapshot applied first
    flags = [is_snap for _, is_snap in seen]
    assert flags == sorted(flags, reverse=True)   # snaps before lives


def test_cache_bound(world):
    bus, reg, feed, lvc = world
    lvc.max_subjects = 2
    publish_quotes(bus, reg, feed,
                   [("a", 1.0), ("b", 2.0), ("c", 3.0)])
    assert len(lvc) == 2               # refused the third subject
    # but updates to cached subjects still apply
    publish_quotes(bus, reg, feed, [("a", 9.0)])
    assert lvc._current("quotes.equity.a").get("price") == 9.0


def test_stop_detaches(world):
    bus, reg, feed, lvc = world
    lvc.stop()
    publish_quotes(bus, reg, feed, [("gmc", 41.0)])
    assert len(lvc) == 0
