"""Unit tests for the Appendix experiment harness (small scale)."""

import pytest

from repro.bench import AppendixExperiment


def test_throughput_run_delivers_everything():
    experiment = AppendixExperiment(seed=1, nodes=4, consumers=3)
    result = experiment.run_throughput(256, 80)
    assert result.consumers == 3
    assert result.per_consumer_received == [80, 80, 80]
    assert result.delivery_ratio == 1.0
    assert result.msgs_per_sec > 0
    assert result.bytes_per_sec == result.msgs_per_sec * 256
    assert result.cumulative_msgs_per_sec == pytest.approx(
        sum(result.per_consumer_msgs_per_sec))
    assert result.duration > 0


def test_latency_run_collects_all_samples():
    experiment = AppendixExperiment(seed=2, nodes=3, consumers=2)
    result = experiment.run_latency(128, samples=10, interval=0.05)
    assert len(result.latencies) == 10 * 2
    summary = result.summary()
    assert 0 < summary.mean < 0.1          # milliseconds scale
    assert result.mean_ms == pytest.approx(summary.mean * 1000)
    assert result.variance_ms >= 0


def test_runs_are_deterministic_for_a_seed():
    def run():
        return AppendixExperiment(seed=3, nodes=4,
                                  consumers=3).run_throughput(128, 40)
    a, b = run(), run()
    assert a.per_consumer_msgs_per_sec == b.per_consumer_msgs_per_sec
    assert a.duration == b.duration


def test_different_seeds_differ():
    a = AppendixExperiment(seed=4, nodes=4, consumers=3).run_latency(
        256, samples=5)
    b = AppendixExperiment(seed=5, nodes=4, consumers=3).run_latency(
        256, samples=5)
    assert a.latencies != b.latencies      # CPU jitter differs per seed


def test_unicast_fanout_counts_per_consumer():
    experiment = AppendixExperiment(seed=6, nodes=4, consumers=3,
                                    unicast_fanout=True)
    result = experiment.run_throughput(128, 20)
    assert result.per_consumer_received == [20, 20, 20]
    assert result.delivery_ratio == 1.0


def test_multi_subject_round_robin():
    experiment = AppendixExperiment(seed=7, nodes=4, consumers=3)
    result = experiment.run_throughput(128, 30, subjects=10)
    assert result.subjects == 10
    assert result.delivery_ratio == 1.0


def test_batching_off_is_slower_for_small_messages():
    experiment = AppendixExperiment(seed=8, nodes=4, consumers=3)
    on = experiment.run_throughput(64, 150, batching=True)
    off = experiment.run_throughput(64, 150, batching=False)
    assert on.msgs_per_sec > off.msgs_per_sec


def test_publisher_needs_a_node():
    with pytest.raises(ValueError):
        AppendixExperiment(nodes=3, consumers=3)
