"""Unit tests for bench statistics, payloads, and report formatting."""

import math

import pytest

from repro.bench import (MIN_PAYLOAD_SIZE, format_table, mean,
                         payload_of_size, summarize, variance)
from repro.bench.report import Report
from repro.objects import decode, standard_registry


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------

def test_mean_and_variance_basics():
    assert mean([2.0, 4.0]) == 3.0
    assert variance([2.0, 4.0]) == 2.0
    assert variance([5.0]) == 0.0
    with pytest.raises(ValueError):
        mean([])


def test_summarize_known_series():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    summary = summarize(values)
    assert summary.n == 5
    assert summary.mean == 3.0
    assert summary.variance == 2.5
    assert summary.minimum == 1.0 and summary.maximum == 5.0
    # 99% CI with t(4) = 4.604: 4.604 * sqrt(2.5/5)
    assert math.isclose(summary.ci99, 4.604 * math.sqrt(0.5), rel_tol=1e-6)
    assert math.isclose(summary.stddev, math.sqrt(2.5), rel_tol=1e-9)
    assert summary.ci_low < summary.mean < summary.ci_high


def test_summarize_single_sample():
    summary = summarize([7.5])
    assert summary.mean == 7.5
    assert summary.variance == 0.0
    assert summary.ci99 == 0.0


def test_summarize_large_n_uses_normal_tail():
    values = [float(i % 10) for i in range(500)]
    summary = summarize(values)
    # with 499 df the critical value is essentially z = 2.576
    expected = 2.576 * math.sqrt(summary.variance / 500)
    assert math.isclose(summary.ci99, expected, rel_tol=0.02)


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


# ----------------------------------------------------------------------
# payloads
# ----------------------------------------------------------------------

@pytest.mark.parametrize("size", [MIN_PAYLOAD_SIZE, 64, 133, 1024, 10000])
def test_payload_exact_sizes(size):
    payload = payload_of_size(size)
    assert len(payload) == size
    decode(payload, standard_registry())   # always a valid encoding


def test_payload_too_small_rejected():
    with pytest.raises(ValueError):
        payload_of_size(MIN_PAYLOAD_SIZE - 1)


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table("Title", ["a", "long_header"],
                        [[1, 2.5], [30000.0, 0.001]])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert lines[1] == "====="
    assert "long_header" in lines[2]
    assert "30,000" in text          # thousands separator
    assert "0.0010" in text          # small floats keep precision


def test_report_emits_and_persists(tmp_path):
    report = Report("unit_test_report", results_dir=str(tmp_path))
    report.table("T", ["x"], [[1]])
    report.note("done")
    text = report.emit()
    assert "done" in text
    saved = (tmp_path / "unit_test_report.txt").read_text()
    assert "T" in saved and "done" in saved


# ----------------------------------------------------------------------
# ascii charts
# ----------------------------------------------------------------------

def test_ascii_chart_basic_shape():
    from repro.bench import ascii_chart
    chart = ascii_chart([(1, 10.0), (2, 20.0), (3, 30.0)],
                        title="T", x_label="x", y_label="y")
    lines = chart.splitlines()
    assert lines[0] == "T"
    assert lines[1] == "y"
    assert chart.count("*") == 3
    assert "x" in lines[-1]
    # the max appears on the top tick, min on the bottom tick
    assert any("31.5" in line or "31.0" in line or "32" in line
               for line in lines[:4])


def test_ascii_chart_monotone_series_renders_monotone():
    from repro.bench import ascii_chart
    points = [(x, float(x)) for x in range(1, 11)]
    chart = ascii_chart(points, width=40, height=10)
    rows = [line.split("|", 1)[1] for line in chart.splitlines()
            if "|" in line and not line.strip().startswith("+")]
    # star columns must increase top-to-bottom reversed = increasing
    columns = []
    for row in reversed(rows):
        for index, ch in enumerate(row):
            if ch == "*":
                columns.append(index)
    assert columns == sorted(columns)


def test_ascii_chart_error_bars():
    from repro.bench import ascii_chart
    chart = ascii_chart([(1, 10.0), (10, 10.0)], errors=[5.0, 0.0],
                        height=12, width=30)
    assert "|" in chart.split("+")[0]    # error bar glyphs in the grid


def test_ascii_chart_log_scale_rejects_nonpositive():
    import pytest
    from repro.bench import ascii_chart
    with pytest.raises(ValueError):
        ascii_chart([(0, 1.0), (10, 2.0)], log_x=True)


def test_ascii_chart_degenerate_inputs():
    from repro.bench import ascii_chart
    assert ascii_chart([]) == "(no data)"
    flat = ascii_chart([(1, 5.0), (2, 5.0)])     # zero y-range
    assert "*" in flat
    single = ascii_chart([(3, 7.0)])
    assert "*" in single
