"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro
import repro.core.namespace


@pytest.mark.parametrize("module", [repro, repro.core.namespace],
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0
    assert results.failed == 0
