"""Tests for the relational engine."""

import pytest

from repro.repository import (And, BLOB, BOOLEAN, Column, Contains, Database,
                              DatabaseError, Eq, Ge, Gt, In, INTEGER, Le, Lt,
                              Ne, Not, Or, REAL, TEXT, TRUE)


@pytest.fixture
def people():
    db = Database()
    table = db.create_table("people", [
        Column("id", TEXT, nullable=False),
        Column("name", TEXT),
        Column("age", INTEGER),
        Column("score", REAL),
        Column("active", BOOLEAN),
        Column("photo", BLOB),
    ], primary_key="id")
    table.insert({"id": "p1", "name": "ada", "age": 36, "active": True})
    table.insert({"id": "p2", "name": "brian", "age": 51, "active": False})
    table.insert({"id": "p3", "name": "carol", "age": 36, "score": 9.5})
    return db, table


def test_insert_and_select_all(people):
    _, table = people
    assert len(table) == 3
    assert len(table.select()) == 3
    assert len(table.select(TRUE)) == 3


def test_primary_key_lookup(people):
    _, table = people
    assert table.get("p2")["name"] == "brian"
    assert table.get("zzz") is None


def test_duplicate_primary_key_rejected(people):
    _, table = people
    with pytest.raises(DatabaseError):
        table.insert({"id": "p1", "name": "dup"})


def test_missing_primary_key_rejected(people):
    _, table = people
    with pytest.raises(DatabaseError):
        table.insert({"name": "nobody"})


def test_type_checking(people):
    _, table = people
    with pytest.raises(DatabaseError):
        table.insert({"id": "x", "age": "old"})
    with pytest.raises(DatabaseError):
        table.insert({"id": "x", "age": True})    # bool is not integer
    with pytest.raises(DatabaseError):
        table.insert({"id": "x", "name": 42})
    with pytest.raises(DatabaseError):
        table.insert({"id": "x", "photo": "not-bytes"})
    table.insert({"id": "x", "score": 3})          # int ok for REAL


def test_unknown_column_rejected(people):
    _, table = people
    with pytest.raises(DatabaseError):
        table.insert({"id": "x", "ghost": 1})


def test_not_nullable(people):
    _, table = people
    with pytest.raises(DatabaseError):
        table.insert({"id": None, "name": "x"})


def test_predicates(people):
    _, table = people
    assert {r["id"] for r in table.select(Eq("age", 36))} == {"p1", "p3"}
    assert {r["id"] for r in table.select(Ne("age", 36))} == {"p2"}
    assert {r["id"] for r in table.select(Lt("age", 40))} == {"p1", "p3"}
    assert {r["id"] for r in table.select(Le("age", 36))} == {"p1", "p3"}
    assert {r["id"] for r in table.select(Gt("age", 40))} == {"p2"}
    assert {r["id"] for r in table.select(Ge("age", 51))} == {"p2"}
    assert {r["id"] for r in table.select(In("name", ["ada", "carol"]))} == \
        {"p1", "p3"}
    assert {r["id"] for r in table.select(Contains("name", "ri"))} == {"p2"}


def test_null_never_compares(people):
    _, table = people
    # p1/p2 have no score; ordered comparisons must not match them
    assert {r["id"] for r in table.select(Gt("score", 1.0))} == {"p3"}
    assert {r["id"] for r in table.select(Lt("score", 99.0))} == {"p3"}


def test_combinators(people):
    _, table = people
    pred = And(Eq("age", 36), Eq("name", "ada"))
    assert [r["id"] for r in table.select(pred)] == ["p1"]
    pred = Or(Eq("name", "ada"), Eq("name", "brian"))
    assert {r["id"] for r in table.select(pred)} == {"p1", "p2"}
    assert {r["id"] for r in table.select(Not(Eq("age", 36)))} == {"p2"}
    # operator sugar
    assert {r["id"] for r in table.select(Eq("age", 36) & Eq("name", "ada"))} \
        == {"p1"}
    assert {r["id"] for r in table.select(~Eq("age", 36))} == {"p2"}


def test_count(people):
    _, table = people
    assert table.count() == 3
    assert table.count(Eq("age", 36)) == 2


def test_update(people):
    _, table = people
    changed = table.update(Eq("id", "p1"), {"age": 37})
    assert changed == 1
    assert table.get("p1")["age"] == 37
    with pytest.raises(DatabaseError):
        table.update(TRUE, {"ghost": 1})


def test_delete(people):
    _, table = people
    assert table.delete(Eq("age", 36)) == 2
    assert len(table) == 1
    assert table.delete(Eq("age", 999)) == 0


def test_upsert(people):
    _, table = people
    table.upsert({"id": "p1", "name": "ada2", "age": 40})
    assert len(table) == 3
    assert table.get("p1")["name"] == "ada2"
    table.upsert({"id": "p9", "name": "new"})
    assert len(table) == 4


def test_select_returns_copies(people):
    _, table = people
    row = table.select(Eq("id", "p1"))[0]
    row["name"] = "mutated"
    assert table.get("p1")["name"] == "ada"


def test_secondary_index_used(people):
    _, table = people
    table.create_index("age")
    before = table.scans
    rows = table.select(Eq("age", 36))
    assert len(rows) == 2
    assert table.scans == before          # no full scan
    assert table.index_lookups >= 1


def test_index_survives_mutation(people):
    _, table = people
    table.create_index("age")
    table.insert({"id": "p4", "age": 36})
    assert len(table.select(Eq("age", 36))) == 3
    table.delete(Eq("id", "p1"))
    assert len(table.select(Eq("age", 36))) == 2
    table.update(Eq("id", "p3"), {"age": 99})
    assert len(table.select(Eq("age", 36))) == 1


def test_index_hint_through_and(people):
    _, table = people
    table.create_index("age")
    before_scans = table.scans
    rows = table.select(And(Eq("age", 36), Contains("name", "a")))
    assert {r["id"] for r in rows} == {"p1", "p3"}
    assert table.scans == before_scans


def test_add_column_online(people):
    _, table = people
    table.add_column(Column("email", TEXT))
    table.insert({"id": "p9", "email": "x@y"})
    assert table.get("p1").get("email") is None
    with pytest.raises(DatabaseError):
        table.add_column(Column("email", TEXT))


def test_database_table_management():
    db = Database("test")
    db.create_table("t", [Column("a", TEXT)])
    assert db.has_table("t")
    assert db.tables() == ["t"]
    with pytest.raises(DatabaseError):
        db.create_table("t", [Column("a", TEXT)])
    with pytest.raises(DatabaseError):
        db.table("ghost")
    db.drop_table("t")
    assert not db.has_table("t")
    with pytest.raises(DatabaseError):
        db.drop_table("t")


def test_bad_schema_rejected():
    db = Database()
    with pytest.raises(DatabaseError):
        db.create_table("t", [])
    with pytest.raises(DatabaseError):
        db.create_table("t", [Column("a", "varchar")])
    with pytest.raises(DatabaseError):
        db.create_table("t", [Column("a", TEXT), Column("a", TEXT)])
    with pytest.raises(DatabaseError):
        db.create_table("t", [Column("a", TEXT)], primary_key="ghost")


def test_index_unknown_column_rejected(people):
    _, table = people
    with pytest.raises(DatabaseError):
        table.create_index("ghost")


def test_predicate_wire_roundtrip():
    from repro.repository import (predicate_from_wire, predicate_to_wire,
                                  In)
    predicates = [
        TRUE,
        Eq("a", 1),
        Ne("a", "x"),
        Lt("a", 2) & Ge("b", 3),
        Or(Contains("name", "ri"), Not(Eq("a", None))),
        In("a", [1, 2, 3]),
    ]
    rows = [{"a": 1, "b": 3, "name": "brian"},
            {"a": 5, "b": 0, "name": "ada"},
            {"a": None, "b": 7, "name": ""}]
    for predicate in predicates:
        rebuilt = predicate_from_wire(predicate_to_wire(predicate))
        for row in rows:
            assert rebuilt.matches(row) == predicate.matches(row), \
                (predicate, row)


def test_predicate_wire_rejects_malformed():
    import pytest as _pytest
    from repro.repository import predicate_from_wire
    for bad in [None, {}, {"op": "nope"}, {"op": "eq"}, "eq"]:
        with _pytest.raises((ValueError, KeyError)):
            predicate_from_wire(bad)
