"""Integration tests: capture server and query server on the live bus."""

import pytest

from repro.core import InformationBus, QoS, RmiClient
from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.repository import CaptureServer, QueryServer
from repro.sim import CostModel


@pytest.fixture
def world():
    bus = InformationBus(seed=1, cost=CostModel.ideal())
    bus.add_hosts(4)
    reg = standard_registry()
    reg.register(TypeDescriptor(
        "story", attributes=[AttributeSpec("headline", "string"),
                             AttributeSpec("topic", "string",
                                           required=False)]))
    pub = bus.client("node00", "feed", registry=reg)
    repo_client = bus.client("node01", "repository")
    capture = CaptureServer(repo_client, ["news.>"])
    return bus, reg, pub, repo_client, capture


def test_capture_server_stores_published_objects(world):
    bus, reg, pub, repo_client, capture = world
    for i in range(5):
        pub.publish("news.equity.gmc",
                    DataObject(reg, "story", headline=f"s{i}"))
    bus.settle(2.0)
    assert capture.captured == 5
    assert capture.store.count("story") == 5


def test_capture_learns_types_dynamically(world):
    """The capture server starts with a bare registry; the published
    type arrives via inline metadata and the schema is generated."""
    bus, reg, pub, repo_client, capture = world
    assert not repo_client.registry.has("story")
    pub.publish("news.x", DataObject(reg, "story", headline="h"))
    bus.settle(2.0)
    assert repo_client.registry.has("story")
    assert capture.store.db.has_table("obj_story")


def test_capture_records_arrival_subject(world):
    bus, reg, pub, repo_client, capture = world
    pub.publish("news.equity.ibm", DataObject(reg, "story", headline="h"))
    bus.settle(2.0)
    stored = capture.store.query("story")
    assert capture.subject_of(stored[0].oid) == "news.equity.ibm"


def test_capture_with_guaranteed_delivery(world):
    bus, reg, pub, repo_client, capture = world
    pub.publish("news.equity.gmc", DataObject(reg, "story", headline="h"),
                qos=QoS.GUARANTEED)
    bus.settle(3.0)
    assert capture.captured == 1
    assert bus.daemon("node00").guaranteed_pending() == []   # acked


def test_capture_skips_scalar_payloads(world):
    bus, reg, pub, repo_client, capture = world
    pub.publish("news.tick", {"price": 41.5})
    bus.settle(2.0)
    assert capture.captured == 0
    assert capture.skipped == 1


def test_capture_stop(world):
    bus, reg, pub, repo_client, capture = world
    capture.stop()
    pub.publish("news.x", DataObject(reg, "story", headline="h"))
    bus.settle(2.0)
    assert capture.captured == 0


def test_query_server_end_to_end(world):
    bus, reg, pub, repo_client, capture = world
    server = QueryServer(repo_client, capture.store, "svc.repo")
    pub.publish("news.equity.gmc",
                DataObject(reg, "story", headline="up", topic="gmc"))
    pub.publish("news.equity.ibm",
                DataObject(reg, "story", headline="down", topic="ibm"))
    bus.settle(2.0)

    rmi = RmiClient(bus.client("node02", "analyst"), "svc.repo")
    results = {}
    rmi.call("find", {"type_name": "story", "attribute": "topic",
                      "value": "gmc"},
             lambda v, e: results.update(find=(v, e)))
    bus.run_for(2.0)
    value, error = results["find"]
    assert error is None
    assert len(value) == 1
    assert value[0].get("headline") == "up"

    rmi.call("tally", {"type_name": "story"},
             lambda v, e: results.update(tally=(v, e)))
    bus.run_for(2.0)
    assert results["tally"] == (2, None)

    rmi.call("find_all", {"type_name": "story"},
             lambda v, e: results.update(all=(v, e)))
    bus.run_for(2.0)
    assert len(results["all"][0]) == 2

    oid = value[0].oid
    rmi.call("fetch", {"oid": oid},
             lambda v, e: results.update(fetch=(v, e)))
    bus.run_for(2.0)
    assert results["fetch"][0].oid == oid

    rmi.call("stored_types", {},
             lambda v, e: results.update(types=(v, e)))
    bus.run_for(2.0)
    assert "story" in results["types"][0]


def test_query_server_error_for_missing_oid(world):
    bus, reg, pub, repo_client, capture = world
    QueryServer(repo_client, capture.store, "svc.repo")
    rmi = RmiClient(bus.client("node02", "analyst"), "svc.repo")
    out = []
    rmi.call("fetch", {"oid": "story:ghost"},
             lambda v, e: out.append((v, e)))
    bus.run_for(2.0)
    assert out[0][0] is None
    assert "StoreError" in out[0][1]


def test_capture_survives_crash_via_write_ahead_log(world):
    """The guaranteed-delivery contract end to end: the publisher's ack
    means the data is durable, even if the capture host crashes right
    after."""
    bus, reg, pub, repo_client, capture = world
    pub.publish("news.equity.gmc", DataObject(reg, "story", headline="h1"),
                qos=QoS.GUARANTEED)
    bus.settle(2.0)
    assert bus.daemon("node00").guaranteed_pending() == []   # acked
    bus.crash_host("node01")
    bus.run_for(1.0)
    bus.recover_host("node01")
    bus.settle(3.0)
    # the in-memory database was rebuilt from the stable WAL
    assert capture.replayed == 1
    assert capture.store.count("story") == 1
    stored = capture.store.query("story", headline="h1")
    assert len(stored) == 1
    assert capture.subject_of(stored[0].oid) == "news.equity.gmc"
    # and no duplicate arrived via guaranteed redelivery
    pub.publish("news.equity.gmc", DataObject(reg, "story", headline="h2"),
                qos=QoS.GUARANTEED)
    bus.settle(3.0)
    assert capture.store.count("story") == 2


def test_non_persistent_capture_loses_data_on_crash(world):
    bus, reg, pub, repo_client, capture = world
    capture.stop()
    volatile_client = bus.client("node02", "volatile_repo")
    volatile = CaptureServer(volatile_client, ["news.>"], persistent=False)
    pub.publish("news.x", DataObject(reg, "story", headline="gone"))
    bus.settle(2.0)
    assert volatile.captured == 1
    bus.crash_host("node02")
    bus.recover_host("node02")
    assert volatile.store.count("story") == 1   # in-memory object remains,
    assert volatile.replayed == 0               # but nothing was replayed
    # (the point: nothing in stable storage backs it)
    assert bus.host("node02").stable.log_length("repo.wal") == 0


def test_find_where_with_serialized_predicate(world):
    from repro.repository import Contains, Or, predicate_to_wire
    bus, reg, pub, repo_client, capture = world
    QueryServer(repo_client, capture.store, "svc.repo")
    for headline, topic in [("alpha up", "gmc"), ("beta down", "ibm"),
                            ("gamma up", "tsm")]:
        pub.publish("news.x", DataObject(reg, "story", headline=headline,
                                         topic=topic))
    bus.settle(2.0)
    rmi = RmiClient(bus.client("node02", "analyst"), "svc.repo")
    predicate = Or(Contains("headline", "up"), Contains("topic", "ibm"))
    out = {}
    rmi.call("find_where",
             {"type_name": "story",
              "predicate": predicate_to_wire(predicate),
              "order_by": "headline", "limit": 2},
             lambda v, e: out.update(r=(v, e)))
    bus.run_for(2.0)
    value, error = out["r"]
    assert error is None
    assert [s.get("headline") for s in value] == ["alpha up", "beta down"]


def test_find_where_malformed_predicate_reports_error(world):
    bus, reg, pub, repo_client, capture = world
    QueryServer(repo_client, capture.store, "svc.repo")
    rmi = RmiClient(bus.client("node02", "analyst"), "svc.repo")
    out = {}
    rmi.call("find_where",
             {"type_name": "story", "predicate": {"op": "explode"},
              "order_by": "", "limit": 0},
             lambda v, e: out.update(r=(v, e)))
    bus.run_for(2.0)
    assert out["r"][0] is None
    assert "unknown predicate op" in out["r"][1]
