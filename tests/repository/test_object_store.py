"""Tests for the object-relational mapping (the Object Repository core)."""

import pytest

from repro.objects import (AttributeSpec, DataObject, TypeDescriptor,
                           standard_registry)
from repro.repository import (Contains, Database, Eq, Gt, ObjectStore, Or,
                              StoreError, main_table_name)


@pytest.fixture
def reg():
    registry = standard_registry()
    registry.register(TypeDescriptor(
        "source", attributes=[AttributeSpec("name", "string")]))
    registry.register(TypeDescriptor(
        "story",
        attributes=[
            AttributeSpec("headline", "string"),
            AttributeSpec("words", "int", required=False),
            AttributeSpec("score", "float", required=False),
            AttributeSpec("hot", "bool", required=False),
            AttributeSpec("raw", "bytes", required=False),
            AttributeSpec("industry_groups", "list<string>", required=False),
            AttributeSpec("country_codes", "map<string>", required=False),
            AttributeSpec("source", "source", required=False),
            AttributeSpec("sources", "list<source>", required=False),
            AttributeSpec("extra", "any", required=False),
        ]))
    registry.register(TypeDescriptor(
        "reuters_story", supertype="story",
        attributes=[AttributeSpec("ric", "string", required=False)]))
    return registry


@pytest.fixture
def store(reg):
    return ObjectStore(Database(), reg)


def full_story(reg, **extra):
    return DataObject(reg, "story", dict({
        "headline": "Fab5 yields up",
        "words": 420,
        "score": 8.5,
        "hot": True,
        "raw": b"\x01\x02",
        "industry_groups": ["semis", "equipment"],
        "country_codes": {"us": "United States", "jp": "Japan"},
        "source": DataObject(reg, "source", name="Reuters"),
    }, **extra))


def test_store_and_load_roundtrip(reg, store):
    story = full_story(reg)
    oid = store.store(story)
    loaded = store.load(oid)
    assert loaded == story
    assert loaded.oid == oid
    assert loaded.get("industry_groups") == ["semis", "equipment"]
    assert loaded.get("country_codes")["jp"] == "Japan"
    assert loaded.get("source").get("name") == "Reuters"
    assert loaded.get("raw") == b"\x01\x02"


def test_complex_object_decomposed_into_tables(reg, store):
    """'Every object must be mapped into collections of simple database
    relations' — check the actual relational layout."""
    store.store(full_story(reg))
    tables = store.db.tables()
    assert main_table_name("story") in tables
    assert main_table_name("source") in tables      # nested object's table
    assert "obj_story__industry_groups" in tables   # list child table
    assert "obj_story__country_codes" in tables     # map child table
    groups = store.db.table("obj_story__industry_groups").select()
    assert sorted(g["v"] for g in groups) == ["equipment", "semis"]
    # the nested source is a row in its own table, referenced by oid
    story_row = store.db.table(main_table_name("story")).select()[0]
    assert story_row["a_source__oid"].startswith("source:")


def test_unset_optional_attributes_roundtrip(reg, store):
    story = DataObject(reg, "story", headline="bare")
    loaded = store.load(store.store(story))
    assert loaded.get("words") is None
    assert loaded.get("industry_groups") is None
    assert loaded == story


def test_store_replaces_existing_oid(reg, store):
    story = full_story(reg)
    store.store(story)
    story.set("headline", "updated")
    story.set("industry_groups", ["only-one"])
    store.store(story)
    loaded = store.load(story.oid)
    assert loaded.get("headline") == "updated"
    assert loaded.get("industry_groups") == ["only-one"]
    assert store.db.table(main_table_name("story")).count() == 1


def test_any_attribute_marshalled(reg, store):
    story = DataObject(reg, "story", headline="x",
                       extra={"nested": [1, 2, {"deep": True}]})
    loaded = store.load(store.store(story))
    assert loaded.get("extra") == {"nested": [1, 2, {"deep": True}]}


def test_list_of_objects(reg, store):
    story = DataObject(reg, "story", headline="x", sources=[
        DataObject(reg, "source", name="A"),
        DataObject(reg, "source", name="B")])
    loaded = store.load(store.store(story))
    assert [s.get("name") for s in loaded.get("sources")] == ["A", "B"]


def test_query_by_attribute_equality(reg, store):
    for headline, words in [("a", 10), ("b", 20), ("c", 10)]:
        store.store(DataObject(reg, "story", headline=headline, words=words))
    tens = store.query("story", words=10)
    assert sorted(s.get("headline") for s in tens) == ["a", "c"]


def test_query_with_predicates(reg, store):
    for headline, words in [("alpha", 10), ("beta", 20), ("gamma", 30)]:
        store.store(DataObject(reg, "story", headline=headline, words=words))
    big = store.query("story", predicate=Gt("words", 15))
    assert sorted(s.get("headline") for s in big) == ["beta", "gamma"]
    either = store.query("story", predicate=Or(Eq("headline", "alpha"),
                                               Contains("headline", "mm")))
    assert sorted(s.get("headline") for s in either) == ["alpha", "gamma"]


def test_query_returns_subtype_instances(reg, store):
    """'This conversion respects the type hierarchy, enabling queries to
    return all objects ... including objects that are instances of a
    subtype.'"""
    store.store(DataObject(reg, "story", headline="plain"))
    store.store(DataObject(reg, "reuters_story", headline="wired",
                           ric="GM.N"))
    all_stories = store.query("story")
    assert sorted(s.get("headline") for s in all_stories) == \
        ["plain", "wired"]
    types = {s.type_name for s in all_stories}
    assert types == {"story", "reuters_story"}
    # subtype-only query still works, and exact-type query excludes
    assert len(store.query("reuters_story")) == 1
    assert len(store.query("story", include_subtypes=False)) == 1


def test_old_queries_work_as_new_subtypes_appear(reg, store):
    """Section 5.2: dynamic schema generation for new types."""
    store.store(DataObject(reg, "story", headline="old"))
    assert store.count("story") == 1
    # a brand-new subtype arrives (e.g. defined in TDL at run time)
    reg.register(TypeDescriptor(
        "ap_story", supertype="story",
        attributes=[AttributeSpec("wire_id", "string", required=False)]))
    store.store(DataObject(reg, "ap_story", headline="new", wire_id="7"))
    assert main_table_name("ap_story") in store.db.tables()
    assert store.count("story") == 2
    assert sorted(s.get("headline") for s in store.query("story")) == \
        ["new", "old"]


def test_query_by_object_reference(reg, store):
    src = DataObject(reg, "source", name="Reuters")
    store.store(DataObject(reg, "story", headline="a", source=src))
    store.store(DataObject(reg, "story", headline="b"))
    hits = store.query("story", source=src)
    assert [s.get("headline") for s in hits] == ["a"]


def test_query_unqueryable_attribute_rejected(reg, store):
    store.store(full_story(reg))
    with pytest.raises(StoreError):
        store.query("story", industry_groups=["semis"])   # child table attr


def test_load_missing_oid(reg, store):
    with pytest.raises(StoreError):
        store.load("story:does-not-exist")
    assert not store.exists("story:does-not-exist")


def test_delete(reg, store):
    story = full_story(reg)
    oid = store.store(story)
    assert store.delete(oid) is True
    assert not store.exists(oid)
    assert store.db.table("obj_story__industry_groups").count() == 0
    assert store.delete(oid) is False
    # the shared nested source survives
    assert store.count("source") == 1


def test_count(reg, store):
    assert store.count("story") == 0
    store.store(DataObject(reg, "story", headline="1"))
    store.store(DataObject(reg, "reuters_story", headline="2"))
    assert store.count("story") == 2
    assert store.count("story", include_subtypes=False) == 1


def test_store_non_object_rejected(reg, store):
    with pytest.raises(StoreError):
        store.store({"not": "an object"})


def test_eager_schema_on_registration(reg):
    store = ObjectStore(Database(), reg, eager_schema=True)
    reg.register(TypeDescriptor(
        "alert", attributes=[AttributeSpec("text", "string")]))
    assert store.db.has_table(main_table_name("alert"))


def test_unknown_type_query_rejected(reg, store):
    with pytest.raises(Exception):
        store.query("ghost_type")


def test_query_order_by_and_limit(reg, store):
    for headline, words in [("c", 30), ("a", 10), ("b", 20), ("d", None)]:
        attrs = {"headline": headline}
        if words is not None:
            attrs["words"] = words
        store.store(DataObject(reg, "story", attributes=attrs))
    ordered = store.query("story", order_by="words")
    assert [s.get("headline") for s in ordered] == ["a", "b", "c", "d"]
    reverse = store.query("story", order_by="words", descending=True)
    assert [s.get("headline") for s in reverse][:3] == ["c", "b", "a"]
    top2 = store.query("story", order_by="words", limit=2)
    assert [s.get("headline") for s in top2] == ["a", "b"]
    assert store.query("story", limit=0) == []


def test_query_order_by_spans_subtypes(reg, store):
    store.store(DataObject(reg, "story", headline="plain", words=20))
    store.store(DataObject(reg, "reuters_story", headline="wired",
                           words=10, ric="X"))
    ordered = store.query("story", order_by="words")
    assert [s.get("headline") for s in ordered] == ["wired", "plain"]


def test_order_by_unqueryable_attribute_rejected(reg, store):
    store.store(full_story(reg))
    with pytest.raises(StoreError):
        store.query("story", order_by="industry_groups")


def test_attribute_index_accelerates_equality(reg, store):
    for i in range(50):
        store.store(DataObject(reg, "story", headline=f"h{i}",
                               words=i % 5))
    store.create_attribute_index("story", "words")
    table = store.db.table(main_table_name("story"))
    scans_before = table.scans
    hits = store.query("story", words=3, include_subtypes=False)
    assert len(hits) == 10
    assert table.scans == scans_before          # index, not a scan
    assert table.index_lookups > 0
