"""Edge-case tests for the transports: fragmentation boundaries,
reassembly hygiene, stream teardown mid-transfer."""

import pytest

from repro.sim import (CostModel, DatagramSocket, EthernetSegment,
                       Simulator, StreamManager)
from repro.sim.transport import FRAGMENT_HEADER


def make_lan(cost=None, seed=0, n=2):
    sim = Simulator(seed=seed)
    lan = EthernetSegment(sim, cost=cost or CostModel.ideal())
    hosts = [lan.add_host(f"node{i}") for i in range(n)]
    return sim, lan, hosts


def test_datagram_exactly_at_mtu_is_single_frame():
    cost = CostModel.ideal()
    cost.mtu = 100
    sim, lan, (a, b) = make_lan(cost)
    got = []
    DatagramSocket(sim, b, 40, lambda p, s, src: got.append(s))
    sender = DatagramSocket(sim, a, 41, lambda *x: None)
    sender.sendto(b"x" * 100, "node1", 40)
    sim.run()
    assert got == [100]
    assert lan.frames_transmitted == 1


def test_datagram_one_byte_over_mtu_fragments():
    cost = CostModel.ideal()
    cost.mtu = 100
    sim, lan, (a, b) = make_lan(cost)
    got = []
    DatagramSocket(sim, b, 40, lambda p, s, src: got.append(s))
    sender = DatagramSocket(sim, a, 41, lambda *x: None)
    sender.sendto(b"x" * 101, "node1", 40)
    sim.run()
    assert got == [101]
    assert lan.frames_transmitted == 2
    # each fragment pays the fragmentation header on the wire
    assert lan.bytes_transmitted == 101 + 2 * FRAGMENT_HEADER


def test_fragments_carry_slices_not_copies():
    """Each fragment frame carries only its slice of the buffer."""
    cost = CostModel.ideal()
    cost.mtu = 100
    sim, lan, (a, b) = make_lan(cost)
    slices = []
    b.bind(40, lambda frame: slices.append(frame.payload.payload))
    sender = DatagramSocket(sim, a, 41, lambda *x: None)
    data = bytes(i % 256 for i in range(250))
    sender.sendto(data, "node1", 40)
    sim.run()
    assert [len(s) for s in slices] == [100, 100, 50]
    assert b"".join(slices) == data


def test_interleaved_fragmented_datagrams_reassemble():
    cost = CostModel.ideal()
    cost.mtu = 50
    cost.reorder_jitter = 0.002
    sim, lan, (a, b) = make_lan(cost, seed=3)
    got = []
    DatagramSocket(sim, b, 40, lambda p, s, src: got.append((p, s)))
    sender = DatagramSocket(sim, a, 41, lambda *x: None)
    sender.sendto(b"f" * 170, "node1", 40)
    sender.sendto(b"s" * 230, "node1", 40)
    sim.run()
    assert sorted(got) == [(b"f" * 170, 170), (b"s" * 230, 230)]


def test_reassembly_buffer_purges_stale_fragments():
    cost = CostModel.ideal()
    cost.mtu = 50
    sim, lan, (a, b) = make_lan(cost, seed=4)
    receiver = DatagramSocket(sim, b, 40, lambda *x: None)
    sender = DatagramSocket(sim, a, 41, lambda *x: None)
    # fire many large datagrams through a fully lossy net: fragments that
    # do arrive strand in the reassembly buffer
    cost.loss_probability = 0.5
    for i in range(600):
        sender.sendto(bytes([i % 256]) * 120, "node1", 40)
    sim.run_until(10.0)
    # the purge path keeps the buffer bounded (256 + recent additions)
    assert len(receiver._reassembly) <= 300


def test_stream_close_midstream_drops_queue():
    sim, lan, (a, b) = make_lan()
    server = StreamManager(sim, b, 50)
    got = []
    server.listen(lambda c: setattr(c, "on_message",
                                    lambda m, s: got.append(m)))
    client = StreamManager(sim, a, 51)
    conn = client.connect("node1", 50)
    for i in range(5):
        conn.send(f"{i}".encode())
    sim.run_until(0.001)       # a moment: some in flight, some queued
    conn.close()
    sim.run_until(5.0)
    assert got == sorted(got)  # whatever arrived is prefix-ordered
    with pytest.raises(RuntimeError):
        conn.send(b"99")


def test_two_connections_between_same_hosts_are_independent():
    sim, lan, (a, b) = make_lan()
    server = StreamManager(sim, b, 50)
    inboxes = {}

    def on_accept(c):
        inboxes[c.conn_id] = []
        c.on_message = lambda m, s, c=c: inboxes[c.conn_id].append(m)

    server.listen(on_accept)
    client = StreamManager(sim, a, 51)
    c1 = client.connect("node1", 50)
    c2 = client.connect("node1", 50)
    c1.send(b"one-a")
    c2.send(b"two-a")
    c1.send(b"one-b")
    sim.run()
    boxes = sorted(inboxes.values(), key=len, reverse=True)
    assert boxes[0] == [b"one-a", b"one-b"]
    assert boxes[1] == [b"two-a"]


def test_stream_survives_duplicated_syn():
    cost = CostModel.ideal()
    cost.duplicate_probability = 0.5
    sim, lan, (a, b) = make_lan(cost, seed=5)
    server = StreamManager(sim, b, 50)
    accepted = []
    got = []
    server.listen(lambda c: (accepted.append(c),
                             setattr(c, "on_message",
                                     lambda m, s: got.append(m))))
    client = StreamManager(sim, a, 51)
    conn = client.connect("node1", 50)
    for i in range(10):
        conn.send(f"{i}".encode())
    sim.run()
    assert len(accepted) == 1          # duplicate SYNs: one connection
    assert got == [f"{i}".encode() for i in range(10)]
