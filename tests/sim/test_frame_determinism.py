"""Frame ids are per-segment, so same-seed sims are bit-identical no
matter what ran earlier in the process (the old module-global counter
leaked ids across simulators)."""

from repro.sim import Simulator
from repro.sim.ethernet import EthernetSegment
from repro.sim.network import CostModel, Frame


def _run_once():
    sim = Simulator(seed=5)
    segment = EthernetSegment(sim, name="lan", cost=CostModel.ideal())
    sender = segment.add_host("a")
    receiver = segment.add_host("b")
    ids = []
    receiver.bind(9, lambda frame: ids.append(frame.frame_id))
    for i in range(3):
        sender.send_frame(Frame(src="a", dst="b", src_port=9, dst_port=9,
                                payload=i, size=100))
    sim.run()
    return ids


def test_frame_ids_restart_for_every_segment():
    first = _run_once()
    second = _run_once()    # back-to-back in one process
    assert first == second == [1, 2, 3]


def test_two_segments_in_one_sim_count_independently():
    sim = Simulator(seed=5)
    cost = CostModel.ideal()
    seen = {"lan1": [], "lan2": []}
    for name in seen:
        segment = EthernetSegment(sim, name=name, cost=cost)
        sender = segment.add_host(f"{name}-a")
        receiver = segment.add_host(f"{name}-b")
        receiver.bind(9, lambda frame, name=name:
                      seen[name].append(frame.frame_id))
        sender.send_frame(Frame(src=f"{name}-a", dst=f"{name}-b",
                                src_port=9, dst_port=9, payload=0,
                                size=50))
    sim.run()
    assert seen == {"lan1": [1], "lan2": [1]}
