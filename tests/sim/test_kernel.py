"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import PeriodicTimer, SimError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for label in "abcde":
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == list("abcde")


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, event.cancel)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimError):
        sim.schedule(-0.1, lambda: None)


def test_nested_scheduling():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(1.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 2.0


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []

    def first():
        sim.call_soon(lambda: times.append(sim.now))

    sim.schedule(5.0, first)
    sim.run()
    assert times == [5.0]


def test_run_until_stops_at_deadline():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(3.0, fired.append, "c")
    sim.run_until(2.5)
    assert fired == ["a", "b"]
    assert sim.now == 2.5
    sim.run()
    assert fired == ["a", "b", "c"]


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run_until(10.0)
    assert sim.now == 10.0


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.schedule_at(5.0, fired.append, "x"))
    sim.run()
    assert fired == ["x"]
    assert sim.now == 5.0


def test_stop_interrupts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimError):
        sim.run(max_events=100)


def test_rng_streams_are_deterministic_and_independent():
    sim1 = Simulator(seed=42)
    sim2 = Simulator(seed=42)
    a1 = [sim1.rng("a").random() for _ in range(5)]
    # interleave a different stream in sim2; "a" must be unaffected
    sim2.rng("b").random()
    a2 = [sim2.rng("a").random() for _ in range(5)]
    assert a1 == a2


def test_rng_streams_differ_across_seeds():
    assert Simulator(seed=1).rng("x").random() != \
        Simulator(seed=2).rng("x").random()


def test_periodic_timer_fires_until_stopped():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
    sim.schedule(3.5, timer.stop)
    sim.run()
    assert ticks == [1.0, 2.0, 3.0]
    assert timer.stopped


def test_periodic_timer_initial_delay():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now),
                          initial_delay=0.25)
    sim.schedule(2.5, timer.stop)
    sim.run()
    assert ticks == [0.25, 1.25, 2.25]


def test_periodic_timer_rejects_bad_interval():
    with pytest.raises(SimError):
        PeriodicTimer(Simulator(), 0.0, lambda: None)


def test_pending_counts_live_events():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    e1.cancel()
    assert sim.pending() == 1


def test_pending_exact_through_fire_and_cancel():
    """The O(1) counter stays exact: cancelling an event that already
    fired (protocol cleanup does this constantly) must not skew it."""
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
    sim.run_until(2.5)            # events[0] and events[1] fired
    events[0].cancel()            # post-fire cancel: no-op
    events[1].cancel()
    assert sim.pending() == 2
    events[2].cancel()            # genuine cancel of a heaped event
    events[2].cancel()            # idempotent: counted once
    assert sim.pending() == 1
    sim.run()
    assert sim.pending() == 0


def test_heap_compaction_under_timer_churn():
    """Cancelling most of the heap triggers compaction: dead events are
    physically removed instead of lingering until their deadline."""
    sim = Simulator()
    keep = [sim.schedule(1000.0, lambda: None) for _ in range(5)]
    churn = [sim.schedule(2000.0, lambda: None) for _ in range(500)]
    for event in churn:
        event.cancel()
    assert sim.compactions >= 1
    assert len(sim._heap) < 100        # corpses actually evicted
    assert sim.pending() == len(keep)


def test_compaction_preserves_event_order():
    """Same schedule with and without compaction fires identically."""

    def run(churn: int) -> list:
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        doomed = [sim.schedule(50.0 + i, lambda: fired.append("bad"))
                  for i in range(churn)]
        for event in doomed:
            event.cancel()
        sim.run_until(20.0)
        return fired

    quiet = run(churn=2)               # far below the compaction floor
    churned = run(churn=300)           # forces at least one compaction
    assert quiet == churned == list(range(10))
