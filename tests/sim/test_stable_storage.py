"""Tests for crash-surviving stable storage."""

from repro.sim import EthernetSegment, Simulator, StableStore


def test_log_append_and_read():
    store = StableStore()
    assert store.append("wal", {"seq": 1}) == 0
    assert store.append("wal", {"seq": 2}) == 1
    assert store.read_log("wal") == [{"seq": 1}, {"seq": 2}]
    assert store.log_length("wal") == 2


def test_read_missing_log_is_empty():
    store = StableStore()
    assert store.read_log("nope") == []
    assert store.log_length("nope") == 0


def test_records_are_isolated_from_caller_mutation():
    store = StableStore()
    record = {"items": [1, 2]}
    store.append("wal", record)
    record["items"].append(3)           # mutate after write
    assert store.read_log("wal") == [{"items": [1, 2]}]
    snapshot = store.read_log("wal")
    snapshot[0]["items"].append(99)     # mutate a read copy
    assert store.read_log("wal") == [{"items": [1, 2]}]


def test_truncate_log():
    store = StableStore()
    for i in range(5):
        store.append("wal", i)
    store.truncate_log("wal", 3)
    assert store.read_log("wal") == [3, 4]
    store.truncate_log("missing", 1)   # no-op


def test_delete_log_and_listing():
    store = StableStore()
    store.append("b", 1)
    store.append("a", 1)
    assert store.logs() == ["a", "b"]
    store.delete_log("a")
    assert store.logs() == ["b"]


def test_kv_roundtrip_and_isolation():
    store = StableStore()
    store.put("state", {"n": 1})
    value = store.get("state")
    value["n"] = 99
    assert store.get("state") == {"n": 1}
    assert store.get("missing", "dflt") == "dflt"
    assert "state" in store
    store.delete("state")
    assert "state" not in store


def test_iter_log_yields_copies():
    store = StableStore()
    store.append("wal", [1])
    for record in store.iter_log("wal"):
        record.append(2)
    assert store.read_log("wal") == [[1]]


def test_stable_storage_survives_host_crash():
    sim = Simulator()
    lan = EthernetSegment(sim)
    host = lan.add_host("a")
    host.stable.append("wal", "precious")
    host.stable.put("mode", "capture")
    host.crash()
    host.recover()
    assert host.stable.read_log("wal") == ["precious"]
    assert host.stable.get("mode") == "capture"


def test_write_count_tracks_io():
    store = StableStore()
    store.append("wal", 1)
    store.put("k", 2)
    store.truncate_log("wal", 1)
    assert store.write_count == 3
