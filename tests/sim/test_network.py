"""Tests for hosts, the Ethernet segment, and the cost model."""

import pytest

from repro.sim import (BROADCAST, CostModel, EthernetSegment, Frame,
                       PortInUseError, Simulator)


def make_lan(n=3, cost=None, seed=0):
    sim = Simulator(seed=seed)
    lan = EthernetSegment(sim, cost=cost or CostModel.ideal())
    hosts = [lan.add_host(f"node{i}") for i in range(n)]
    return sim, lan, hosts


def recv_list(host, port):
    """Bind ``port`` and collect delivered frames into the returned list."""
    frames = []
    host.bind(port, frames.append)
    return frames


def test_unicast_frame_reaches_only_destination():
    sim, lan, (a, b, c) = make_lan()
    got_b = recv_list(b, 7)
    got_c = recv_list(c, 7)
    a.send_frame(Frame("node0", "node1", 7, 7, "hello", 10))
    sim.run()
    assert [f.payload for f in got_b] == ["hello"]
    assert got_c == []


def test_broadcast_reaches_all_but_sender():
    sim, lan, hosts = make_lan(5)
    inboxes = [recv_list(h, 9) for h in hosts]
    hosts[0].send_frame(Frame("node0", BROADCAST, 9, 9, "x", 10))
    sim.run()
    assert [len(box) for box in inboxes] == [0, 1, 1, 1, 1]


def test_frame_to_unbound_port_is_dropped():
    sim, lan, (a, b, c) = make_lan()
    a.send_frame(Frame("node0", "node1", 7, 99, "x", 10))
    sim.run()
    assert b.frames_received == 0


def test_port_rebinding_requires_unbind():
    _, _, (a, *_rest) = make_lan()
    a.bind(5, lambda f: None)
    with pytest.raises(PortInUseError):
        a.bind(5, lambda f: None)
    a.unbind(5)
    a.bind(5, lambda f: None)


def test_crashed_host_does_not_receive():
    sim, lan, (a, b, _) = make_lan()
    got = recv_list(b, 7)
    b.crash()
    a.send_frame(Frame("node0", "node1", 7, 7, "x", 10))
    sim.run()
    assert got == []
    assert not b.up


def test_crashed_host_cannot_send():
    _, _, (a, *_rest) = make_lan()
    a.crash()
    with pytest.raises(RuntimeError):
        a.send_frame(Frame("node0", "node1", 7, 7, "x", 10))


def test_recovery_clears_ports_and_fires_listeners():
    sim, lan, (a, b, _) = make_lan()
    events = []
    b.on_crash(lambda: events.append("crash"))
    b.on_recover(lambda: events.append("recover"))
    b.bind(7, lambda f: None)
    b.crash()
    b.recover()
    assert events == ["crash", "recover"]
    assert not b.port_bound(7)   # volatile state was lost
    assert b.up


def test_frame_queued_in_cpu_dies_on_crash():
    # Crash after send_frame but before the frame reaches the wire.
    cost = CostModel.ideal()
    cost.cpu_send_per_packet = 1.0   # 1 second of CPU per packet
    sim = Simulator()
    lan = EthernetSegment(sim, cost=cost)
    a, b = lan.add_host("a"), lan.add_host("b")
    got = recv_list(b, 7)
    a.send_frame(Frame("a", "b", 7, 7, "x", 10))
    sim.schedule(0.5, a.crash)
    sim.run()
    assert got == []


def test_epoch_increments_per_crash():
    _, _, (a, *_rest) = make_lan()
    assert a.epoch == 0
    a.crash()
    a.recover()
    a.crash()
    assert a.epoch == 2


def test_wire_serialization_orders_frames():
    """Two back-to-back frames serialize through the shared medium."""
    cost = CostModel.ideal()
    cost.bandwidth_bytes_per_sec = 100.0   # 10-byte frame = ~0.44 s on wire
    cost.frame_overhead = 0
    sim = Simulator()
    lan = EthernetSegment(sim, cost=cost)
    a, b = lan.add_host("a"), lan.add_host("b")
    arrivals = []
    b.bind(7, lambda f: arrivals.append((f.payload, sim.now)))
    a.send_frame(Frame("a", "b", 7, 7, "one", 10))
    a.send_frame(Frame("a", "b", 7, 7, "two", 10))
    sim.run()
    assert [p for p, _ in arrivals] == ["one", "two"]
    t1, t2 = (t for _, t in arrivals)
    assert t2 - t1 >= 10 / 100.0 * 0.99   # second waited for the medium


def test_latency_grows_with_message_size():
    cost = CostModel()   # realistic model
    cost.loss_probability = 0.0
    sim = Simulator()
    lan = EthernetSegment(sim, cost=cost)
    a, b = lan.add_host("a"), lan.add_host("b")
    arrivals = {}
    b.bind(7, lambda f: arrivals.setdefault(f.payload, sim.now))
    a.send_frame(Frame("a", "b", 7, 7, "small", 64))
    sim.run()
    t_small = arrivals["small"]
    a.send_frame(Frame("a", "b", 7, 7, "big", 1400))
    sim.run()
    t_big = arrivals["big"] - t_small
    assert t_big > t_small


def test_loss_probability_drops_frames():
    cost = CostModel.ideal()
    cost.loss_probability = 1.0
    sim = Simulator()
    lan = EthernetSegment(sim, cost=cost)
    a, b = lan.add_host("a"), lan.add_host("b")
    got = recv_list(b, 7)
    a.send_frame(Frame("a", "b", 7, 7, "x", 10))
    sim.run()
    assert got == []
    assert lan.frames_dropped == 1


def test_duplicate_probability_duplicates():
    cost = CostModel.ideal()
    cost.duplicate_probability = 1.0
    sim = Simulator()
    lan = EthernetSegment(sim, cost=cost)
    a, b = lan.add_host("a"), lan.add_host("b")
    got = recv_list(b, 7)
    a.send_frame(Frame("a", "b", 7, 7, "x", 10))
    sim.run()
    assert len(got) == 2


def test_partition_blocks_cross_group_traffic():
    sim, lan, (a, b, c) = make_lan()
    got_b = recv_list(b, 7)
    got_c = recv_list(c, 7)
    lan.partition({"node0", "node1"}, {"node2"})
    a.send_frame(Frame("node0", BROADCAST, 7, 7, "x", 10))
    sim.run()
    assert len(got_b) == 1
    assert got_c == []


def test_heal_restores_connectivity():
    sim, lan, (a, b, c) = make_lan()
    got_c = recv_list(c, 7)
    lan.partition({"node0", "node1"})
    a.send_frame(Frame("node0", "node2", 7, 7, "x", 10))
    sim.run()
    assert got_c == []
    lan.heal()
    a.send_frame(Frame("node0", "node2", 7, 7, "y", 10))
    sim.run()
    assert [f.payload for f in got_c] == ["y"]


def test_partition_implicit_rest_group():
    sim, lan, hosts = make_lan(4)
    lan.partition({"node0"})
    assert lan.partitioned()
    got3 = recv_list(hosts[3], 7)
    # node2 and node3 are both in the implicit rest group
    hosts[2].send_frame(Frame("node2", "node3", 7, 7, "x", 10))
    sim.run()
    assert len(got3) == 1


def test_duplicate_address_rejected():
    sim = Simulator()
    lan = EthernetSegment(sim)
    lan.add_host("a")
    with pytest.raises(ValueError):
        lan.add_host("a")


def test_negative_frame_size_rejected():
    with pytest.raises(ValueError):
        Frame("a", "b", 1, 1, None, -1)


def test_traffic_counters():
    sim, lan, (a, b, _) = make_lan()
    recv_list(b, 7)
    a.send_frame(Frame("node0", "node1", 7, 7, "x", 100))
    sim.run()
    assert a.frames_sent == 1 and a.bytes_sent == 100
    assert b.frames_received == 1 and b.bytes_received == 100
    assert lan.frames_transmitted == 1 and lan.bytes_transmitted == 100


# ----------------------------------------------------------------------
# background traffic
# ----------------------------------------------------------------------

def test_background_traffic_hits_target_load():
    from repro.sim import BackgroundTraffic
    sim = Simulator(seed=1)
    lan = EthernetSegment(sim)   # default 10 Mbit/s cost model
    lan.add_host("a")
    bg = BackgroundTraffic(sim, lan, load=0.2)
    sim.run_until(20.0)
    bg.stop()
    offered = bg.bytes_injected / 20.0
    capacity = lan.cost.bandwidth_bytes_per_sec
    assert 0.15 < offered / capacity < 0.25   # ~20% of the wire


def test_background_traffic_delays_foreground_frames():
    from repro.sim import BackgroundTraffic
    def one_way_latency(load, seed=2):
        sim = Simulator(seed=seed)
        lan = EthernetSegment(sim)
        a, b = lan.add_host("a"), lan.add_host("b")
        if load:
            BackgroundTraffic(sim, lan, load=load)
        arrivals = []
        b.bind(7, lambda f: arrivals.append(sim.now))
        sends = []
        for i in range(20):
            def send(i=i):
                sends.append(sim.now)
                a.send_frame(Frame("a", "b", 7, 7, i, 1000))
            sim.schedule(1.0 + i * 0.5, send)
        sim.run_until(15.0)
        lat = [r - s for r, s in zip(arrivals, sends)]
        return sum(lat) / len(lat)

    assert one_way_latency(0.6) > one_way_latency(0.0)


def test_background_traffic_rejects_silly_load():
    from repro.sim import BackgroundTraffic
    sim = Simulator()
    lan = EthernetSegment(sim)
    with pytest.raises(ValueError):
        BackgroundTraffic(sim, lan, load=0.99)


def test_background_traffic_zero_load_is_inert():
    from repro.sim import BackgroundTraffic
    sim = Simulator()
    lan = EthernetSegment(sim)
    bg = BackgroundTraffic(sim, lan, load=0.0)
    sim.run_until(5.0)
    assert bg.frames_injected == 0
