"""Tests for the datagram and stream transports."""

import pytest

from repro.sim import CostModel, DatagramSocket, EthernetSegment, Simulator, StreamManager


def make_lan(n=2, cost=None, seed=0):
    sim = Simulator(seed=seed)
    lan = EthernetSegment(sim, cost=cost or CostModel.ideal())
    hosts = [lan.add_host(f"node{i}") for i in range(n)]
    return sim, lan, hosts


# ----------------------------------------------------------------------
# datagrams
# ----------------------------------------------------------------------

def test_datagram_roundtrip():
    sim, lan, (a, b) = make_lan()
    got = []
    DatagramSocket(sim, b, 40, lambda p, s, src: got.append((p, s, src)))
    sa = DatagramSocket(sim, a, 41, lambda *x: None)
    sa.sendto(b"p" * 20, "node1", 40)
    sim.run()
    assert got == [(b"p" * 20, 20, ("node0", 41))]


def test_datagram_rejects_non_bytes():
    sim, lan, (a, b) = make_lan()
    sa = DatagramSocket(sim, a, 41, lambda *x: None)
    with pytest.raises(TypeError):
        sa.sendto("a string, not bytes", "node1", 40)


def test_datagram_broadcast():
    sim, lan, hosts = make_lan(4)
    counts = []
    for h in hosts:
        box = []
        DatagramSocket(sim, h, 40, lambda p, s, src, box=box: box.append(p))
        counts.append(box)
    sender = DatagramSocket(sim, hosts[0], 41, lambda *x: None)
    sender.broadcast(b"hello world", 40)
    sim.run()
    assert [len(box) for box in counts] == [0, 1, 1, 1]


def test_large_datagram_fragments_and_reassembles():
    cost = CostModel.ideal()
    cost.mtu = 100
    sim, lan, (a, b) = make_lan(cost=cost)
    got = []
    DatagramSocket(sim, b, 40, lambda p, s, src: got.append((p, s)))
    sa = DatagramSocket(sim, a, 41, lambda *x: None)
    data = bytes(range(256)) * 3 + b"tail" * 45 + b"xx"   # 950 bytes
    assert len(data) == 950
    sa.sendto(data, "node1", 40)
    sim.run()
    # reassembly joins the sliced fragments back into the same buffer
    assert got == [(data, 950)]
    # 950 bytes over a 100-byte MTU = 10 frames on the wire
    assert lan.frames_transmitted == 10


def test_lost_fragment_loses_whole_datagram():
    cost = CostModel.ideal()
    cost.mtu = 100
    cost.loss_probability = 0.5
    sim, lan, (a, b) = make_lan(cost=cost, seed=7)
    got = []
    DatagramSocket(sim, b, 40, lambda p, s, src: got.append(p))
    sa = DatagramSocket(sim, a, 41, lambda *x: None)
    sa.sendto(b"b" * 1000, "node1", 40)
    sim.run()
    assert got == []   # with p=0.5 per frame, all 10 surviving is ~0.1%


def test_datagram_counters():
    sim, lan, (a, b) = make_lan()
    sb = DatagramSocket(sim, b, 40, lambda *x: None)
    sa = DatagramSocket(sim, a, 41, lambda *x: None)
    sa.sendto(b"one" * 3, "node1", 40)
    sa.sendto(b"two" * 3, "node1", 40)
    sim.run()
    assert sa.datagrams_sent == 2
    assert sb.datagrams_received == 2


# ----------------------------------------------------------------------
# streams
# ----------------------------------------------------------------------

def connected_pair(cost=None, seed=0):
    sim, lan, (a, b) = make_lan(cost=cost, seed=seed)
    server = StreamManager(sim, b, 50)
    accepted = []
    server.listen(accepted.append)
    client = StreamManager(sim, a, 51)
    conn = client.connect("node1", 50)
    return sim, lan, (a, b), (client, server), conn, accepted


def test_stream_connect_and_send():
    sim, lan, hosts, mgrs, conn, accepted = connected_pair()
    got = []

    def on_accept(server_conn):
        server_conn.on_message = lambda m, s: got.append(m)

    mgrs[1].listen(on_accept)   # replace collector with real handler
    conn2 = mgrs[0].connect("node1", 50)
    conn2.send(b"hello")
    conn2.send(b"world")
    sim.run()
    assert got == [b"hello", b"world"]


def test_stream_in_order_delivery_under_loss():
    cost = CostModel.ideal()
    cost.loss_probability = 0.2
    sim, lan, (a, b) = make_lan(cost=cost, seed=3)
    server = StreamManager(sim, b, 50)
    got = []

    def on_accept(c):
        c.on_message = lambda m, s: got.append(m)

    server.listen(on_accept)
    client = StreamManager(sim, a, 51)
    conn = client.connect("node1", 50)
    msgs = [f"m{i:02d}".encode() for i in range(40)]
    for m in msgs:
        conn.send(m)
    sim.run()
    assert got == msgs   # exactly once, in order, despite 20% frame loss


def test_stream_established_callback():
    sim, lan, (a, b) = make_lan()
    server = StreamManager(sim, b, 50)
    server.listen(lambda c: None)
    client = StreamManager(sim, a, 51)
    conn = client.connect("node1", 50)
    flags = []
    conn.on_established = lambda: flags.append(True)
    sim.run()
    assert flags == [True]
    assert conn.established


def test_connect_to_dead_host_times_out():
    sim, lan, (a, b) = make_lan()
    b.crash()
    client = StreamManager(sim, a, 51)
    conn = client.connect("node1", 50)
    errors = []
    conn.on_close = errors.append
    sim.run()
    assert errors == ["connect timed out"]
    assert conn.closed


def test_connect_to_non_listening_port_times_out():
    sim, lan, (a, b) = make_lan()
    StreamManager(sim, b, 50)   # bound but not listening
    client = StreamManager(sim, a, 51)
    conn = client.connect("node1", 50)
    errors = []
    conn.on_close = errors.append
    sim.run()
    assert errors == ["connect timed out"]


def test_peer_crash_detected_by_retransmit_exhaustion():
    sim, lan, (a, b) = make_lan()
    server = StreamManager(sim, b, 50)
    server.listen(lambda c: None)
    client = StreamManager(sim, a, 51)
    conn = client.connect("node1", 50)
    errors = []
    conn.on_close = errors.append
    sim.schedule(0.5, b.crash)
    sim.schedule(1.0, conn.send, b"lost")
    sim.run()
    assert errors == ["peer unreachable"]


def test_send_on_closed_connection_raises():
    sim, lan, (a, b) = make_lan()
    client = StreamManager(sim, a, 51)
    conn = client.connect("node1", 50)
    conn.close()
    with pytest.raises(RuntimeError):
        conn.send(b"x")


def test_fin_closes_peer():
    sim, lan, (a, b) = make_lan()
    server = StreamManager(sim, b, 50)
    server_conns = []
    server.listen(lambda c: server_conns.append(c))
    client = StreamManager(sim, a, 51)
    conn = client.connect("node1", 50)
    conn.on_established = lambda: conn.close()
    sim.run()
    assert server_conns[0].closed


def test_stream_window_respects_backpressure():
    """More queued messages than the window still all arrive, in order."""
    sim, lan, (a, b) = make_lan()
    server = StreamManager(sim, b, 50)
    got = []
    server.listen(lambda c: setattr(c, "on_message",
                                    lambda m, s: got.append(m)))
    client = StreamManager(sim, a, 51)
    conn = client.connect("node1", 50)
    n = conn.WINDOW * 4
    for i in range(n):
        conn.send(f"{i:03d}".encode())
    sim.run()
    assert got == [f"{i:03d}".encode() for i in range(n)]
