"""Tests for the tracer."""

from repro.sim import Tracer


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "send", subject="a.b")
    assert tracer.records == []


def test_emit_and_select():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "send", subject="a.b", size=10)
    tracer.emit(2.0, "recv", subject="a.b")
    tracer.emit(3.0, "send", subject="c.d", size=20)
    sends = tracer.select("send")
    assert len(sends) == 2
    assert tracer.select("send", subject="a.b")[0]["size"] == 10
    assert tracer.count("recv") == 1
    assert tracer.count("recv", subject="zzz") == 0


def test_category_filter():
    tracer = Tracer(enabled=True, categories=["send"])
    tracer.emit(1.0, "send")
    tracer.emit(2.0, "recv")
    assert tracer.count("send") == 1
    assert tracer.count("recv") == 0


def test_listener_and_clear():
    tracer = Tracer(enabled=True)
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit(1.0, "x", k=1)
    assert seen[0].get("k") == 1
    assert seen[0]["k"] == 1
    tracer.clear()
    assert tracer.records == []
