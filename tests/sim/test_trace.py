"""Tests for the tracer."""

from repro.sim import Tracer


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "send", subject="a.b")
    assert list(tracer.records) == []


def test_emit_and_select():
    tracer = Tracer(enabled=True)
    tracer.emit(1.0, "send", subject="a.b", size=10)
    tracer.emit(2.0, "recv", subject="a.b")
    tracer.emit(3.0, "send", subject="c.d", size=20)
    sends = tracer.select("send")
    assert len(sends) == 2
    assert tracer.select("send", subject="a.b")[0]["size"] == 10
    assert tracer.count("recv") == 1
    assert tracer.count("recv", subject="zzz") == 0


def test_category_filter():
    tracer = Tracer(enabled=True, categories=["send"])
    tracer.emit(1.0, "send")
    tracer.emit(2.0, "recv")
    assert tracer.count("send") == 1
    assert tracer.count("recv") == 0


def test_listener_and_clear():
    tracer = Tracer(enabled=True)
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit(1.0, "x", k=1)
    assert seen[0].get("k") == 1
    assert seen[0]["k"] == 1
    tracer.clear()
    assert list(tracer.records) == []


def test_ring_buffer_caps_records_and_counts_drops():
    tracer = Tracer(enabled=True, max_records=5)
    for i in range(8):
        tracer.emit(float(i), "tick", n=i)
    assert len(tracer.records) == 5
    assert tracer.dropped_records == 3
    # the oldest fell off the front; query helpers still work
    assert [r["n"] for r in tracer.select("tick")] == [3, 4, 5, 6, 7]
    assert tracer.count("tick") == 5
    tracer.clear()
    assert len(tracer.records) == 0
    assert tracer.dropped_records == 0


def test_unbounded_tracer_opt_in():
    tracer = Tracer(enabled=True, max_records=None)
    for i in range(10):
        tracer.emit(float(i), "tick")
    assert len(tracer.records) == 10
    assert tracer.dropped_records == 0
