"""Shared test configuration.

The wire codec keeps a module-global decode memo (and hit/miss stats) so
the N receivers of one broadcast share a single parse.  Left alone it
would leak entries — and stats — across test cases: a test could hit an
entry primed by an unrelated test, or assert on counters another test
inflated.  Reset it around every test so each case starts cold.
"""

import pytest

from repro.core import wire


@pytest.fixture(autouse=True)
def _reset_decode_memo():
    wire.configure_decode_memo()
    yield
    wire.configure_decode_memo()
